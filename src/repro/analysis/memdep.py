"""Loop-level memory-dependence analysis over the address lattice.

This extends the four-point address lattice of :mod:`repro.analysis.induction`
with the two ingredients a vectorization-legality argument needs:

* **base regions** — the loop-invariant component of every address is
  resolved through out-of-loop def chains down to its *root definitions*
  (``li`` constants, or opaque out-of-loop defs kept as symbolic roots).
  Roots behave like allocation sites: accesses whose invariant bases come
  from different roots are *assumed* to touch disjoint arrays.  That
  assumption is exactly what the dynamic oracle
  (:mod:`repro.analysis.oracle`) validates against observed address ranges;

* **dependence distances** — two affine accesses driven by the same
  induction variable at the same scale have a computable iteration
  distance ``(disp_b - disp_a) / stride``; non-divisible displacements are
  *provably* independent (the streams interleave but never collide).

For every natural loop :func:`MemDepAnalysis.loop_dependences` classifies
each load/store address, tests every store-involving pair, and classifies
each branch as ``uniform`` (loop-invariant condition), ``trip``
(loop-variant but load-free — the loop-bound unit's territory) or
``divergent`` (condition derived from an in-loop load — SVR's lane-mask
territory).  Independence verdicts carry a ``basis`` of ``proved`` or
``assumed`` so downstream consumers know which claims need the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.cfg import CFG, Loop
from repro.analysis.dataflow import ReachingDefinitions
from repro.analysis.induction import InductionVariable, StrideAnalysis
from repro.isa.instructions import Opcode

MEMDEP_SCHEMA = 1

# Resolution depth cap for out-of-loop def chains (init preambles are short;
# the cap only guards against pathological hand-built programs).
_MAX_DEPTH = 32

_OPAQUE_OPS = frozenset({
    Opcode.AND, Opcode.ANDI, Opcode.OR, Opcode.ORI, Opcode.XOR, Opcode.XORI,
    Opcode.SRL, Opcode.SRLI, Opcode.MIN, Opcode.MAX, Opcode.FMUL,
    Opcode.CMP_LT, Opcode.CMP_LTU, Opcode.CMP_EQ, Opcode.CMP_NE,
    Opcode.CMP_GE, Opcode.SLL, Opcode.MUL,
})


@dataclass(frozen=True)
class InvPart:
    """The loop-invariant additive component of an address expression.

    ``absolute`` means ``disp`` alone is the runtime value (an ``li``
    chain).  Otherwise ``roots`` identifies the symbolic base (out-of-loop
    def pcs) and ``disp``, when known, is the constant offset applied on
    top of it — so two parts with equal roots and known disps still have a
    provable difference.
    """

    roots: frozenset[int] = frozenset()
    disp: int | None = 0
    absolute: bool = True

    def add(self, other: "InvPart") -> "InvPart":
        disp = (self.disp + other.disp
                if self.disp is not None and other.disp is not None else None)
        return InvPart(self.roots | other.roots, disp,
                       self.absolute and other.absolute)

    def negate(self) -> "InvPart":
        if self.absolute:
            return InvPart(self.roots,
                           None if self.disp is None else -self.disp, True)
        # Negating a symbolic base breaks the offset identity; keep the
        # roots for region purposes only.
        return InvPart(self.roots, None, False)

    def rescale(self, factor: int) -> "InvPart":
        if self.absolute:
            return InvPart(self.roots,
                           None if self.disp is None else self.disp * factor,
                           True)
        return InvPart(self.roots, None, False)

    def region_key(self) -> tuple[Any, ...] | None:
        """Identity of the base region, or ``None`` when unknown."""
        if self.absolute and self.disp is not None:
            return ("abs", self.disp)
        if self.roots:
            return ("roots", tuple(sorted(self.roots)))
        return None

    def delta(self, other: "InvPart") -> int | None:
        """``other - self`` in bytes, when provable."""
        if self.disp is None or other.disp is None:
            return None
        if self.absolute and other.absolute:
            return other.disp - self.disp
        if self.roots == other.roots and self.absolute == other.absolute:
            return other.disp - self.disp
        return None


_UNKNOWN_INV = InvPart(frozenset(), None, False)


@dataclass(frozen=True)
class AddrExpr:
    """Symbolic address value: one of the lattice kinds plus its base.

    ``kind`` is ``invariant`` | ``affine`` | ``loaddep`` | ``varying``.
    ``affine`` means ``iv * scale + inv``; ``loaddep`` keeps the invariant
    component that was added to the load-derived value (the array base of
    a gather/scatter); ``varying`` is loop-variant but load-free.
    """

    kind: str
    inv: InvPart = _UNKNOWN_INV
    iv: int | None = None
    scale: int = 0
    loads: frozenset[int] = frozenset()

    def region_key(self) -> tuple[Any, ...] | None:
        if self.kind == "varying":
            return None
        return self.inv.region_key()


_VARYING = AddrExpr("varying")


def _invariant(inv: InvPart) -> AddrExpr:
    return AddrExpr("invariant", inv)


def _add(a: AddrExpr, b: AddrExpr, *, negate_b: bool = False) -> AddrExpr:
    if a.kind == "varying" or b.kind == "varying":
        return _VARYING
    loads = a.loads | b.loads
    inv_b = b.inv.negate() if negate_b else b.inv
    inv = a.inv.add(inv_b)
    if loads:
        return AddrExpr("loaddep", inv, loads=loads)
    if a.kind == "affine" and b.kind == "affine":
        if a.iv != b.iv:
            return _VARYING
        scale = a.scale + (-b.scale if negate_b else b.scale)
        if scale == 0:
            return _invariant(inv)
        return AddrExpr("affine", inv, iv=a.iv, scale=scale)
    if a.kind == "affine":
        return AddrExpr("affine", inv, iv=a.iv, scale=a.scale)
    if b.kind == "affine":
        scale = -b.scale if negate_b else b.scale
        return AddrExpr("affine", inv, iv=b.iv, scale=scale)
    return _invariant(inv)


def _rescale(expr: AddrExpr, factor: int) -> AddrExpr:
    if expr.kind == "varying":
        return _VARYING
    inv = expr.inv.rescale(factor)
    if expr.kind == "affine":
        return AddrExpr("affine", inv, iv=expr.iv, scale=expr.scale * factor)
    if expr.kind == "loaddep":
        return AddrExpr("loaddep", inv, loads=expr.loads)
    return _invariant(inv)


def _meet(a: AddrExpr, b: AddrExpr) -> AddrExpr:
    """Join values arriving over different paths (LoadDep dominates)."""
    if a == b:
        return a
    loads = a.loads | b.loads
    if loads:
        inv = (a.inv if a.inv == b.inv else _UNKNOWN_INV)
        return AddrExpr("loaddep", inv, loads=loads)
    return _VARYING


@dataclass(frozen=True)
class MemAccess:
    """One classified load or store inside a loop."""

    pc: int
    is_store: bool
    expr: AddrExpr
    stride: int | None       # bytes per iteration when affine

    def to_dict(self) -> dict:
        expr = self.expr
        return {
            "pc": self.pc,
            "access": "store" if self.is_store else "load",
            "kind": expr.kind,
            "iv_reg": expr.iv,
            "stride": self.stride,
            "disp": expr.inv.disp,
            "roots": sorted(expr.inv.roots),
            "absolute": expr.inv.absolute,
            "loads": sorted(expr.loads),
        }


@dataclass(frozen=True)
class DepEdge:
    """Dependence verdict for one store-involving access pair.

    ``verdict`` is ``independent`` | ``distance`` | ``may-alias``;
    ``basis`` records whether an independence claim is ``proved`` (address
    arithmetic) or ``assumed`` (distinct base regions — the claim the
    dynamic oracle checks).  ``distance`` is in loop iterations: the two
    accesses touch the same address ``distance`` iterations apart.
    """

    src_pc: int
    dst_pc: int
    kind: str                # "store-load" | "store-store"
    verdict: str
    basis: str
    reason: str
    distance: int | None = None

    def to_dict(self) -> dict:
        return {
            "src_pc": self.src_pc,
            "dst_pc": self.dst_pc,
            "kind": self.kind,
            "verdict": self.verdict,
            "basis": self.basis,
            "reason": self.reason,
            "distance": self.distance,
        }


@dataclass(frozen=True)
class BranchInfo:
    """Lane-divergence class of one in-loop branch.

    ``uniform`` — loop-invariant condition, identical across lanes;
    ``trip``    — loop-variant but load-free (trip-count shaped; the
                  loop-bound unit throttles N', no lane masking occurs);
    ``divergent`` — condition derived from an in-loop load: per-lane
                  outcomes can differ, SVR masks diverging lanes.
    """

    pc: int
    cls: str

    def to_dict(self) -> dict:
        return {"pc": self.pc, "class": self.cls}


@dataclass(frozen=True)
class LoopDependences:
    """Everything memdep learned about one natural loop."""

    header: int
    accesses: tuple[MemAccess, ...]
    edges: tuple[DepEdge, ...]
    branches: tuple[BranchInfo, ...]

    def to_dict(self) -> dict:
        return {
            "header": self.header,
            "accesses": [a.to_dict() for a in self.accesses],
            "edges": [e.to_dict() for e in self.edges],
            "branches": [b.to_dict() for b in self.branches],
        }


class MemDepAnalysis:
    """Address classification and dependence testing, loop by loop."""

    def __init__(self, cfg: CFG,
                 stride: StrideAnalysis | None = None) -> None:
        self.cfg = cfg
        self.program = cfg.program
        self.stride = stride or StrideAnalysis(cfg)
        self.reaching: ReachingDefinitions = self.stride.reaching
        self._loop_pcs: dict[int, frozenset[int]] = {}
        self._inv_cache: dict[int, InvPart] = {}

    # -- symbolic evaluation ------------------------------------------------

    def _pcs_of(self, loop: Loop) -> frozenset[int]:
        cached = self._loop_pcs.get(loop.header)
        if cached is None:
            cached = frozenset(self.cfg.loop_pcs(loop))
            self._loop_pcs[loop.header] = cached
        return cached

    def _ivs(self, loop: Loop) -> dict[int, InductionVariable]:
        return self.stride.induction_variables(loop)

    def expr_of(self, reg: int | None, use_pc: int, loop: Loop) -> AddrExpr:
        """Symbolic value of *reg* as read at *use_pc* within *loop*."""
        if reg is None:
            return _invariant(InvPart(frozenset(), 0, True))
        return self._eval_reg(reg, use_pc, loop, frozenset())

    def _eval_reg(self, reg: int, use_pc: int, loop: Loop,
                  visiting: frozenset[int]) -> AddrExpr:
        if reg == 0:
            return _invariant(InvPart(frozenset(), 0, True))
        if reg in self._ivs(loop):
            return AddrExpr("affine", InvPart(frozenset(), 0, True),
                            iv=reg, scale=1)
        pcs = self._pcs_of(loop)
        reaching = self.reaching.reaching(use_pc, reg)
        in_loop = [d for d in reaching if d in pcs]
        out_loop = sorted(d for d in reaching if d not in pcs)
        if not in_loop:
            return _invariant(self._resolve_out(out_loop, 0))
        exprs = [self._eval_def(d, loop, visiting) for d in in_loop]
        if out_loop:
            exprs.append(_invariant(self._resolve_out(out_loop, 0)))
        result = exprs[0]
        for expr in exprs[1:]:
            result = _meet(result, expr)
        return result

    def _eval_def(self, def_pc: int, loop: Loop,
                  visiting: frozenset[int]) -> AddrExpr:
        if def_pc in visiting:
            return _VARYING        # loop-carried cycle that is not a basic IV
        visiting = visiting | {def_pc}
        inst = self.program[def_pc]
        if inst.is_load:
            return AddrExpr("loaddep", InvPart(frozenset(), 0, True),
                            loads=frozenset({def_pc}))
        op = inst.op
        if op is Opcode.LI:
            return _invariant(InvPart(frozenset(), inst.imm, True))
        if op is Opcode.MV:
            assert inst.rs1 is not None
            return self._eval_reg(inst.rs1, def_pc, loop, visiting)
        if op is Opcode.ADDI:
            assert inst.rs1 is not None
            base = self._eval_reg(inst.rs1, def_pc, loop, visiting)
            return _add(base, _invariant(InvPart(frozenset(), inst.imm, True)))
        if op is Opcode.SLLI:
            assert inst.rs1 is not None
            return _rescale(
                self._eval_reg(inst.rs1, def_pc, loop, visiting),
                1 << (inst.imm & 63))
        if op is Opcode.MULI:
            assert inst.rs1 is not None
            return _rescale(
                self._eval_reg(inst.rs1, def_pc, loop, visiting), inst.imm)
        if op in (Opcode.ADD, Opcode.FADD, Opcode.SUB):
            assert inst.rs1 is not None and inst.rs2 is not None
            a = self._eval_reg(inst.rs1, def_pc, loop, visiting)
            b = self._eval_reg(inst.rs2, def_pc, loop, visiting)
            return _add(a, b, negate_b=op is Opcode.SUB)
        if op in _OPAQUE_OPS:
            exprs = [self._eval_reg(r, def_pc, loop, visiting)
                     for r in inst.regs_read()]
            loads = frozenset().union(*(e.loads for e in exprs))
            if loads:
                return AddrExpr("loaddep", _UNKNOWN_INV, loads=loads)
            if all(e.kind == "invariant" for e in exprs):
                # Opaque combination of invariants is invariant, but the
                # value (and hence region) is no longer tracked.
                return _invariant(InvPart(frozenset({def_pc}), None, False))
            return _VARYING
        return _VARYING

    # -- out-of-loop base resolution ----------------------------------------

    def _resolve_out(self, def_pcs: list[int], depth: int) -> InvPart:
        """Resolve a loop-invariant value down to its root definitions."""
        if not def_pcs:
            # No reaching definition at all: the architectural zero.
            return InvPart(frozenset(), 0, True)
        if len(def_pcs) > 1 or depth > _MAX_DEPTH:
            return InvPart(frozenset(def_pcs), None, False)
        return self._resolve_def(def_pcs[0], depth)

    def _resolve_def(self, def_pc: int, depth: int) -> InvPart:
        cached = self._inv_cache.get(def_pc)
        if cached is not None:
            return cached
        result = self._resolve_def_uncached(def_pc, depth)
        self._inv_cache[def_pc] = result
        return result

    def _resolve_def_uncached(self, def_pc: int, depth: int) -> InvPart:
        inst = self.program[def_pc]
        op = inst.op
        if op is Opcode.LI:
            return InvPart(frozenset({def_pc}), inst.imm, True)
        if depth > _MAX_DEPTH:
            return InvPart(frozenset({def_pc}), None, False)
        if op in (Opcode.MV, Opcode.ADDI):
            assert inst.rs1 is not None
            base = self._resolve_reg_out(inst.rs1, def_pc, depth + 1)
            if op is Opcode.MV:
                return base
            return base.add(InvPart(frozenset(), inst.imm, True))
        if op is Opcode.SLLI:
            assert inst.rs1 is not None
            return self._resolve_reg_out(
                inst.rs1, def_pc, depth + 1).rescale(1 << (inst.imm & 63))
        if op is Opcode.MULI:
            assert inst.rs1 is not None
            return self._resolve_reg_out(
                inst.rs1, def_pc, depth + 1).rescale(inst.imm)
        if op in (Opcode.ADD, Opcode.FADD, Opcode.SUB):
            assert inst.rs1 is not None and inst.rs2 is not None
            a = self._resolve_reg_out(inst.rs1, def_pc, depth + 1)
            b = self._resolve_reg_out(inst.rs2, def_pc, depth + 1)
            return a.add(b.negate() if op is Opcode.SUB else b)
        # Loads and opaque ops become symbolic roots of their own.
        return InvPart(frozenset({def_pc}), None, False)

    def _resolve_reg_out(self, reg: int, use_pc: int, depth: int) -> InvPart:
        if reg == 0:
            return InvPart(frozenset(), 0, True)
        defs = sorted(self.reaching.reaching(use_pc, reg))
        if use_pc in defs:
            # Self-referential def (a non-IV cycle): keep it symbolic.
            return InvPart(frozenset({use_pc}), None, False)
        return self._resolve_out(defs, depth)

    # -- per-loop classification --------------------------------------------

    def accesses_of(self, loop: Loop) -> tuple[MemAccess, ...]:
        """Classify every load and store inside *loop*, in pc order."""
        ivs = self._ivs(loop)
        out = []
        for pc in sorted(self._pcs_of(loop)):
            inst = self.program[pc]
            if not inst.is_mem:
                continue
            base = self.expr_of(inst.rs1, pc, loop)
            expr = _add(base,
                        _invariant(InvPart(frozenset(), inst.imm, True)))
            stride = None
            if expr.kind == "affine" and expr.iv in ivs:
                stride = expr.scale * ivs[expr.iv].step
            out.append(MemAccess(pc, inst.is_store, expr, stride))
        return tuple(out)

    def branches_of(self, loop: Loop) -> tuple[BranchInfo, ...]:
        """Lane-divergence class of every branch inside *loop*."""
        out = []
        for pc in sorted(self._pcs_of(loop)):
            inst = self.program[pc]
            if not inst.is_branch:
                continue
            expr = self.expr_of(inst.rs1, pc, loop)
            if expr.kind == "loaddep":
                cls = "divergent"
            elif expr.kind == "invariant":
                cls = "uniform"
            else:
                cls = "trip"
            out.append(BranchInfo(pc, cls))
        return tuple(out)

    def _dep_edge(self, a: MemAccess, b: MemAccess, loop: Loop) -> DepEdge:
        kind = ("store-store" if a.is_store and b.is_store else "store-load")
        ea, eb = a.expr, b.expr
        if ea.kind == "varying" or eb.kind == "varying":
            return DepEdge(a.pc, b.pc, kind, "may-alias", "proved",
                           "unknown-address")
        # Provable tier: same IV and scale (including scale 0, i.e. two
        # loop-invariant addresses) with a known byte displacement.
        if (ea.kind == eb.kind and ea.kind in ("affine", "invariant")
                and ea.iv == eb.iv and ea.scale == eb.scale):
            delta = ea.inv.delta(eb.inv)
            if delta is not None:
                if ea.kind == "invariant":
                    if delta == 0:
                        return DepEdge(a.pc, b.pc, kind, "may-alias",
                                       "proved", "invariant-address")
                    return DepEdge(a.pc, b.pc, kind, "independent", "proved",
                                   "distinct-constants")
                assert ea.iv is not None
                ivs = self._ivs(loop)
                step = ivs[ea.iv].step if ea.iv in ivs else 1
                stride = ea.scale * step
                if stride != 0:
                    if delta % stride:
                        return DepEdge(a.pc, b.pc, kind, "independent",
                                       "proved", "non-divisible")
                    return DepEdge(a.pc, b.pc, kind, "distance", "proved",
                                   "exact-distance",
                                   distance=delta // stride)
        # Assumed tier: distinct base regions are disjoint arrays.
        ka, kb = ea.region_key(), eb.region_key()
        if ka is None or kb is None:
            return DepEdge(a.pc, b.pc, kind, "may-alias", "proved",
                           "unknown-region")
        if ka != kb:
            return DepEdge(a.pc, b.pc, kind, "independent", "assumed",
                           "distinct-regions")
        return DepEdge(a.pc, b.pc, kind, "may-alias", "proved",
                       "same-region")

    def loop_dependences(self, loop: Loop) -> LoopDependences:
        """Accesses, dependence edges and branch classes for *loop*."""
        accesses = self.accesses_of(loop)
        edges = []
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if not (a.is_store or b.is_store):
                    continue
                edges.append(self._dep_edge(a, b, loop))
        return LoopDependences(loop.header, accesses, tuple(edges),
                               self.branches_of(loop))

    def analyze(self) -> list[LoopDependences]:
        """One :class:`LoopDependences` per natural loop, header order."""
        return [self.loop_dependences(loop)
                for loop in sorted(self.cfg.loops, key=lambda lp: lp.header)]
