"""Static analysis over mini-ISA programs (design in docs/static-analysis.md).

The framework has four layers, each usable on its own:

* :mod:`repro.analysis.cfg`       — basic blocks, dominators, natural loops;
* :mod:`repro.analysis.dataflow`  — worklist engine + reaching definitions,
  liveness and definite assignment;
* :mod:`repro.analysis.induction` — induction variables and static stride
  classification of every load (striding / indirect / invariant);
* :mod:`repro.analysis.taint`     — static SVR taint chains seeded at
  striding loads: the dependent instructions a perfect SVR unit would
  vectorize, with expected chain length and SRF pressure.

:func:`repro.analysis.lint.lint_program` drives all of them and returns a
:class:`~repro.analysis.lint.LintReport`; ``python -m repro lint`` is the
CLI entry point.
"""

from repro.analysis.cfg import CFG, BasicBlock, Loop, build_cfg
from repro.analysis.dataflow import (
    DataflowProblem,
    DefiniteAssignment,
    LiveRegisters,
    ReachingDefinitions,
    dead_definitions,
    solve,
    unassigned_reads,
)
from repro.analysis.induction import (
    InductionVariable,
    LoadInfo,
    StrideAnalysis,
)
from repro.analysis.lint import (
    DIAGNOSTIC_CATALOG,
    Diagnostic,
    LintReport,
    Severity,
    lint_program,
)
from repro.analysis.render import (
    format_chain_table,
    format_diagnostics,
    format_load_table,
    format_report,
)
from repro.analysis.taint import StaticChain, chains_for_program, taint_chain
from repro.svr.chain import LoadClass

__all__ = [
    "BasicBlock",
    "CFG",
    "DIAGNOSTIC_CATALOG",
    "DataflowProblem",
    "DefiniteAssignment",
    "Diagnostic",
    "InductionVariable",
    "LintReport",
    "LiveRegisters",
    "LoadClass",
    "LoadInfo",
    "Loop",
    "ReachingDefinitions",
    "Severity",
    "StaticChain",
    "StrideAnalysis",
    "build_cfg",
    "chains_for_program",
    "dead_definitions",
    "format_chain_table",
    "format_diagnostics",
    "format_load_table",
    "format_report",
    "lint_program",
    "solve",
    "taint_chain",
    "unassigned_reads",
]
