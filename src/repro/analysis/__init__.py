"""Static analysis over mini-ISA programs (design in docs/static-analysis.md).

The framework has four layers, each usable on its own:

* :mod:`repro.analysis.cfg`       — basic blocks, dominators, natural loops;
* :mod:`repro.analysis.dataflow`  — worklist engine + reaching definitions,
  liveness and definite assignment;
* :mod:`repro.analysis.induction` — induction variables and static stride
  classification of every load (striding / indirect / invariant);
* :mod:`repro.analysis.taint`     — static SVR taint chains seeded at
  striding loads: the dependent instructions a perfect SVR unit would
  vectorize, with expected chain length and SRF pressure;
* :mod:`repro.analysis.memdep`    — loop-level memory dependences over the
  invariant/affine/load-dependent address lattice;
* :mod:`repro.analysis.vectorplan` — per-loop lane-batching legality
  verdicts (``BATCHABLE`` / ``BATCHABLE_WITH_GUARD`` / ``SCALAR_ONLY``);
* :mod:`repro.analysis.oracle`    — dynamic cross-validation of every
  static plan claim against recorded execution traces.

:func:`repro.analysis.lint.lint_program` drives the static checks and
returns a :class:`~repro.analysis.lint.LintReport`; ``python -m repro
lint`` and ``python -m repro analyze`` are the CLI entry points.
"""

from repro.analysis.cfg import CFG, BasicBlock, Loop, build_cfg
from repro.analysis.dataflow import (
    DataflowProblem,
    DefiniteAssignment,
    LiveRegisters,
    ReachingDefinitions,
    dead_definitions,
    dead_stores,
    solve,
    unassigned_reads,
)
from repro.analysis.induction import (
    InductionVariable,
    LoadInfo,
    StrideAnalysis,
)
from repro.analysis.lint import (
    DIAGNOSTIC_CATALOG,
    LINT_SCHEMA,
    Diagnostic,
    LintReport,
    Severity,
    lint_program,
)
from repro.analysis.memdep import (
    AddrExpr,
    DepEdge,
    LoopDependences,
    MemAccess,
    MemDepAnalysis,
)
from repro.analysis.oracle import (
    OracleRecorder,
    OracleReport,
    Violation,
    collect_trace,
    oracle_check,
    validate_plan,
)
from repro.analysis.render import (
    format_chain_table,
    format_diagnostics,
    format_load_table,
    format_oracle_report,
    format_plan,
    format_plan_table,
    format_report,
)
from repro.analysis.taint import StaticChain, chains_for_program, taint_chain
from repro.analysis.vectorplan import (
    BATCHABLE,
    BATCHABLE_WITH_GUARD,
    SCALAR_ONLY,
    GuardSpec,
    LoopPlan,
    PlanReason,
    VectorizationPlan,
    build_plan,
    plan_for_program,
)
from repro.svr.chain import LoadClass

__all__ = [
    "AddrExpr",
    "BATCHABLE",
    "BATCHABLE_WITH_GUARD",
    "BasicBlock",
    "CFG",
    "DIAGNOSTIC_CATALOG",
    "DataflowProblem",
    "DefiniteAssignment",
    "DepEdge",
    "Diagnostic",
    "GuardSpec",
    "InductionVariable",
    "LINT_SCHEMA",
    "LintReport",
    "LiveRegisters",
    "LoadClass",
    "LoadInfo",
    "Loop",
    "LoopDependences",
    "LoopPlan",
    "MemAccess",
    "MemDepAnalysis",
    "OracleRecorder",
    "OracleReport",
    "PlanReason",
    "ReachingDefinitions",
    "SCALAR_ONLY",
    "Severity",
    "StaticChain",
    "StrideAnalysis",
    "VectorizationPlan",
    "Violation",
    "build_cfg",
    "build_plan",
    "plan_for_program",
    "chains_for_program",
    "collect_trace",
    "dead_definitions",
    "dead_stores",
    "format_chain_table",
    "format_diagnostics",
    "format_load_table",
    "format_oracle_report",
    "format_plan",
    "format_plan_table",
    "format_report",
    "lint_program",
    "oracle_check",
    "solve",
    "taint_chain",
    "unassigned_reads",
    "validate_plan",
]
