"""Vectorization-legality plans for SVR lane batching.

The ROADMAP's structure-of-arrays executor wants to run all SVR lanes as
batched vector operations.  That is only sound where lanes (= consecutive
loop iterations) cannot communicate.  :func:`build_plan` turns the
dependence facts of :mod:`repro.analysis.memdep` plus the taint chains of
:mod:`repro.analysis.taint` into one verdict per natural loop:

``BATCHABLE``
    No in-loop branch can diverge per lane, no store needs suppression,
    and no store↔load pair can carry a value between iterations closer
    than the vector length.  Lanes are provably independent.

``BATCHABLE_WITH_GUARD``
    Batching is sound only under runtime guards SVR already implements:
    ``lane-mask`` (mask lanes at a divergent branch), ``transient-store``
    (suppress scatter stores — SVR stores only prefetch, never write),
    ``may-alias`` (a store↔load pair whose distance is unknown; lanes may
    read stale values, acceptable for prefetching, not for architectural
    state).

``SCALAR_ONLY``
    Batching is pointless or wrong: no striding seed to vectorize from,
    a statically unknown address defeats the dependence argument, or a
    provable loop-carried flow distance shorter than the vector length
    serialises the lanes.

Plans serialize deterministically (:meth:`VectorizationPlan.to_dict`,
:meth:`VectorizationPlan.fingerprint`) so they can be pinned in
``workloads/expectations.py`` and diffed in CI; the dynamic oracle
(:mod:`repro.analysis.oracle`) checks every claim against observed
behaviour.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.analysis.cfg import CFG, Loop, build_cfg
from repro.analysis.induction import LoadInfo, StrideAnalysis
from repro.analysis.memdep import LoopDependences, MemDepAnalysis
from repro.analysis.taint import StaticChain, taint_chain
from repro.isa.program import Program
from repro.svr.chain import LoadClass

PLAN_SCHEMA = 1

BATCHABLE = "BATCHABLE"
BATCHABLE_WITH_GUARD = "BATCHABLE_WITH_GUARD"
SCALAR_ONLY = "SCALAR_ONLY"


@dataclass(frozen=True)
class GuardSpec:
    """One runtime guard batching depends on.

    ``kind`` is ``lane-mask`` | ``transient-store`` | ``may-alias``;
    ``pcs`` names the instruction(s) the guard covers.
    """

    kind: str
    pcs: tuple[int, ...]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "pcs": list(self.pcs)}

    def __str__(self) -> str:
        return f"{self.kind}({','.join(str(p) for p in self.pcs)})"


@dataclass(frozen=True)
class PlanReason:
    """One reason a loop is SCALAR_ONLY."""

    kind: str
    detail: str
    pcs: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "pcs": list(self.pcs)}

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass(frozen=True)
class LoopPlan:
    """Verdict plus supporting evidence for one natural loop."""

    header: int
    verdict: str
    seeds: tuple[tuple[int, int], ...]        # (pc, byte stride) per seed
    guards: tuple[GuardSpec, ...]
    reasons: tuple[PlanReason, ...]
    divergent_branch_pcs: tuple[int, ...]
    trip_branch_pcs: tuple[int, ...]
    deps: LoopDependences

    def to_dict(self) -> dict:
        return {
            "header": self.header,
            "verdict": self.verdict,
            "seeds": [list(s) for s in self.seeds],
            "guards": [g.to_dict() for g in self.guards],
            "reasons": [r.to_dict() for r in self.reasons],
            "divergent_branch_pcs": list(self.divergent_branch_pcs),
            "trip_branch_pcs": list(self.trip_branch_pcs),
            "accesses": [a.to_dict() for a in self.deps.accesses],
            "edges": [e.to_dict() for e in self.deps.edges],
        }

    @property
    def batchable(self) -> bool:
        """True when SVR may run this loop's rounds on the SoA fast path."""
        return self.verdict in (BATCHABLE, BATCHABLE_WITH_GUARD)

    def guard_pcs(self, *kinds: str) -> frozenset[int]:
        """All pcs covered by guards of the given kinds (all when empty)."""
        return frozenset(
            pc for g in self.guards if not kinds or g.kind in kinds
            for pc in g.pcs)

    @property
    def scalar_fallback_pcs(self) -> frozenset[int]:
        """PCs a batched round must route through the per-lane loop.

        ``transient-store`` and ``may-alias`` guards fire per instruction:
        the flagged stores/loads take the existing scalar path while the
        rest of the round stays batched.  ``lane-mask`` guards are *not*
        here — vectorized divergence masking is their implementation.
        """
        return self.guard_pcs("transient-store", "may-alias")

    @property
    def summary(self) -> tuple[int, str, tuple[str, ...], tuple[str, ...]]:
        """Scale-invariant shape used for pinned expectations."""
        return (self.header, self.verdict,
                tuple(sorted({g.kind for g in self.guards})),
                tuple(sorted({r.kind for r in self.reasons})))


@dataclass(frozen=True)
class VectorizationPlan:
    """The full per-workload plan, deterministic and serializable."""

    name: str
    vector_length: int
    loops: tuple[LoopPlan, ...]
    schema: int = PLAN_SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "name": self.name,
            "vector_length": self.vector_length,
            "loops": [lp.to_dict() for lp in self.loops],
        }

    def fingerprint(self) -> str:
        """sha256 of the canonical JSON form (stable across runs)."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @property
    def summary(self) -> tuple[tuple[int, str, tuple[str, ...],
                                     tuple[str, ...]], ...]:
        return tuple(lp.summary for lp in self.loops)

    def loop_plan(self, header: int) -> LoopPlan | None:
        for lp in self.loops:
            if lp.header == header:
                return lp
        return None

    def plan_for_seed(self, seed_pc: int) -> LoopPlan | None:
        """The loop plan that lists *seed_pc* as a striding seed."""
        for lp in self.loops:
            if any(pc == seed_pc for pc, _ in lp.seeds):
                return lp
        return None


def _plan_loop(loop: Loop, cfg: CFG, memdep: MemDepAnalysis,
               seeds: list[LoadInfo], chains: dict[int, StaticChain],
               vector_length: int) -> LoopPlan:
    deps = memdep.loop_dependences(loop)
    body_pcs = frozenset(cfg.loop_pcs(loop))

    # Branch divergence: the address-lattice view, widened by the static
    # taint chains of this loop's seeds.  Dynamic lane masking only happens
    # at branches reading registers tainted by a seed, and every such
    # branch is in the seed's static chain (the containment invariant), so
    # a loop whose body has no chain branch can never mask a lane.
    divergent = {b.pc for b in deps.branches if b.cls == "divergent"}
    for info in seeds:
        for pc in chains[info.pc].chain_pcs:
            if pc in body_pcs and cfg.program[pc].is_branch:
                divergent.add(pc)
    trip = tuple(sorted(b.pc for b in deps.branches
                        if b.cls == "trip" and b.pc not in divergent))

    reasons: list[PlanReason] = []
    guards: list[GuardSpec] = []

    if not seeds:
        reasons.append(PlanReason(
            "no-striding-seed",
            "no confidently striding load anchors an SVR chain here"))

    irregular_loads = tuple(a.pc for a in deps.accesses
                            if not a.is_store and a.expr.kind == "varying")
    if irregular_loads:
        reasons.append(PlanReason(
            "irregular-load",
            "load address is loop-variant but neither affine nor "
            "load-derived; per-lane addresses cannot be formed",
            irregular_loads))
    irregular_stores = tuple(a.pc for a in deps.accesses
                             if a.is_store and a.expr.kind == "varying")
    if irregular_stores:
        reasons.append(PlanReason(
            "irregular-store",
            "store address is statically unknown; dependence analysis "
            "cannot bound its effect", irregular_stores))

    short_edges = [
        e for e in deps.edges
        if e.kind == "store-load" and e.verdict == "distance"
        and e.distance is not None and 0 < abs(e.distance) < vector_length]
    if short_edges:
        pcs = tuple(sorted({pc for e in short_edges
                            for pc in (e.src_pc, e.dst_pc)}))
        nearest = min(abs(e.distance) for e in short_edges
                      if e.distance is not None)
        reasons.append(PlanReason(
            "short-flow",
            f"store feeds a load {nearest} iteration(s) later "
            f"(< vector length {vector_length}); lanes would consume "
            "values other lanes produce", pcs))

    recurrences = tuple(
        (e.src_pc, e.dst_pc) for e in deps.edges
        if e.kind == "store-load" and e.reason == "invariant-address")
    if recurrences:
        pcs = tuple(sorted({pc for pair in recurrences for pc in pair}))
        reasons.append(PlanReason(
            "memory-recurrence",
            "a loop-invariant address is stored and reloaded every "
            "iteration; the loop is a serial reduction through memory",
            pcs))

    if divergent:
        guards.append(GuardSpec("lane-mask", tuple(sorted(divergent))))

    scatter = tuple(a.pc for a in deps.accesses
                    if a.is_store and a.expr.kind == "loaddep")
    invariant_stores = tuple(
        a.pc for a in deps.accesses
        if a.is_store and a.expr.kind == "invariant"
        and any(e.reason == "invariant-address" and e.kind == "store-store"
                for e in deps.edges if a.pc in (e.src_pc, e.dst_pc)))
    if scatter or invariant_stores:
        guards.append(GuardSpec(
            "transient-store", tuple(sorted(set(scatter + invariant_stores)))))

    may_alias = tuple(sorted({
        pc for e in deps.edges if e.verdict == "may-alias"
        and e.reason in ("same-region", "unknown-region")
        for pc in (e.src_pc, e.dst_pc)}))
    if may_alias:
        guards.append(GuardSpec("may-alias", may_alias))

    if reasons:
        verdict = SCALAR_ONLY
    elif guards:
        verdict = BATCHABLE_WITH_GUARD
    else:
        verdict = BATCHABLE
    return LoopPlan(
        header=loop.header,
        verdict=verdict,
        seeds=tuple((info.pc, info.stride or 0) for info in seeds),
        guards=tuple(guards),
        reasons=tuple(reasons),
        divergent_branch_pcs=tuple(sorted(divergent)),
        trip_branch_pcs=trip,
        deps=deps,
    )


def build_plan(program: Program, name: str | None = None,
               vector_length: int = 16) -> VectorizationPlan:
    """Compute the :class:`VectorizationPlan` for *program*."""
    cfg = build_cfg(program)
    stride = StrideAnalysis(cfg)
    memdep = MemDepAnalysis(cfg, stride)
    loads = stride.loads()
    seeds_by_loop: dict[int, list[LoadInfo]] = {}
    chains: dict[int, StaticChain] = {}
    for info in loads:
        if info.load_class is LoadClass.STRIDING:
            assert info.loop_header is not None
            seeds_by_loop.setdefault(info.loop_header, []).append(info)
            chains[info.pc] = taint_chain(cfg, info.pc)
    plans = [
        _plan_loop(loop, cfg, memdep, seeds_by_loop.get(loop.header, []),
                   chains, vector_length)
        for loop in sorted(cfg.loops, key=lambda lp: lp.header)
    ]
    return VectorizationPlan(name=name or program.name,
                             vector_length=vector_length,
                             loops=tuple(plans))


# Cache attribute stashed on Program objects by plan_for_program: plans
# are pure functions of the instruction list, so tying the cache to the
# program's lifetime is both correct and leak-free.
_PLAN_CACHE_ATTR = "_vectorplan_cache"


def plan_for_program(program: Program,
                     vector_length: int = 16) -> VectorizationPlan:
    """The (cached) :class:`VectorizationPlan` for *program*.

    The first call per ``(program, vector_length)`` runs the full CFG /
    dependence / taint analysis; repeat lookups — one per PRM round in
    the SVR unit's plan-keyed dispatch — are a dict hit.  The cache lives
    on the program object itself, so rebuilt workloads (new Program) are
    re-analysed and mutated programs cannot serve stale plans.
    """
    cache: dict[int, VectorizationPlan] | None = getattr(
        program, _PLAN_CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(program, _PLAN_CACHE_ATTR, cache)
    plan = cache.get(vector_length)
    if plan is None:
        plan = build_plan(program, vector_length=vector_length)
        cache[vector_length] = plan
    return plan
