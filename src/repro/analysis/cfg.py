"""Control-flow graph over a :class:`~repro.isa.program.Program`.

PCs are instruction indices, so basic blocks are half-open index ranges.
The CFG carries everything the dataflow and loop analyses need: block
boundaries, successor/predecessor edges, reachability from the entry,
reverse postorder, dominators, and natural loops.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.isa.instructions import Opcode
from repro.isa.program import Program


@dataclass
class BasicBlock:
    """Maximal straight-line run of instructions ``[start, end)``."""

    start: int
    end: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    @property
    def terminator_pc(self) -> int:
        return self.end - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.start}..{self.end - 1})"


@dataclass
class Loop:
    """A natural loop: header block plus the body reached by its back edges."""

    header: int                      # header block start pc
    body: frozenset[int]             # block start pcs, header included
    back_edges: tuple[int, ...]      # latch block start pcs
    exits: tuple[int, ...] = ()      # blocks outside the loop targeted from it

    def contains_block(self, block_start: int) -> bool:
        return block_start in self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop(header={self.header}, blocks={len(self.body)})"


class CFG:
    """Basic blocks, edges, dominators and natural loops of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks: dict[int, BasicBlock] = {}
        self.entry = 0
        # PCs whose fallthrough leaves the program (lint error E001).
        self.off_end_pcs: list[int] = []
        self._build_blocks()
        self._starts = sorted(self.blocks)
        self.reachable = self._compute_reachable()
        self.rpo = self._reverse_postorder()
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.dominators = self._compute_dominators()
        self.loops = self._find_loops()

    # -- construction -----------------------------------------------------

    def _build_blocks(self) -> None:
        program = self.program
        n = len(program)
        if n == 0:
            return
        leaders = {0}
        for pc in range(n):
            inst = program[pc]
            if inst.target is not None:
                leaders.add(inst.target)
            if (inst.is_control or inst.op is Opcode.HALT) and pc + 1 < n:
                leaders.add(pc + 1)
        ordered = sorted(leaders)
        for i, start in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else n
            self.blocks[start] = BasicBlock(start, end)
        for block in self.blocks.values():
            term = program[block.terminator_pc]
            succs: list[int] = []
            if term.op is Opcode.HALT:
                pass
            elif term.op is Opcode.JMP:
                succs.append(term.target)
            elif term.is_branch:
                if block.end < n:
                    succs.append(block.end)
                else:
                    self.off_end_pcs.append(block.terminator_pc)
                if term.target not in succs:
                    succs.append(term.target)
            else:
                if block.end < n:
                    succs.append(block.end)
                else:
                    self.off_end_pcs.append(block.terminator_pc)
            block.successors = succs
            for succ in succs:
                self.blocks[succ].predecessors.append(block.start)

    def block_of(self, pc: int) -> BasicBlock:
        """The basic block containing *pc*."""
        idx = bisect.bisect_right(self._starts, pc) - 1
        block = self.blocks[self._starts[idx]]
        if not block.start <= pc < block.end:
            raise IndexError(f"pc {pc} outside program")
        return block

    def _compute_reachable(self) -> frozenset[int]:
        if not self.blocks:
            return frozenset()
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return frozenset(seen)

    def _reverse_postorder(self) -> list[int]:
        order: list[int] = []
        seen: set[int] = set()

        def visit(start: int) -> None:
            # Iterative DFS with an explicit stack (kernels can be deep).
            stack: list[tuple[int, int]] = [(start, 0)]
            seen.add(start)
            while stack:
                block, i = stack[-1]
                succs = self.blocks[block].successors
                if i < len(succs):
                    stack[-1] = (block, i + 1)
                    succ = succs[i]
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, 0))
                else:
                    stack.pop()
                    order.append(block)

        if self.blocks:
            visit(self.entry)
        order.reverse()
        return order

    @property
    def unreachable_blocks(self) -> list[BasicBlock]:
        return [self.blocks[s] for s in self._starts
                if s not in self.reachable]

    # -- dominators --------------------------------------------------------

    def _compute_dominators(self) -> dict[int, frozenset[int]]:
        """Iterative dominator sets over reverse postorder."""
        if not self.blocks:
            return {}
        all_blocks = frozenset(self.rpo)
        dom: dict[int, frozenset[int]] = {
            b: all_blocks for b in self.rpo}
        dom[self.entry] = frozenset({self.entry})
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block == self.entry:
                    continue
                preds = [p for p in self.blocks[block].predecessors
                         if p in self._rpo_index]
                new = all_blocks
                for pred in preds:
                    new = new & dom[pred]
                new = new | {block}
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        return dom

    def dominates(self, a: int, b: int) -> bool:
        """Whether block *a* dominates block *b* (block start pcs)."""
        return a in self.dominators.get(b, frozenset())

    # -- natural loops -----------------------------------------------------

    def _find_loops(self) -> list[Loop]:
        bodies: dict[int, set[int]] = {}
        latches: dict[int, set[int]] = {}
        for block in self.rpo:
            for succ in self.blocks[block].successors:
                if self.dominates(succ, block):      # back edge block->succ
                    body = bodies.setdefault(succ, {succ})
                    latches.setdefault(succ, set()).add(block)
                    stack = [block]
                    while stack:
                        node = stack.pop()
                        if node in body:
                            continue
                        body.add(node)
                        stack.extend(
                            p for p in self.blocks[node].predecessors
                            if p in self._rpo_index)
        loops = []
        for header, body in bodies.items():
            exits = sorted({succ for b in body
                            for succ in self.blocks[b].successors
                            if succ not in body})
            loops.append(Loop(header, frozenset(body),
                              tuple(sorted(latches[header])), tuple(exits)))
        # Inner loops first so innermost_loop() can take the first match.
        loops.sort(key=lambda lp: (len(lp.body), lp.header))
        return loops

    def innermost_loop(self, pc: int) -> Loop | None:
        """The smallest natural loop whose body contains *pc*."""
        block = self.block_of(pc).start
        for loop in self.loops:
            if block in loop.body:
                return loop
        return None

    def loop_pcs(self, loop: Loop) -> list[int]:
        """All instruction pcs inside *loop*, in ascending order."""
        pcs: list[int] = []
        for start in sorted(loop.body):
            pcs.extend(self.blocks[start].pcs)
        return pcs


def build_cfg(program: Program) -> CFG:
    """Construct the control-flow graph for *program*."""
    return CFG(program)
