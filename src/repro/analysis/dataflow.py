"""Worklist dataflow engine plus the standard analyses over mini-ISA CFGs.

The engine (:func:`solve`) iterates block-level transfer functions over a
lattice until fixpoint, in either direction.  Three concrete analyses are
built on it:

* :class:`ReachingDefinitions` — which ``(pc, reg)`` definitions reach each
  program point (may-analysis, union meet);
* :class:`LiveRegisters` — which registers are live at each point
  (backward may-analysis, union meet);
* :class:`DefiniteAssignment` — which registers have definitely been
  written on *every* path from the entry (must-analysis, intersection
  meet); reads outside this set see the architectural zero a fresh
  register file supplies, which is almost always a kernel bug.

Each analysis exposes per-instruction refinement helpers that re-walk the
containing block from the solved boundary value, so clients get
program-point precision without the engine having to store per-pc state.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, TypeVar

from repro.analysis.cfg import CFG, BasicBlock
from repro.isa.instructions import Instruction
from repro.isa.registers import NUM_REGS

T = TypeVar("T")

Def = tuple[int, int]        # (pc, reg)


class DataflowProblem(Generic[T]):
    """A lattice plus transfer function; subclass and hand to :func:`solve`.

    ``direction`` is ``"forward"`` or ``"backward"``.  ``boundary()`` is the
    value at the entry (forward) or at every exit block (backward);
    ``top()`` initialises all other blocks.
    """

    direction: str = "forward"

    def boundary(self) -> T:
        raise NotImplementedError

    def top(self) -> T:
        raise NotImplementedError

    def meet(self, a: T, b: T) -> T:
        raise NotImplementedError

    def transfer(self, block: BasicBlock, value: T) -> T:
        raise NotImplementedError


def solve(cfg: CFG, problem: DataflowProblem[T]) -> dict[int, tuple[T, T]]:
    """Run *problem* to fixpoint; returns ``{block_start: (in, out)}``.

    ``in`` is the value before the block in execution order and ``out`` the
    value after it, for both directions.  Only reachable blocks are solved.
    """
    forward = problem.direction == "forward"
    order = cfg.rpo if forward else list(reversed(cfg.rpo))
    entry_like = ({cfg.entry} if forward else
                  {b for b in cfg.rpo if not cfg.blocks[b].successors})
    value_in: dict[int, T] = {}
    value_out: dict[int, T] = {}
    for block in order:
        value_in[block] = problem.top()
        value_out[block] = problem.top()

    def inputs(block: int) -> Iterable[int]:
        if forward:
            return (p for p in cfg.blocks[block].predecessors
                    if p in value_out)
        return (s for s in cfg.blocks[block].successors if s in value_out)

    changed = True
    while changed:
        changed = False
        for block in order:
            feeds = list(inputs(block))
            if block in entry_like and not feeds:
                before = problem.boundary()
            else:
                before = problem.top()
                first = True
                for feed in feeds:
                    other = value_out[feed]
                    before = other if first else problem.meet(before, other)
                    first = False
                if first:
                    before = problem.boundary()
                elif block in entry_like:
                    before = problem.meet(before, problem.boundary())
            after = problem.transfer(cfg.blocks[block], before)
            if before != value_in[block] or after != value_out[block]:
                value_in[block] = before
                value_out[block] = after
                changed = True
    return {b: (value_in[b], value_out[b]) for b in order}


def _writes(inst: Instruction) -> tuple[int, ...]:
    """Registers *architecturally* written (x0 writes are discarded)."""
    return tuple(r for r in inst.regs_written() if r != 0)


def _reads(inst: Instruction) -> tuple[int, ...]:
    """Registers read, excluding the hard-wired zero register."""
    return tuple(r for r in inst.regs_read() if r != 0)


class ReachingDefinitions:
    """Forward may-analysis over ``(pc, reg)`` definition sites."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        outer = self

        class _Problem(DataflowProblem[frozenset[Def]]):
            direction = "forward"

            def boundary(self) -> frozenset[Def]:
                return frozenset()

            def top(self) -> frozenset[Def]:
                return frozenset()

            def meet(self, a: frozenset[Def],
                     b: frozenset[Def]) -> frozenset[Def]:
                return a | b

            def transfer(self, block: BasicBlock,
                         value: frozenset[Def]) -> frozenset[Def]:
                return outer._walk(block, value, block.end)

        self.solution = solve(cfg, _Problem())

    def _walk(self, block: BasicBlock, value: frozenset[Def],
              stop_pc: int) -> frozenset[Def]:
        defs = set(value)
        for pc in range(block.start, stop_pc):
            inst = self.cfg.program[pc]
            for reg in _writes(inst):
                defs = {d for d in defs if d[1] != reg}
                defs.add((pc, reg))
        return frozenset(defs)

    def reaching(self, pc: int, reg: int) -> frozenset[int]:
        """Definition pcs of *reg* that reach the point just before *pc*."""
        block = self.cfg.block_of(pc)
        if block.start not in self.solution:
            return frozenset()
        block_in, _ = self.solution[block.start]
        defs = self._walk(block, block_in, pc)
        return frozenset(d[0] for d in defs if d[1] == reg)

    def defs_in(self, pcs: Iterable[int], reg: int) -> frozenset[int]:
        """Definition sites of *reg* among *pcs* (no flow information)."""
        return frozenset(pc for pc in pcs
                         if reg in _writes(self.cfg.program[pc]))


class LiveRegisters:
    """Backward may-analysis: registers whose value may still be read."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        outer = self

        class _Problem(DataflowProblem[frozenset[int]]):
            direction = "backward"

            def boundary(self) -> frozenset[int]:
                return frozenset()

            def top(self) -> frozenset[int]:
                return frozenset()

            def meet(self, a: frozenset[int],
                     b: frozenset[int]) -> frozenset[int]:
                return a | b

            def transfer(self, block: BasicBlock,
                         value: frozenset[int]) -> frozenset[int]:
                return outer._walk_back(block, value, block.start)

        self.solution = solve(cfg, _Problem())

    def _walk_back(self, block: BasicBlock, value: frozenset[int],
                   stop_pc: int) -> frozenset[int]:
        live = set(value)
        for pc in range(block.end - 1, stop_pc - 1, -1):
            inst = self.cfg.program[pc]
            for reg in _writes(inst):
                live.discard(reg)
            live.update(_reads(inst))
        return frozenset(live)

    def live_out(self, pc: int) -> frozenset[int]:
        """Registers live just after *pc* executes."""
        block = self.cfg.block_of(pc)
        if block.start not in self.solution:
            return frozenset()
        # For a backward problem solution[(in, out)] is (live at block end,
        # live at block start); walk back from the end to just past pc.
        end_live, _ = self.solution[block.start]
        return self._walk_back(block, end_live, pc + 1)


class DefiniteAssignment:
    """Forward must-analysis: registers written on every path so far."""

    ALL = frozenset(range(NUM_REGS))

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        outer = self

        class _Problem(DataflowProblem[frozenset[int]]):
            direction = "forward"

            def boundary(self) -> frozenset[int]:
                return frozenset({0})        # x0 is always defined

            def top(self) -> frozenset[int]:
                return DefiniteAssignment.ALL

            def meet(self, a: frozenset[int],
                     b: frozenset[int]) -> frozenset[int]:
                return a & b

            def transfer(self, block: BasicBlock,
                         value: frozenset[int]) -> frozenset[int]:
                return outer._walk(block, value, block.end)

        self.solution = solve(cfg, _Problem())

    def _walk(self, block: BasicBlock, value: frozenset[int],
              stop_pc: int) -> frozenset[int]:
        assigned = set(value)
        for pc in range(block.start, stop_pc):
            assigned.update(_writes(self.cfg.program[pc]))
        return frozenset(assigned)

    def assigned_before(self, pc: int) -> frozenset[int]:
        block = self.cfg.block_of(pc)
        if block.start not in self.solution:
            return self.ALL
        block_in, _ = self.solution[block.start]
        return self._walk(block, block_in, pc)


def unassigned_reads(cfg: CFG) -> list[tuple[int, int]]:
    """``(pc, reg)`` reads of registers not assigned on every path."""
    analysis = DefiniteAssignment(cfg)
    findings = []
    for start in cfg.rpo:
        block = cfg.blocks[start]
        assigned = set(analysis.solution[start][0])
        for pc in block.pcs:
            inst = cfg.program[pc]
            for reg in _reads(inst):
                if reg not in assigned:
                    findings.append((pc, reg))
            assigned.update(_writes(inst))
    return findings


def dead_definitions(cfg: CFG,
                     keep: Callable[[Instruction], bool] | None = None,
                     ) -> list[tuple[int, int]]:
    """``(pc, reg)`` definitions whose value is never read afterwards.

    *keep* can exempt instruction kinds with side effects beyond the
    register write (loads touch the memory hierarchy, for instance).
    """
    live = LiveRegisters(cfg)
    findings = []
    for start in cfg.rpo:
        for pc in cfg.blocks[start].pcs:
            inst = cfg.program[pc]
            if keep is not None and keep(inst):
                continue
            for reg in _writes(inst):
                if reg not in live.live_out(pc):
                    findings.append((pc, reg))
    return findings


def dead_stores(cfg: CFG) -> list[tuple[int, int, int]]:
    """``(pc, reg, kill_pc)`` definitions overwritten before any read.

    The stronger form of a dead definition: the value is not merely unread
    (which also happens at program exit), it is clobbered by a later write
    to the same register that the definition still reaches.  ``kill_pc`` is
    the earliest such overwriting definition.  Liveness guarantees no path
    reads the value, so attributing the kill through may-reaching
    definitions cannot mislabel a value that is consumed somewhere.
    """
    live = LiveRegisters(cfg)
    reach = ReachingDefinitions(cfg)
    kills: dict[Def, int] = {}
    for start in cfg.rpo:
        for kill_pc in cfg.blocks[start].pcs:
            for reg in _writes(cfg.program[kill_pc]):
                for def_pc in reach.reaching(kill_pc, reg):
                    if def_pc == kill_pc:
                        continue
                    if reg in live.live_out(def_pc):
                        continue
                    key = (def_pc, reg)
                    if key not in kills or kill_pc < kills[key]:
                        kills[key] = kill_pc
    return sorted((pc, reg, kill) for (pc, reg), kill in kills.items())
