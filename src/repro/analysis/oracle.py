"""Dynamic oracle: cross-validate static vectorization claims at runtime.

The static analyses make three kinds of checkable claims:

* *assumed independence* — two accesses touch distinct base regions
  (:class:`~repro.analysis.memdep.DepEdge` with ``basis == "assumed"``);
  regions-are-disjoint means their observed address ranges never overlap;
* *seed strides* — a striding seed advances by its static byte stride;
  every dynamic PRM round generated from that seed must use that stride;
* *divergence containment* — lane masking only ever happens at branches
  the plan marked divergent (or, for seeds that joined the round as
  unrolled chains, branches inside the seed's static taint chain).  In
  particular a loop the plan declares ``BATCHABLE`` must never mask a
  lane inside its body.

:class:`OracleRecorder` is an opt-in hook on
:class:`~repro.svr.unit.ScalarVectorUnit` (``unit.oracle = recorder``);
when absent the unit pays a single ``is not None`` test per committed
instruction, keeping the simulator hot path clean.  The recorder captures
the real-path address stream per pc, every per-lane SVI address, the
stride of every PRM round, and every branch-divergence masking event
tagged with the seeds active in that round.  :func:`validate_plan` then
checks every claim and returns an :class:`OracleReport`; a non-empty
``violations`` list means the static analysis was unsound for this run —
CI fails loudly on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import build_cfg
from repro.analysis.taint import taint_chain
from repro.analysis.vectorplan import BATCHABLE, VectorizationPlan
from repro.isa.executor import ExecResult
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.memory.main_memory import MainMemory
from repro.svr.config import SVRConfig

ORACLE_SCHEMA = 1

# Bounded capture so long runs cannot grow memory without limit.
_MAX_SAMPLES = 32768          # exact addresses kept per stream
_MAX_DELTAS = 64              # distinct per-pc address deltas tracked
_MAX_MASK_SITES = 1024        # distinct (pc, seeds) masking sites


@dataclass
class AccessStream:
    """Observed address stream of one static load/store instruction."""

    pc: int
    is_store: bool
    count: int = 0
    min_addr: int = 0
    max_addr: int = 0
    last_addr: int | None = None
    truncated: bool = False
    samples: set[int] = field(default_factory=set)
    deltas: dict[int, int] = field(default_factory=dict)

    def observe(self, addr: int) -> None:
        if self.count == 0:
            self.min_addr = self.max_addr = addr
        else:
            if addr < self.min_addr:
                self.min_addr = addr
            if addr > self.max_addr:
                self.max_addr = addr
            assert self.last_addr is not None
            delta = addr - self.last_addr
            if delta in self.deltas:
                self.deltas[delta] += 1
            elif len(self.deltas) < _MAX_DELTAS:
                self.deltas[delta] = 1
        self.count += 1
        self.last_addr = addr
        if len(self.samples) < _MAX_SAMPLES:
            self.samples.add(addr)
        else:
            self.truncated = True

    def to_dict(self) -> dict:
        return {
            "pc": self.pc,
            "access": "store" if self.is_store else "load",
            "count": self.count,
            "min_addr": self.min_addr,
            "max_addr": self.max_addr,
            "distinct_addrs": len(self.samples),
            "truncated": self.truncated,
        }


class OracleRecorder:
    """Per-run capture of real and speculative address/branch behaviour."""

    def __init__(self) -> None:
        self.real: dict[int, AccessStream] = {}
        self.svi: dict[int, AccessStream] = {}
        self.round_strides: dict[int, set[int]] = {}
        self.mask_sites: dict[tuple[int, tuple[int, ...]], int] = {}
        self.mask_sites_truncated = False
        self.rounds = 0
        self.commits = 0
        self._round_seeds: set[int] = set()

    # -- hooks called by ScalarVectorUnit (all opt-in) ----------------------

    def on_round_start(self, seed_pc: int) -> None:
        self.rounds += 1
        self._round_seeds = {seed_pc}

    def on_round_join(self, seed_pc: int) -> None:
        self._round_seeds.add(seed_pc)

    def on_round_end(self) -> None:
        self._round_seeds = set()

    def observe_commit(self, pc: int, inst: Instruction,
                       result: ExecResult) -> None:
        self.commits += 1
        if inst.is_mem and result.address is not None:
            stream = self.real.get(pc)
            if stream is None:
                stream = AccessStream(pc, inst.is_store)
                self.real[pc] = stream
            stream.observe(result.address)

    def observe_svi(self, pc: int, addr: int, *, is_store: bool) -> None:
        stream = self.svi.get(pc)
        if stream is None:
            stream = AccessStream(pc, is_store)
            self.svi[pc] = stream
        stream.observe(addr)

    def observe_stride_round(self, seed_pc: int, stride: int) -> None:
        self.round_strides.setdefault(seed_pc, set()).add(stride)

    def observe_mask(self, pc: int) -> None:
        key = (pc, tuple(sorted(self._round_seeds)))
        if key in self.mask_sites:
            self.mask_sites[key] += 1
        elif len(self.mask_sites) < _MAX_MASK_SITES:
            self.mask_sites[key] = 1
        else:
            self.mask_sites_truncated = True

    # -- derived views ------------------------------------------------------

    def real_range(self, pc: int) -> tuple[int, int] | None:
        """[min, max] architectural address range of *pc*.

        Dependence claims are validated against the *real* stream only:
        speculative lane addresses legitimately overrun an array's end by
        up to ``vector_length * stride`` bytes into the next allocation,
        and transient SVIs never write, so they cannot witness an actual
        dependence.
        """
        stream = self.real.get(pc)
        if stream is None or stream.count == 0:
            return None
        return stream.min_addr, stream.max_addr

    def real_samples(self, pc: int) -> tuple[set[int], bool]:
        """Captured architectural addresses of *pc* plus truncation flag."""
        stream = self.real.get(pc)
        if stream is None:
            return set(), False
        return set(stream.samples), stream.truncated

    def to_dict(self) -> dict:
        return {
            "schema": ORACLE_SCHEMA,
            "commits": self.commits,
            "rounds": self.rounds,
            "real_streams": [self.real[pc].to_dict()
                             for pc in sorted(self.real)],
            "svi_streams": [self.svi[pc].to_dict()
                            for pc in sorted(self.svi)],
            "round_strides": {str(pc): sorted(strides)
                              for pc, strides in
                              sorted(self.round_strides.items())},
            "mask_sites": [
                {"pc": pc, "seeds": list(seeds), "events": count}
                for (pc, seeds), count in sorted(self.mask_sites.items())],
        }


@dataclass(frozen=True)
class Violation:
    """One unsound static claim, with the dynamic evidence against it."""

    kind: str               # "independence" | "stride" | "divergence" |
    #                         "unsound-batchable"
    pcs: tuple[int, ...]
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "pcs": list(self.pcs),
                "detail": self.detail}

    def __str__(self) -> str:
        where = ",".join(str(p) for p in self.pcs)
        return f"{self.kind} @ pc {where}: {self.detail}"


@dataclass(frozen=True)
class OracleReport:
    """Outcome of validating one plan against one recorded run."""

    name: str
    violations: tuple[Violation, ...]
    checks: int
    rounds: int
    commits: int
    mask_events: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "schema": ORACLE_SCHEMA,
            "name": self.name,
            "ok": self.ok,
            "checks": self.checks,
            "rounds": self.rounds,
            "commits": self.commits,
            "mask_events": self.mask_events,
            "violations": [v.to_dict() for v in self.violations],
        }


def validate_plan(program: Program, plan: VectorizationPlan,
                  recorder: OracleRecorder) -> OracleReport:
    """Check every static claim in *plan* against *recorder*'s trace."""
    cfg = build_cfg(program)
    violations: list[Violation] = []
    checks = 0

    # 1. Independence claims: assumed-disjoint regions must have disjoint
    #    observed ranges; proved interleavings must never share an address.
    for lp in plan.loops:
        for edge in lp.deps.edges:
            if edge.verdict != "independent":
                continue
            range_a = recorder.real_range(edge.src_pc)
            range_b = recorder.real_range(edge.dst_pc)
            if range_a is None or range_b is None:
                continue
            checks += 1
            if edge.basis == "assumed":
                if range_a[0] <= range_b[1] and range_b[0] <= range_a[1]:
                    violations.append(Violation(
                        "independence", (edge.src_pc, edge.dst_pc),
                        f"regions assumed disjoint but ranges overlap: "
                        f"[{range_a[0]:#x},{range_a[1]:#x}] vs "
                        f"[{range_b[0]:#x},{range_b[1]:#x}] "
                        f"(loop {lp.header}, {edge.reason})"))
            else:
                addrs_a, trunc_a = recorder.real_samples(edge.src_pc)
                addrs_b, trunc_b = recorder.real_samples(edge.dst_pc)
                if trunc_a or trunc_b:
                    continue
                shared = addrs_a & addrs_b
                if shared:
                    violations.append(Violation(
                        "independence", (edge.src_pc, edge.dst_pc),
                        f"proved independent ({edge.reason}) but "
                        f"{len(shared)} shared address(es), e.g. "
                        f"{min(shared):#x} (loop {lp.header})"))

    # 2. Stride claims: every PRM round generated from a seed must use the
    #    statically derived byte stride.
    static_strides = {pc: stride for lp in plan.loops
                      for pc, stride in lp.seeds}
    for seed_pc, observed in sorted(recorder.round_strides.items()):
        expect = static_strides.get(seed_pc)
        if expect is None:
            continue
        checks += 1
        wrong = sorted(s for s in observed if s != expect)
        if wrong:
            violations.append(Violation(
                "stride", (seed_pc,),
                f"static stride {expect} but dynamic rounds used "
                f"stride(s) {wrong}"))

    # 3. Divergence containment: a masking event is only legal at a branch
    #    the plan marked divergent for one of the round's seeds, inside that
    #    seed's static taint chain, or at the seed loop's own trip branch
    #    (loop-bound tail masking — the vector-epilogue case, where lanes
    #    past the trip count are cut off, not data divergence).
    allowed: dict[int, frozenset[int]] = {}
    trip_allowed: dict[int, frozenset[int]] = {}
    for lp in plan.loops:
        for seed_pc, _ in lp.seeds:
            chain = taint_chain(cfg, seed_pc)
            branch_pcs = frozenset(
                pc for pc in chain.chain_pcs if program[pc].is_branch)
            allowed[seed_pc] = (branch_pcs
                                | frozenset(lp.divergent_branch_pcs)
                                | frozenset(lp.trip_branch_pcs))
            trip_allowed[seed_pc] = frozenset(lp.trip_branch_pcs)
    mask_events = 0
    for (pc, seeds), count in sorted(recorder.mask_sites.items()):
        mask_events += count
        checks += 1
        legal = any(pc in allowed.get(seed, frozenset()) for seed in seeds)
        if not legal:
            violations.append(Violation(
                "divergence", (pc,),
                f"{count} masking event(s) at a branch no plan marked "
                f"divergent (round seeds {list(seeds)})"))
        # The BATCHABLE claim is per-round: a round seeded at a BATCHABLE
        # loop's seed must never mask a lane for a data-dependent reason.
        # Masking at the same pc in a round seeded elsewhere (e.g. the
        # outer loop, whose plan carries the lane-mask guard) does not
        # contradict it, and neither does tail masking at the seed loop's
        # own trip branch.
        for seed in seeds:
            lp = plan.plan_for_seed(seed)
            if (lp is not None and lp.verdict == BATCHABLE
                    and pc not in trip_allowed.get(seed, frozenset())):
                violations.append(Violation(
                    "unsound-batchable", (pc,),
                    f"loop {lp.header} is BATCHABLE but a round seeded at "
                    f"pc {seed} masked lanes at pc {pc} "
                    f"({count} event(s))"))

    return OracleReport(
        name=plan.name,
        violations=tuple(violations),
        checks=checks,
        rounds=recorder.rounds,
        commits=recorder.commits,
        mask_events=mask_events,
    )


def collect_trace(program: Program, memory: MainMemory, *,
                  svr: SVRConfig | None = None,
                  max_steps: int = 200_000) -> OracleRecorder:
    """Run *program* on an in-order core with SVR and record the oracle.

    Mirrors the standard test harness wiring (no hardware stride
    prefetcher, default core config) so oracle runs are deterministic and
    comparable across sessions.
    """
    from repro.cores.inorder import InOrderCore
    from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
    from repro.svr.unit import ScalarVectorUnit

    hierarchy = MemoryHierarchy(memory,
                                MemoryConfig(stride_prefetcher=False))
    unit = ScalarVectorUnit(svr or SVRConfig())
    recorder = OracleRecorder()
    unit.oracle = recorder
    core = InOrderCore(program, memory, hierarchy, None, svr=unit)
    core.run(max_steps)
    return recorder


def oracle_check(program: Program, memory: MainMemory,
                 plan: VectorizationPlan, *,
                 svr: SVRConfig | None = None,
                 max_steps: int = 200_000) -> OracleReport:
    """Collect a trace and validate *plan* against it in one call."""
    recorder = collect_trace(program, memory, svr=svr, max_steps=max_steps)
    return validate_plan(program, plan, recorder)
