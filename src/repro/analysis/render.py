"""Text rendering for lint reports, in the style of ``repro stats`` tables."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.lint import LintReport

if TYPE_CHECKING:                                    # pragma: no cover
    from repro.analysis.oracle import OracleReport
    from repro.analysis.vectorplan import VectorizationPlan


def _table(headers: list[str], rows: list[list[str]],
           indent: str = "  ") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [indent + "  ".join(h.ljust(widths[i])
                                for i, h in enumerate(headers)).rstrip()]
    for row in rows:
        lines.append(indent + "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def format_diagnostics(report: LintReport) -> str:
    """One gcc-style line per diagnostic, or an all-clear note."""
    if not report.diagnostics:
        return f"{report.name}: clean (no diagnostics)"
    lines = [f"{report.name}: {len(report.errors)} error(s), "
             f"{len(report.warnings)} warning(s)"]
    lines.extend(f"  {report.name}:{diag}" for diag in report.diagnostics)
    return "\n".join(lines)


def format_load_table(report: LintReport) -> str:
    """Per-load classification table (class, stride, feeding loads)."""
    if not report.loads:
        return "  (no loads)"
    rows = []
    for info in report.loads:
        rows.append([
            str(info.pc),
            info.load_class.value,
            "-" if info.stride is None else str(info.stride),
            "-" if info.iv_reg is None else f"x{info.iv_reg}",
            "-" if info.loop_header is None else str(info.loop_header),
            ",".join(str(p) for p in info.depends_on) or "-",
        ])
    return _table(["pc", "class", "stride", "iv", "loop", "feeds-from"],
                  rows)


def format_chain_table(report: LintReport) -> str:
    """Per-seed dependent-chain summary (length, loads, SRF pressure)."""
    if not report.chains:
        return "  (no striding seeds)"
    rows = []
    for chain in report.chains:
        rows.append([
            str(chain.seed_pc),
            "-" if chain.loop_header is None else str(chain.loop_header),
            str(chain.chain_length),
            str(len(chain.dependent_loads)),
            str(chain.srf_pressure),
            str(len(chain.chain_pcs)),
        ])
    return _table(["seed", "loop", "chain/iter", "dep-loads",
                   "srf-regs", "total-chain"], rows)


def format_plan_table(plan: "VectorizationPlan") -> str:
    """Per-loop vectorization verdict table for ``repro analyze``."""
    if not plan.loops:
        return "  (no loops)"
    rows = []
    for lp in plan.loops:
        rows.append([
            str(lp.header),
            lp.verdict,
            ",".join(f"{pc}/{stride}" for pc, stride in lp.seeds) or "-",
            "; ".join(str(g) for g in lp.guards) or "-",
            "; ".join(r.kind for r in lp.reasons) or "-",
        ])
    return _table(["loop", "verdict", "seeds(pc/stride)", "guards",
                   "reasons"], rows)


def format_plan(plan: "VectorizationPlan") -> str:
    """Full human-readable plan output for one program."""
    head = (f"{plan.name}: {len(plan.loops)} loop(s), "
            f"VL={plan.vector_length}, "
            f"fingerprint {plan.fingerprint()[:12]}")
    return "\n".join([head, format_plan_table(plan)])


def format_oracle_report(report: "OracleReport") -> str:
    """Oracle verdict line plus one line per violation."""
    status = "validated" if report.ok else "UNSOUND"
    lines = [f"{report.name}: oracle {status} "
             f"({report.checks} check(s), {report.rounds} round(s), "
             f"{report.commits} commit(s), "
             f"{report.mask_events} mask event(s))"]
    lines.extend(f"  {report.name}: {v.kind} at pc(s) "
                 f"{','.join(str(p) for p in v.pcs)}: {v.detail}"
                 for v in report.violations)
    return "\n".join(lines)


def format_report(report: LintReport, *, verbose: bool = True) -> str:
    """Full human-readable lint output for one program."""
    parts = [format_diagnostics(report)]
    if verbose:
        parts.append(f"\nloads ({report.num_loops} loop(s), "
                     f"{report.num_blocks} block(s)):")
        parts.append(format_load_table(report))
        parts.append("\nstatic SVR chains:")
        parts.append(format_chain_table(report))
    return "\n".join(parts)
