"""Induction-variable and static stride analysis (the static half of SVR).

For every natural loop the analysis finds the *basic induction variables*
(registers updated by exactly one loop-carried ``addi r, r, c``), then
symbolically evaluates each load's address register over the loop's def-use
chains.  The result mirrors what the dynamic stride detector discovers at
runtime (Fig 6 of the paper):

* address affine in an induction variable  →  :attr:`LoadClass.STRIDING`
  with a known byte stride per iteration;
* address derived from another load's result  →  :attr:`LoadClass.INDIRECT`
  (the loads SVR's taint chain vectorizes);
* address with no in-loop definition  →  :attr:`LoadClass.INVARIANT`;
* anything else (hashed/masked indices, multi-IV sums)  →
  :attr:`LoadClass.IRREGULAR`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG, Loop
from repro.analysis.dataflow import ReachingDefinitions
from repro.isa.instructions import Instruction, Opcode
from repro.svr.chain import LoadClass

# -- symbolic address expressions ------------------------------------------


@dataclass(frozen=True)
class _Expr:
    """Base class for the tiny address-expression lattice."""


@dataclass(frozen=True)
class Invariant(_Expr):
    """Loop-invariant value (constant within one loop instance)."""


@dataclass(frozen=True)
class Affine(_Expr):
    """``iv * scale + invariant`` for a basic induction variable ``iv``."""

    iv: int          # register index of the basic IV
    scale: int       # multiplier applied to the IV (bytes per index unit)


@dataclass(frozen=True)
class LoadDep(_Expr):
    """Value derived from the result of one or more in-loop loads."""

    loads: frozenset[int]      # pcs of the feeding loads


@dataclass(frozen=True)
class Unknown(_Expr):
    """Loop-variant but not affine and not load-derived."""


_INVARIANT = Invariant()
_UNKNOWN = Unknown()

# Opcodes whose result class simply follows their operands' classes with no
# affine structure preserved (hashing, masking, comparing ...).
_OPAQUE_OPS = frozenset({
    Opcode.AND, Opcode.ANDI, Opcode.OR, Opcode.ORI, Opcode.XOR, Opcode.XORI,
    Opcode.SRL, Opcode.SRLI, Opcode.MIN, Opcode.MAX, Opcode.FMUL,
    Opcode.CMP_LT, Opcode.CMP_LTU, Opcode.CMP_EQ, Opcode.CMP_NE,
    Opcode.CMP_GE, Opcode.SLL, Opcode.MUL,
})


@dataclass(frozen=True)
class InductionVariable:
    """A basic IV: single in-loop update ``addi reg, reg, step``."""

    reg: int
    step: int
    update_pc: int


@dataclass(frozen=True)
class LoadInfo:
    """Static classification of one load instruction."""

    pc: int
    load_class: LoadClass
    loop_header: int | None = None      # innermost loop's header block
    stride: int | None = None           # bytes/iteration for STRIDING
    iv_reg: int | None = None           # driving IV for STRIDING
    depends_on: tuple[int, ...] = ()    # feeding load pcs for INDIRECT

    def to_dict(self) -> dict:
        return {
            "pc": self.pc,
            "class": self.load_class.value,
            "loop_header": self.loop_header,
            "stride": self.stride,
            "iv_reg": self.iv_reg,
            "depends_on": list(self.depends_on),
        }


class StrideAnalysis:
    """Per-loop IV discovery and per-load address classification."""

    def __init__(self, cfg: CFG,
                 reaching: ReachingDefinitions | None = None) -> None:
        self.cfg = cfg
        self.program = cfg.program
        self.reaching = reaching or ReachingDefinitions(cfg)
        self._ivs: dict[int, dict[int, InductionVariable]] = {}
        self._loop_pcs: dict[int, frozenset[int]] = {}

    # -- induction variables ------------------------------------------------

    def induction_variables(self, loop: Loop) -> dict[int, InductionVariable]:
        """Basic IVs of *loop*, keyed by register index."""
        cached = self._ivs.get(loop.header)
        if cached is not None:
            return cached
        pcs = self._pcs_of(loop)
        defs_by_reg: dict[int, list[int]] = {}
        for pc in pcs:
            inst = self.program[pc]
            for reg in inst.regs_written():
                if reg != 0:
                    defs_by_reg.setdefault(reg, []).append(pc)
        ivs: dict[int, InductionVariable] = {}
        for reg, def_pcs in defs_by_reg.items():
            if len(def_pcs) != 1:
                continue
            inst = self.program[def_pcs[0]]
            if (inst.op is Opcode.ADDI and inst.rs1 == reg
                    and inst.imm != 0):
                ivs[reg] = InductionVariable(reg, inst.imm, def_pcs[0])
        self._ivs[loop.header] = ivs
        return ivs

    def _pcs_of(self, loop: Loop) -> frozenset[int]:
        cached = self._loop_pcs.get(loop.header)
        if cached is None:
            cached = frozenset(self.cfg.loop_pcs(loop))
            self._loop_pcs[loop.header] = cached
        return cached

    # -- symbolic evaluation ------------------------------------------------

    def address_expr(self, reg: int, use_pc: int, loop: Loop) -> _Expr:
        """Symbolic value of *reg* as read at *use_pc* within *loop*."""
        return self._eval_reg(reg, use_pc, loop, frozenset())

    def _eval_reg(self, reg: int, use_pc: int, loop: Loop,
                  visiting: frozenset[int]) -> _Expr:
        if reg == 0:
            return _INVARIANT
        if reg in self.induction_variables(loop):
            return Affine(reg, 1)
        pcs = self._pcs_of(loop)
        reaching = self.reaching.reaching(use_pc, reg)
        in_loop = [d for d in reaching if d in pcs]
        if not in_loop:
            return _INVARIANT
        exprs = [self._eval_def(d, loop, visiting) for d in in_loop]
        if len(in_loop) < len(reaching):
            # Some paths carry a pre-loop value: meet with invariant.
            exprs.append(_INVARIANT)
        result = exprs[0]
        for expr in exprs[1:]:
            result = _meet(result, expr)
        return result

    def _eval_def(self, def_pc: int, loop: Loop,
                  visiting: frozenset[int]) -> _Expr:
        if def_pc in visiting:
            return _UNKNOWN       # loop-carried cycle that is not a basic IV
        visiting = visiting | {def_pc}
        inst = self.program[def_pc]
        if inst.is_load:
            return LoadDep(frozenset({def_pc}))
        op = inst.op
        if op is Opcode.LI:
            return _INVARIANT
        if op in (Opcode.MV, Opcode.ADDI):
            return self._eval_reg(inst.rs1, def_pc, loop, visiting)
        if op is Opcode.SLLI:
            return _rescale(self._eval_reg(inst.rs1, def_pc, loop, visiting),
                            1 << (inst.imm & 63))
        if op is Opcode.MULI:
            return _rescale(self._eval_reg(inst.rs1, def_pc, loop, visiting),
                            inst.imm)
        if op in (Opcode.ADD, Opcode.FADD, Opcode.SUB):
            a = self._eval_reg(inst.rs1, def_pc, loop, visiting)
            b = self._eval_reg(inst.rs2, def_pc, loop, visiting)
            return _combine(a, b, negate_b=op is Opcode.SUB)
        if op in _OPAQUE_OPS:
            exprs = [self._eval_reg(r, def_pc, loop, visiting)
                     for r in inst.regs_read()]
            loads = frozenset().union(
                *(e.loads for e in exprs if isinstance(e, LoadDep)))
            if loads:
                return LoadDep(loads)
            if all(isinstance(e, Invariant) for e in exprs):
                return _INVARIANT
            return _UNKNOWN
        return _UNKNOWN

    # -- load classification ------------------------------------------------

    def classify_load(self, pc: int) -> LoadInfo:
        """Classify the load at *pc* against its innermost natural loop."""
        inst = self.program[pc]
        if not inst.is_load:
            raise ValueError(f"pc {pc} is not a load")
        loop = self.cfg.innermost_loop(pc)
        if loop is None:
            return LoadInfo(pc, LoadClass.NONLOOP)
        expr = self.address_expr(inst.rs1, pc, loop)
        if isinstance(expr, Affine):
            step = self.induction_variables(loop)[expr.iv].step
            stride = expr.scale * step
            if stride == 0:
                return LoadInfo(pc, LoadClass.INVARIANT, loop.header)
            return LoadInfo(pc, LoadClass.STRIDING, loop.header,
                            stride=stride, iv_reg=expr.iv)
        if isinstance(expr, LoadDep):
            return LoadInfo(pc, LoadClass.INDIRECT, loop.header,
                            depends_on=tuple(sorted(expr.loads)))
        if isinstance(expr, Invariant):
            return LoadInfo(pc, LoadClass.INVARIANT, loop.header)
        return LoadInfo(pc, LoadClass.IRREGULAR, loop.header)

    def loads(self) -> list[LoadInfo]:
        """Classify every (reachable) load in the program, in pc order."""
        infos = []
        for start in self.cfg.rpo:
            for pc in self.cfg.blocks[start].pcs:
                if self.program[pc].is_load:
                    infos.append(self.classify_load(pc))
        return sorted(infos, key=lambda info: info.pc)


def _rescale(expr: _Expr, factor: int) -> _Expr:
    if isinstance(expr, Affine):
        return Affine(expr.iv, expr.scale * factor)
    if isinstance(expr, (Invariant, LoadDep)):
        return expr
    return _UNKNOWN


def _combine(a: _Expr, b: _Expr, *, negate_b: bool) -> _Expr:
    loads = frozenset()
    for e in (a, b):
        if isinstance(e, LoadDep):
            loads = loads | e.loads
    if loads:
        return LoadDep(loads)
    if isinstance(a, Unknown) or isinstance(b, Unknown):
        return _UNKNOWN
    if isinstance(a, Invariant) and isinstance(b, Invariant):
        return _INVARIANT
    if isinstance(a, Invariant):
        assert isinstance(b, Affine)
        return Affine(b.iv, -b.scale if negate_b else b.scale)
    if isinstance(b, Invariant):
        assert isinstance(a, Affine)
        return a
    assert isinstance(a, Affine) and isinstance(b, Affine)
    if a.iv != b.iv:
        return _UNKNOWN
    scale = a.scale + (-b.scale if negate_b else b.scale)
    return Affine(a.iv, scale) if scale else _INVARIANT


def _meet(a: _Expr, b: _Expr) -> _Expr:
    """Join values arriving over different paths."""
    if a == b:
        return a
    if isinstance(a, LoadDep) and isinstance(b, LoadDep):
        return LoadDep(a.loads | b.loads)
    # A load-derived value on one path dominates the classification: the
    # dynamic taint tracker would taint the register on that path.
    if isinstance(a, LoadDep):
        return a
    if isinstance(b, LoadDep):
        return b
    return _UNKNOWN
