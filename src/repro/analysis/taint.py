"""Static taint analysis — the chain a perfect SVR unit would vectorize.

The dynamic :class:`~repro.svr.taint_tracker.TaintTracker` marks registers
holding values derived from a striding load while in piggyback runahead
mode; every instruction reading a tainted register becomes a dependent SVI
(paper Fig 8).  This module computes the *static* over-approximation of
that chain: seed the taint at a load's destination, propagate it through
register def-use edges to a fixpoint, and never untaint.  Because the
dynamic tracker only ever adds chain members whose sources were tainted by
exactly such def-use paths, the dynamic chain observed in any run is a
subset of the static chain computed here — which is what
``tests/test_static_vs_dynamic.py`` asserts kernel by kernel.

Per striding seed the analysis also reports the paper's two sizing
quantities: the expected SVI chain length per loop iteration (how many
dependent instructions fall inside the seed's loop) and the SRF pressure
(how many distinct architectural registers the chain maps into the
speculative register file, seed included).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG
from repro.analysis.induction import LoadInfo, StrideAnalysis
from repro.svr.chain import LoadClass


@dataclass(frozen=True)
class StaticChain:
    """The statically computed dependent chain of one seed load."""

    seed_pc: int
    loop_header: int | None
    chain_pcs: frozenset[int]       # dependent instructions (seed excluded)
    tainted_regs: frozenset[int]
    loop_chain_pcs: frozenset[int]  # chain restricted to the seed's loop
    dependent_loads: tuple[int, ...]
    srf_regs: frozenset[int]        # registers needing SRF entries

    @property
    def chain_length(self) -> int:
        """Expected dependent SVIs per iteration (in-loop chain size)."""
        return len(self.loop_chain_pcs)

    @property
    def srf_pressure(self) -> int:
        return len(self.srf_regs)

    def to_dict(self) -> dict:
        return {
            "seed_pc": self.seed_pc,
            "loop_header": self.loop_header,
            "chain_pcs": sorted(self.chain_pcs),
            "tainted_regs": sorted(self.tainted_regs),
            "chain_length": self.chain_length,
            "dependent_loads": list(self.dependent_loads),
            "srf_pressure": self.srf_pressure,
        }


def taint_chain(cfg: CFG, seed_pc: int) -> StaticChain:
    """Propagate taint from the load at *seed_pc* to a fixpoint.

    Propagation is flow-insensitive over the whole program (runahead rounds
    follow the real instruction stream wherever it goes until termination),
    so the result is a safe superset of any dynamic chain.
    """
    program = cfg.program
    seed = program[seed_pc]
    if not seed.is_load or seed.rd is None:
        raise ValueError(f"seed pc {seed_pc} is not a load")
    loop = cfg.innermost_loop(seed_pc)
    reachable_pcs = [pc for start in cfg.rpo
                     for pc in cfg.blocks[start].pcs]
    tainted: set[int] = {seed.rd}
    chain: set[int] = set()
    changed = True
    while changed:
        changed = False
        for pc in reachable_pcs:
            if pc == seed_pc:
                continue
            inst = program[pc]
            if not any(r in tainted for r in inst.regs_read() if r != 0):
                continue
            if pc not in chain:
                chain.add(pc)
                changed = True
            for rd in inst.regs_written():
                if rd != 0 and rd not in tainted:
                    tainted.add(rd)
                    changed = True
    loop_pcs = (frozenset(cfg.loop_pcs(loop)) if loop is not None
                else frozenset())
    loop_chain = frozenset(chain) & loop_pcs
    dependent_loads = tuple(sorted(
        pc for pc in chain if program[pc].is_load))
    srf_regs = {seed.rd}
    for pc in loop_chain if loop is not None else chain:
        inst = program[pc]
        if inst.is_store or inst.is_branch:
            continue
        srf_regs.update(r for r in inst.regs_written() if r != 0)
    return StaticChain(
        seed_pc=seed_pc,
        loop_header=loop.header if loop is not None else None,
        chain_pcs=frozenset(chain),
        tainted_regs=frozenset(tainted),
        loop_chain_pcs=loop_chain,
        dependent_loads=dependent_loads,
        srf_regs=frozenset(srf_regs),
    )


def chains_for_program(cfg: CFG,
                       loads: list[LoadInfo] | None = None,
                       ) -> list[StaticChain]:
    """One :class:`StaticChain` per statically striding load."""
    if loads is None:
        loads = StrideAnalysis(cfg).loads()
    return [taint_chain(cfg, info.pc) for info in loads
            if info.load_class is LoadClass.STRIDING]
