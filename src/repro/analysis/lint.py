"""Kernel lint: diagnostics over a program plus the analysis summaries.

:func:`lint_program` runs every static check and bundles the results with
the stride/taint summaries into a :class:`LintReport`.  Diagnostics carry a
severity, a stable code (catalogued in :data:`DIAGNOSTIC_CATALOG`), the
offending pc and a disassembled excerpt, so they render equally well as CLI
text, JSON for CI, or pytest assertion messages.

Checks
------
``E001``  control flow can run off the end of the program (no ``halt``)
``E002``  assembly source failed to parse (CLI ``.s`` targets only; the
          diagnostic's ``pc`` field carries the source line number)
``W101``  register read before any definite assignment (reads the
          architectural zero a fresh register file supplies)
``W102``  basic block unreachable from the entry
``W103``  dead definition: the value written is never read on any path
``W104``  write to ``x0`` is architecturally discarded
``W105``  a loop anchors an SVR chain yet its vectorization plan is
          ``SCALAR_ONLY`` — runahead seeds exist but lane batching is
          statically illegal, so the SoA executor will serialise it
``W106``  dead store: the register is overwritten before any read (the
          in-flow variant of ``W103``, with the clobbering pc identified)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    dead_definitions,
    dead_stores,
    unassigned_reads,
)
from repro.analysis.induction import LoadInfo, StrideAnalysis
from repro.analysis.taint import StaticChain, chains_for_program
from repro.analysis.vectorplan import SCALAR_ONLY, build_plan
from repro.isa.program import Program

# Serialization format version for LintReport.to_dict()/Diagnostic.to_dict().
# Reports emitted before the field existed are implicitly schema 1; schema 2
# added the version fields themselves plus the W105/W106 checks.
LINT_SCHEMA = 2

DIAGNOSTIC_CATALOG: dict[str, str] = {
    "E001": "control flow can fall off the end of the program",
    "E002": "assembly source failed to parse",
    "W101": "register is read before it is definitely assigned",
    "W102": "basic block is unreachable from the entry",
    "W103": "dead definition: the written value is never read",
    "W104": "write to x0 is discarded",
    "W105": "loop seeds an SVR chain but its plan is SCALAR_ONLY",
    "W106": "dead store: the register is overwritten before any read",
}


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: severity, stable code, location and rendered line."""

    severity: Severity
    code: str
    pc: int
    message: str
    line: str = ""           # disassembled instruction text

    def __str__(self) -> str:
        where = f"pc {self.pc:>4}"
        text = f"{where}: {self.severity}[{self.code}]: {self.message}"
        if self.line:
            text += f"   | {self.line}"
        return text

    def to_dict(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "severity": self.severity.value,
            "code": self.code,
            "pc": self.pc,
            "message": self.message,
            "line": self.line,
        }


@dataclass
class LintReport:
    """Everything the lint pass learned about one program."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    loads: list[LoadInfo] = field(default_factory=list)
    chains: list[StaticChain] = field(default_factory=list)
    num_blocks: int = 0
    num_loops: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (CI gate)."""
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "name": self.name,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "loads": [info.to_dict() for info in self.loads],
            "chains": [chain.to_dict() for chain in self.chains],
            "blocks": self.num_blocks,
            "loops": self.num_loops,
        }


def _disasm(program: Program, pc: int) -> str:
    if 0 <= pc < len(program):
        return str(program[pc])
    return ""


def lint_program(program: Program, name: str | None = None) -> LintReport:
    """Run every static check over *program* and return the report."""
    report = LintReport(name=name or program.name)
    cfg = build_cfg(program)
    report.num_blocks = len(cfg.blocks)
    report.num_loops = len(cfg.loops)
    diags = report.diagnostics

    if len(program) == 0:
        diags.append(Diagnostic(Severity.ERROR, "E001", 0,
                                "program is empty"))
        return report

    reachable_off_end = [pc for pc in cfg.off_end_pcs
                         if cfg.block_of(pc).start in cfg.reachable]
    for pc in sorted(reachable_off_end):
        diags.append(Diagnostic(
            Severity.ERROR, "E001", pc,
            "control flow can fall off the end of the program "
            "(missing halt)", _disasm(program, pc)))

    for block in cfg.unreachable_blocks:
        diags.append(Diagnostic(
            Severity.WARNING, "W102", block.start,
            f"unreachable block pc {block.start}..{block.end - 1}",
            _disasm(program, block.start)))

    for pc, reg in sorted(unassigned_reads(cfg)):
        diags.append(Diagnostic(
            Severity.WARNING, "W101", pc,
            f"x{reg} may be read before assignment "
            "(reads architectural zero)", _disasm(program, pc)))

    kills = {(pc, reg): kill for pc, reg, kill in dead_stores(cfg)}
    for pc, reg in sorted(dead_definitions(cfg)):
        kill = kills.get((pc, reg))
        if kill is not None:
            diags.append(Diagnostic(
                Severity.WARNING, "W106", pc,
                f"dead store to x{reg}: overwritten at pc {kill} "
                "before any read", _disasm(program, pc)))
        else:
            diags.append(Diagnostic(
                Severity.WARNING, "W103", pc,
                f"dead definition of x{reg}: value is never read",
                _disasm(program, pc)))

    for start in cfg.rpo:
        for pc in cfg.blocks[start].pcs:
            inst = program[pc]
            if inst.rd == 0:
                diags.append(Diagnostic(
                    Severity.WARNING, "W104", pc,
                    "write to x0 is discarded", _disasm(program, pc)))

    analysis = StrideAnalysis(cfg)
    report.loads = analysis.loads()
    report.chains = chains_for_program(cfg, report.loads)

    # W105: runahead will seed chains here, but the vectorization plan says
    # lane batching is illegal — the SoA executor would serialise the loop.
    plan = build_plan(program, name=report.name)
    for lp in plan.loops:
        if lp.seeds and lp.verdict == SCALAR_ONLY:
            kinds = ", ".join(sorted({r.kind for r in lp.reasons}))
            diags.append(Diagnostic(
                Severity.WARNING, "W105", lp.header,
                f"loop seeds an SVR chain but its plan is SCALAR_ONLY "
                f"({kinds})", _disasm(program, lp.header)))

    diags.sort(key=lambda d: (d.pc, d.code))
    return report
