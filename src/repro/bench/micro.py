"""The microbenchmark catalogue: hot paths of the simulator itself.

Ten benchmarks across five groups, registered with
:mod:`repro.bench.registry` at import time:

* ``core.*``  — in-order and out-of-order core stepping over a real
  workload (build + warmup in setup, only the measured window is timed);
* ``svr.*``   — the SVR unit driving PRM rounds on an in-order core;
* ``mem.*``   — the cache hierarchy, the TLB + page-table-walker pool and
  the DRAM interval scheduler, driven directly with synthetic streams;
* ``isa.*``   — the text assembler;
* ``e2e.*``   — whole simulation cells routed through
  :func:`repro.exec.run_cells`, so they inherit the resilient executor's
  kill fences and fault isolation (and measure its dispatch overhead).

Work sizes shrink under ``BenchContext.quick`` so ``repro bench --quick``
stays CI-friendly while exercising the identical code paths.
"""

from __future__ import annotations

from repro.bench.registry import BenchContext, Work, register
from repro.cores.inorder import InOrderCore
from repro.cores.ooo import OutOfOrderCore
from repro.exec import RunSpec, run_cells
from repro.isa import assembler
from repro.memory.dram import DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.memory.tlb import TlbHierarchy
from repro.svr.config import SVRConfig
from repro.svr.unit import ScalarVectorUnit
from repro.workloads.registry import build_workload

_WARMUP = 400


def _core_setup(ctx: BenchContext, workload: str, *,
                svr_length: int | None = None, ooo: bool = False,
                lane_engine: str = "auto"):
    """Shared builder for the core-stepping benchmarks."""
    measure = 1_500 if ctx.quick else 6_000
    wl = build_workload(workload, "tiny")
    hierarchy = MemoryHierarchy(wl.memory)
    if ooo:
        core = OutOfOrderCore(wl.program, wl.memory, hierarchy)
    else:
        svr = (ScalarVectorUnit(SVRConfig(vector_length=svr_length,
                                          lane_engine=lane_engine))
               if svr_length is not None else None)
        core = InOrderCore(wl.program, wl.memory, hierarchy, svr=svr)
    core.run(_WARMUP)
    core.reset_stats()

    def rep() -> Work:
        core.run(measure)
        stats = core.stats
        return Work(units=stats.instructions, sim_cycles=stats.cycles,
                    instructions=stats.instructions)

    return rep


@register("core.inorder.step", group="core", unit="instructions",
          description="in-order core stepping (Camel, tiny scale)")
def _bench_inorder(ctx: BenchContext):
    return _core_setup(ctx, "Camel")


@register("core.ooo.step", group="core", unit="instructions",
          description="out-of-order core stepping (Camel, tiny scale)")
def _bench_ooo(ctx: BenchContext):
    return _core_setup(ctx, "Camel", ooo=True)


@register("svr.prm.rounds", group="svr", unit="instructions",
          description="in-order core + SVR16 unit: PRM rounds, SVI "
                      "issue, taint/stride training (Camel)")
def _bench_svr(ctx: BenchContext):
    return _core_setup(ctx, "Camel", svr_length=16)


@register("svr.soa.round", group="svr", unit="instructions",
          description="SVR64 batched SoA lane rounds (forced 'soa' "
                      "engine, Camel) — the numpy fast path end to end")
def _bench_svr_soa(ctx: BenchContext):
    return _core_setup(ctx, "Camel", svr_length=64, lane_engine="soa")


@register("mem.cache.access", group="mem", unit="accesses",
          description="L1/L2/MSHR demand loads over a mixed "
                      "sequential/strided address stream")
def _bench_cache(ctx: BenchContext):
    accesses = 2_000 if ctx.quick else 8_000
    memory = MainMemory(capacity_bytes=1 << 22)
    base = memory.alloc_array([0] * 8_192)
    hierarchy = MemoryHierarchy(memory)

    def rep() -> Work:
        time = 0.0
        last = 0.0
        seed = 0x9E3779B9
        for i in range(accesses):
            if i % 4 == 3:
                # Pseudo-random far touch: L2/DRAM pressure.
                seed = (seed * 1_103_515_245 + 12_345) & 0x7FFF_FFFF
                addr = base + (seed % 8_192) * 8
            else:
                addr = base + (i % 2_048) * 8
            outcome = hierarchy.load(addr, time, pc=4 * (i % 32))
            last = max(last, outcome.completion)
            time += 1.0
        return Work(units=accesses, sim_cycles=last)

    return rep


@register("mem.tlb.translate", group="mem", unit="translations",
          description="D-TLB/S-TLB lookups with page-table walks "
                      "through the DRAM model")
def _bench_tlb(ctx: BenchContext):
    translations = 2_000 if ctx.quick else 8_000
    tlb = TlbHierarchy(DramModel(), dtlb_entries=16, stlb_entries=64,
                       walkers=4)

    def rep() -> Work:
        time = 0.0
        last = 0.0
        for i in range(translations):
            page = (i * 7_919) % 4_096     # sweep far beyond both TLBs
            last = max(last, tlb.translate(page * 4_096, time))
            time += 2.0
        return Work(units=translations, sim_cycles=last)

    return rep


@register("mem.dram.schedule", group="mem", unit="accesses",
          description="DRAM busy-interval scheduling under heavy "
                      "bandwidth contention")
def _bench_dram(ctx: BenchContext):
    accesses = 3_000 if ctx.quick else 12_000
    dram = DramModel()

    def rep() -> Work:
        time = 0.0
        last = 0.0
        for _ in range(accesses):
            last = max(last, dram.access(time))
            time += 0.5               # oversubscribe the pipe
        return Work(units=accesses, sim_cycles=last)

    return rep


def _assembler_source() -> str:
    """A ~130-line synthetic kernel exercising labels, branches, loads."""
    blocks = []
    for block in range(8):
        blocks.append(f"""
        block{block}:
            li t0, {block}
            li t1, 64
            li t2, 0
        loop{block}:
            slli t3, t2, 3
            add t3, a0, t3
            ld t4, t3, 0
            add t0, t0, t4
            addi t2, t2, 1
            cmp_lt t5, t2, t1
            bnez t5, loop{block}
            st t0, a1, {8 * block}
        """)
    return "li a0, 0x10000\nli a1, 0x20000\n" + "".join(blocks) + "\nhalt\n"


@register("isa.assemble", group="isa", unit="instructions",
          description="text assembler over a 130-line synthetic kernel")
def _bench_assemble(ctx: BenchContext):
    repeats = 4 if ctx.quick else 16
    source = _assembler_source()

    def rep() -> Work:
        assembled = 0
        for _ in range(repeats):
            # Late-bound module attribute so a monkeypatched hot path is
            # measured (the regression-gate test relies on this).
            assembled += len(assembler.assemble(source, name="bench"))
        return Work(units=assembled)

    return rep


def _cell_setup(ctx: BenchContext, workload: str, technique: str):
    """End-to-end cell through the resilient executor."""
    spec = RunSpec.make(workload, technique, scale="tiny")

    def rep() -> Work:
        report = run_cells([spec], ctx.exec_config)
        outcome = report.outcomes[0]
        if not outcome.ok:
            raise RuntimeError(f"benchmark cell failed: {outcome.failure}")
        view = outcome.view
        return Work(units=view.instructions, sim_cycles=view.cycles,
                    instructions=view.instructions)

    return rep


@register("e2e.camel.svr16", group="e2e", unit="instructions",
          description="full Camel/svr16 tiny cell via exec.run_cells "
                      "(build + warmup + measure + export)")
def _bench_e2e_svr(ctx: BenchContext):
    return _cell_setup(ctx, "Camel", "svr16")


@register("e2e.prkr.inorder", group="e2e", unit="instructions",
          description="full PR_KR/inorder tiny cell via exec.run_cells")
def _bench_e2e_inorder(ctx: BenchContext):
    return _cell_setup(ctx, "PR_KR", "inorder")
