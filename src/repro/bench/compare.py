"""Trajectory loading and statistical regression gating.

A bench *trajectory* is the ordered set of ``BENCH_*.json`` artifacts in
one directory (file names sort chronologically; the in-repo seed
``BENCH_0001.json`` sorts first).  :func:`compare` confronts the current
summary with a baseline per benchmark on the primary throughput metric
(work units per wall-second, higher is better) and classifies each as
``ok`` / ``regression`` / ``improvement`` / ``new`` / ``missing`` /
``error``.

The significance threshold is MAD-scaled: a change only counts when it
exceeds *both* a relative floor (``rel_tolerance``, absorbing run-to-run
wall-clock noise) and ``mad_scale`` times the combined normalised MAD of
the two samples (1.4826 · MAD estimates σ for Gaussian noise).  Under
``--gate`` any ``regression`` / ``missing`` / ``error`` makes
``repro bench`` exit non-zero.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.bench.runner import ARTIFACT_GLOB

# 1.4826 * MAD approximates the standard deviation of Gaussian noise.
MAD_SIGMA = 1.4826

REGRESSION = "regression"
IMPROVEMENT = "improvement"
OK = "ok"
NEW = "new"
MISSING = "missing"
ERROR = "error"

GATE_FAILURES = (REGRESSION, MISSING, ERROR)


def find_artifacts(root: str | Path = ".") -> list[Path]:
    """Every trajectory point under *root*, oldest first."""
    return sorted(Path(root).glob(ARTIFACT_GLOB))


def load_artifact(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("kind") != "bench":
        raise ValueError(f"{path} is not a bench artifact")
    if data.get("schema") != 1:
        raise ValueError(f"{path}: unsupported bench schema "
                         f"{data.get('schema')!r}")
    return data


def latest_artifact(root: str | Path = ".",
                    exclude: Path | None = None) -> Path | None:
    """Newest trajectory point under *root*, skipping *exclude* (the
    artifact the current invocation just wrote)."""
    paths = find_artifacts(root)
    if exclude is not None:
        resolved = Path(exclude).resolve()
        paths = [p for p in paths if p.resolve() != resolved]
    return paths[-1] if paths else None


@dataclass(frozen=True)
class Delta:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    status: str                  # OK/REGRESSION/IMPROVEMENT/NEW/MISSING/ERROR
    baseline: float | None = None   # baseline throughput median
    current: float | None = None    # current throughput median
    change: float | None = None     # current/baseline - 1
    threshold: float | None = None  # relative threshold applied
    detail: str = ""

    @property
    def gate_failure(self) -> bool:
        return self.status in GATE_FAILURES


def _throughput(entry: dict[str, Any]) -> tuple[float, float] | None:
    stats = entry.get("throughput")
    if not isinstance(stats, dict) or "median" not in stats:
        return None
    return float(stats["median"]), float(stats.get("mad", 0.0))


def compare(current: dict[str, Any], baseline: dict[str, Any], *,
            rel_tolerance: float = 0.25,
            mad_scale: float = 4.0) -> list[Delta]:
    """Per-benchmark deltas of *current* against *baseline*, sorted by
    name.  See the module docstring for the significance rule."""
    cur = current.get("benchmarks", {})
    base = baseline.get("benchmarks", {})
    deltas = []
    for name in sorted(set(cur) | set(base)):
        c_entry, b_entry = cur.get(name), base.get(name)
        if c_entry is not None and "error" in c_entry:
            deltas.append(Delta(name, ERROR, detail=c_entry["error"]))
            continue
        if b_entry is None:
            deltas.append(Delta(name, NEW))
            continue
        if c_entry is None:
            deltas.append(Delta(
                name, MISSING,
                detail="present in baseline, absent from current run"))
            continue
        b_stat, c_stat = _throughput(b_entry), _throughput(c_entry)
        if b_stat is None:
            # Baseline itself failed; any measurement is an improvement.
            deltas.append(Delta(name, NEW, detail="baseline had no stats"))
            continue
        if c_stat is None:
            deltas.append(Delta(name, MISSING,
                                detail="current run has no stats"))
            continue
        b_med, b_mad = b_stat
        c_med, c_mad = c_stat
        if b_med <= 0:
            deltas.append(Delta(name, NEW,
                                detail="non-positive baseline median"))
            continue
        noise = mad_scale * MAD_SIGMA * (b_mad + c_mad) / b_med
        threshold = max(rel_tolerance, noise)
        change = c_med / b_med - 1.0
        if change < -threshold:
            status = REGRESSION
        elif change > threshold:
            status = IMPROVEMENT
        else:
            status = OK
        deltas.append(Delta(name, status, baseline=b_med, current=c_med,
                            change=change, threshold=threshold))
    return deltas


def gate(deltas: list[Delta]) -> bool:
    """True when the trajectory is clean (no gate failures)."""
    return not any(d.gate_failure for d in deltas)


def render_comparison(deltas: list[Delta], baseline_path: Path | None = None,
                      environment_note: str = "") -> str:
    """Human-readable comparison table."""
    lines = []
    if baseline_path is not None:
        lines.append(f"baseline: {baseline_path}")
    if environment_note:
        lines.append(f"note: {environment_note}")
    width = max((len(d.name) for d in deltas), default=4)
    for d in deltas:
        if d.change is None:
            lines.append(f"  {d.name:<{width}}  {d.status:<11} {d.detail}")
            continue
        lines.append(
            f"  {d.name:<{width}}  {d.status:<11} "
            f"{d.baseline:>12.1f} -> {d.current:>12.1f} units/s "
            f"({d.change:+.1%}, threshold ±{d.threshold:.0%})")
    failures = [d for d in deltas if d.gate_failure]
    lines.append(f"{len(deltas)} benchmark(s) compared, "
                 f"{len(failures)} gate failure(s)")
    return "\n".join(lines)


def environment_mismatch(current: dict[str, Any],
                         baseline: dict[str, Any]) -> str:
    """A caveat string when the two artifacts came from visibly
    different environments (cross-machine deltas are indicative only)."""
    cur = current.get("environment", {})
    base = baseline.get("environment", {})
    differing = [key for key in ("platform", "machine", "python",
                                 "cpu_count")
                 if cur.get(key) != base.get(key)]
    if not differing:
        return ""
    return ("baseline captured on a different environment "
            f"({', '.join(differing)} differ); deltas are indicative only")
