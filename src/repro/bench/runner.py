"""The self-benchmark runner: repetitions, statistics, artifacts.

:func:`run_benchmarks` executes the selected microbenchmarks, timing
each repetition with ``time.perf_counter`` around a fresh ``setup``
(build cost never pollutes the measurement), and summarises throughput
as median/MAD across repetitions — the robust pair the regression
comparator (:mod:`repro.bench.compare`) scales its thresholds by.

:func:`write_artifact` serialises the summary as a schema-versioned
``BENCH_<utcstamp>.json`` at the repository root (or any directory),
with the environment captured (Python, platform, CPU count, git SHA) so
trajectory points from different machines are distinguishable.  The
per-benchmark wall-clock sections accumulate into a
:class:`~repro.obs.runlog.SelfProfile` and the summary doubles as a
run-log record body (``kind="bench"``), so bench results live in the
same JSONL stream as ordinary runs.

With ``profile=True`` one extra (untimed) repetition per benchmark runs
under :mod:`cProfile`; its top-N cumulative entries are embedded in the
artifact next to the wall-clock stats, putting Python-level hot spots
and sections side by side.
"""

from __future__ import annotations

import cProfile
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.registry import (
    Benchmark,
    BenchContext,
    select_benchmarks,
)
from repro.exec import ExecConfig
from repro.obs.runlog import SelfProfile

SCHEMA_VERSION = 1
ARTIFACT_GLOB = "BENCH_*.json"


def median(values: list[float]) -> float:
    """Median of a non-empty list."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: list[float], centre: float | None = None) -> float:
    """Median absolute deviation (unscaled) around *centre*."""
    if centre is None:
        centre = median(values)
    return median([abs(v - centre) for v in values])


def _stat(values: list[float]) -> dict[str, float]:
    centre = median(values)
    return {"median": round(centre, 6), "mad": round(mad(values, centre), 6),
            "min": round(min(values), 6), "max": round(max(values), 6)}


@dataclass
class BenchConfig:
    """Knobs for one :func:`run_benchmarks` invocation."""

    quick: bool = False
    repetitions: int | None = None    # None -> 3 quick / 5 full
    profile: bool = False
    profile_top: int = 15
    only: tuple[str, ...] = ()        # fnmatch patterns over bench names
    timeout_s: float | None = None    # kill fence for e2e.* cells
    exec_config: ExecConfig | None = None

    @property
    def effective_repetitions(self) -> int:
        if self.repetitions is not None:
            if self.repetitions < 2:
                raise ValueError("BenchConfig.repetitions must be >= 2 "
                                 "(MAD needs at least two samples)")
            return self.repetitions
        return 3 if self.quick else 5

    def context(self) -> BenchContext:
        exec_config = self.exec_config
        if exec_config is None:
            exec_config = ExecConfig(timeout_s=self.timeout_s)
        return BenchContext(quick=self.quick, exec_config=exec_config)


@dataclass
class BenchOutcome:
    """One benchmark's measured repetitions (or its failure)."""

    bench: Benchmark
    wall_s: list[float] = field(default_factory=list)
    units: float | None = None
    sim_cycles: float | None = None
    instructions: int | None = None
    hotspots: list[dict[str, Any]] | None = None
    error: str | None = None

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "group": self.bench.group,
            "unit": self.bench.unit,
            "description": self.bench.description,
        }
        if self.error is not None:
            out["error"] = self.error
            return out
        throughput = [self.units / w for w in self.wall_s]
        out.update({
            "repetitions": len(self.wall_s),
            "units": self.units,
            "sim_cycles": self.sim_cycles,
            "instructions": self.instructions,
            "wall_s": _stat(self.wall_s),
            "throughput": _stat(throughput),
        })
        if self.sim_cycles is not None:
            out["sim_cycles_per_s"] = _stat(
                [self.sim_cycles / w for w in self.wall_s])
        if self.instructions is not None:
            out["instr_per_s"] = _stat(
                [self.instructions / w for w in self.wall_s])
        if self.hotspots is not None:
            out["hotspots"] = self.hotspots
        return out


def _hotspots(prof: cProfile.Profile, top: int) -> list[dict[str, Any]]:
    prof.create_stats()
    entries = []
    for (filename, lineno, func), (_cc, ncalls, tottime, cumtime,
                                   _callers) in prof.stats.items():
        entries.append({
            "site": f"{os.path.basename(filename)}:{lineno}:{func}",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    entries.sort(key=lambda e: (-e["cumtime_s"], e["site"]))
    return entries[:top]


def run_one(bench: Benchmark, config: BenchConfig) -> BenchOutcome:
    """Run every repetition of one benchmark; never raises on bench
    failure — the error is recorded so the remaining benchmarks run."""
    outcome = BenchOutcome(bench=bench)
    ctx = config.context()
    try:
        for _ in range(config.effective_repetitions):
            rep = bench.setup(ctx)
            start = time.perf_counter()
            work = rep()
            outcome.wall_s.append(time.perf_counter() - start)
            outcome.units = work.units
            outcome.sim_cycles = work.sim_cycles
            outcome.instructions = work.instructions
        if config.profile:
            rep = bench.setup(ctx)
            prof = cProfile.Profile()
            prof.enable()
            rep()
            prof.disable()
            outcome.hotspots = _hotspots(prof, config.profile_top)
    except Exception as exc:   # noqa: BLE001 — recorded, not propagated
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


def git_sha() -> str | None:
    """HEAD commit of the enclosing checkout, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def capture_environment() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
    }


def run_benchmarks(config: BenchConfig | None = None) -> dict[str, Any]:
    """Run the selected benchmarks and return the artifact-ready summary."""
    config = config or BenchConfig()
    benches = select_benchmarks(config.only)
    profile = SelfProfile()
    results: dict[str, Any] = {}
    for bench in benches:
        with profile.section(bench.name):
            results[bench.name] = run_one(bench, config).summary()
    return {
        "schema": SCHEMA_VERSION,
        "kind": "bench",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": config.quick,
        "repetitions": config.effective_repetitions,
        "environment": capture_environment(),
        "profile": profile.snapshot(),     # wall seconds per benchmark
        "benchmarks": results,
    }


def artifact_name() -> str:
    """Unique, lexicographically-ordered ``BENCH_*.json`` file name."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"BENCH_{stamp}-{int(time.time() * 1e6) % 1_000_000:06d}.json"


def write_artifact(summary: dict[str, Any],
                   root: str | Path = ".") -> Path:
    """Write *summary* as the next trajectory point under *root*."""
    import json

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / artifact_name()
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
