"""Microbenchmark registry: named, grouped self-benchmarks.

A :class:`Benchmark` measures one hot path of the *simulator itself*
(not of the simulated hardware): core stepping, SVR PRM rounds, cache /
TLB / DRAM models, the assembler, and representative end-to-end cells.
Each benchmark supplies a ``setup`` factory; the bench runner
(:mod:`repro.bench.runner`) calls it before every repetition so state is
always fresh, times only the returned closure, and derives throughput
(work units per wall-second, plus simulated-cycles-per-second and
committed-instructions-per-second where they exist) with median/MAD
statistics across repetitions.

Definitions live in :mod:`repro.bench.micro`; importing this module does
*not* pull them in — call :func:`all_benchmarks` (which does) or import
``repro.bench``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable

from repro.exec import ExecConfig


@dataclass(frozen=True)
class Work:
    """What one repetition accomplished (the runner adds wall time).

    ``units`` is the benchmark's own progress measure (committed
    instructions, accesses, assembled instructions, ...) and is the basis
    of the primary throughput metric every benchmark reports.
    ``sim_cycles`` / ``instructions`` feed the simulated-cycles-per-second
    and instructions-per-second metrics and may be ``None`` for
    benchmarks with no simulated clock (e.g. the assembler).
    """

    units: float
    sim_cycles: float | None = None
    instructions: int | None = None


@dataclass(frozen=True)
class BenchContext:
    """Per-invocation knobs handed to every benchmark ``setup``."""

    quick: bool = False
    # Cell benchmarks route each repetition through exec.run_cells with
    # this config, inheriting its kill fences and fault isolation.
    exec_config: ExecConfig = field(default_factory=ExecConfig)


@dataclass(frozen=True)
class Benchmark:
    """One registered microbenchmark."""

    name: str                 # dotted id, e.g. 'core.inorder.step'
    group: str                # 'core' | 'svr' | 'mem' | 'isa' | 'e2e'
    unit: str                 # what Work.units counts
    description: str
    setup: Callable[[BenchContext], Callable[[], Work]]


_REGISTRY: dict[str, Benchmark] = {}


def register(name: str, *, group: str, unit: str,
             description: str) -> Callable:
    """Decorator: register a ``setup`` factory as a benchmark."""

    def wrap(setup: Callable[[BenchContext], Callable[[], Work]]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate benchmark name: {name!r}")
        _REGISTRY[name] = Benchmark(name=name, group=group, unit=unit,
                                    description=description, setup=setup)
        return setup

    return wrap


def _ensure_loaded() -> None:
    from repro.bench import micro  # noqa: F401  — registers on import


def all_benchmarks() -> list[Benchmark]:
    """Every registered benchmark, sorted by name."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def benchmark_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> Benchmark:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; known: "
                         f"{', '.join(sorted(_REGISTRY))}") from None


def select_benchmarks(patterns: tuple[str, ...] = ()) -> list[Benchmark]:
    """Benchmarks whose name matches any fnmatch *pattern* (all if none)."""
    benches = all_benchmarks()
    if not patterns:
        return benches
    chosen = [b for b in benches
              if any(fnmatch.fnmatch(b.name, p) for p in patterns)]
    if not chosen:
        raise ValueError(
            f"no benchmark matches {patterns!r}; known: "
            f"{', '.join(b.name for b in benches)}")
    return chosen
