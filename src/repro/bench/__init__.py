"""Self-benchmarking: the simulator measuring its own performance.

Three pieces (design rationale in ``docs/observability.md``):

* :mod:`repro.bench.registry` + :mod:`repro.bench.micro` — a registry of
  microbenchmarks over the simulator's hot paths (core stepping, SVR PRM
  rounds, cache/TLB/DRAM models, the assembler, end-to-end cells routed
  through :func:`repro.exec.run_cells`);
* :mod:`repro.bench.runner`  — repetition loop, median/MAD statistics,
  environment capture, opt-in cProfile hot-spot attribution, and the
  schema-versioned ``BENCH_<utcstamp>.json`` trajectory artifacts;
* :mod:`repro.bench.compare` — the comparison engine that confronts a
  run with the latest prior artifact and gates on MAD-scaled
  regressions (``repro bench --compare --gate``).
"""

from __future__ import annotations

from repro.bench.compare import (
    Delta,
    compare,
    environment_mismatch,
    find_artifacts,
    gate,
    latest_artifact,
    load_artifact,
    render_comparison,
)
from repro.bench.registry import (
    BenchContext,
    Benchmark,
    Work,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    register,
    select_benchmarks,
)
from repro.bench.runner import (
    ARTIFACT_GLOB,
    BenchConfig,
    BenchOutcome,
    capture_environment,
    git_sha,
    mad,
    median,
    run_benchmarks,
    run_one,
    write_artifact,
)

__all__ = [
    "ARTIFACT_GLOB",
    "BenchConfig",
    "BenchContext",
    "BenchOutcome",
    "Benchmark",
    "Delta",
    "Work",
    "all_benchmarks",
    "benchmark_names",
    "capture_environment",
    "compare",
    "environment_mismatch",
    "find_artifacts",
    "gate",
    "get_benchmark",
    "git_sha",
    "latest_artifact",
    "load_artifact",
    "mad",
    "median",
    "register",
    "render_comparison",
    "run_benchmarks",
    "run_one",
    "select_benchmarks",
    "write_artifact",
]
