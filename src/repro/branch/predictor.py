"""Hybrid local/global branch predictor with a chooser (Table III).

A classic tournament design: a local predictor (per-PC history indexing a
pattern table), a global predictor (gshare), and a per-PC chooser of 2-bit
counters.  Mispredictions cost the configured 10-cycle penalty in the
timing cores.
"""

from __future__ import annotations


class _SaturatingCounter:
    __slots__ = ("value", "bits")

    def __init__(self, bits: int = 2, value: int = 1) -> None:
        self.bits = bits
        self.value = value

    @property
    def taken(self) -> bool:
        return self.value >= (1 << (self.bits - 1))

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min((1 << self.bits) - 1, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class HybridBranchPredictor:
    """Local + gshare + chooser."""

    def __init__(self, local_entries: int = 1024, local_history_bits: int = 8,
                 global_history_bits: int = 12,
                 misprediction_penalty: float = 10.0) -> None:
        self._local_entries = local_entries
        self._local_history: dict[int, int] = {}
        self._local_hist_mask = (1 << local_history_bits) - 1
        self._local_pht: dict[int, _SaturatingCounter] = {}
        self._global_history = 0
        self._global_mask = (1 << global_history_bits) - 1
        self._global_pht: dict[int, _SaturatingCounter] = {}
        self._chooser: dict[int, _SaturatingCounter] = {}
        self.penalty = misprediction_penalty
        self.predictions = 0
        self.mispredictions = 0

    def _counter(self, table: dict[int, _SaturatingCounter],
                 key: int) -> _SaturatingCounter:
        counter = table.get(key)
        if counter is None:
            counter = _SaturatingCounter()
            table[key] = counter
        return counter

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at *pc*, train on the actual outcome, and
        return True when the prediction was correct."""
        pc_index = pc % self._local_entries
        local_hist = self._local_history.get(pc_index, 0)
        local = self._counter(self._local_pht,
                              (pc_index << 16) | local_hist)
        global_key = (pc ^ self._global_history) & self._global_mask
        glob = self._counter(self._global_pht, global_key)
        chooser = self._counter(self._chooser, pc_index)

        use_global = chooser.taken
        prediction = glob.taken if use_global else local.taken

        # Train the chooser toward whichever component was right.
        if glob.taken != local.taken:
            chooser.update(glob.taken == taken)
        local.update(taken)
        glob.update(taken)
        self._local_history[pc_index] = \
            ((local_hist << 1) | taken) & self._local_hist_mask
        self._global_history = \
            ((self._global_history << 1) | taken) & self._global_mask

        self.predictions += 1
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
