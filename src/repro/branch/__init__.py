"""Branch prediction substrate (hybrid local/global, Table III)."""

from repro.branch.predictor import HybridBranchPredictor

__all__ = ["HybridBranchPredictor"]
