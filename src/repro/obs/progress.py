"""In-flight progress reporting for long simulations.

A multi-minute SVR cell is a black box between submission and verdict:
probes, spans and metrics all surface *after* the run.  This module adds
the live counterpart — a :class:`ProgressReporter` that the core run
loops tick on an instruction-count cadence, emitting small JSON-ready
:class:`ProgressFrame` snapshots (simulated cycle, committed
instructions, IPC-so-far, phase, SVR episode count) to a caller-supplied
sink.  Workers forward frames over their result pipe; the parent then
holds a live per-cell picture and can tell a *stalled* simulation (the
simulated cycle stopped advancing) from a merely *slow* one.

Cost discipline mirrors the probe bus: when no reporter is passed,
``core.run()`` executes its original loop untouched — the disabled hot
path pays nothing, not even a per-instruction branch beyond the single
``progress is None`` check at window entry.  When enabled, the loop
decrements a countdown and only on expiry calls :meth:`sample`, which is
additionally wall-clock rate-limited, so even an enabled run emits a few
frames per second regardless of simulator speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "DEFAULT_INTERVAL_INSTRUCTIONS",
    "DEFAULT_MIN_INTERVAL_S",
    "ProgressConfig",
    "ProgressFrame",
    "ProgressReporter",
    "advancing",
]

# How many committed instructions between countdown expiries.  Small
# enough that a tiny-scale run still produces several frames, large
# enough that the countdown dominates cost, not the sample calls.
DEFAULT_INTERVAL_INSTRUCTIONS = 1_000

# Wall-clock floor between emitted frames: a fast simulator hits the
# countdown thousands of times a second; the rate limit keeps the pipe
# traffic (and the parent's bookkeeping) bounded.
DEFAULT_MIN_INTERVAL_S = 0.2


@dataclass(frozen=True)
class ProgressConfig:
    """Picklable progress knobs, shipped to isolated workers with their
    spec (same pattern as :class:`repro.exec.telemetry.TelemetryConfig`).
    ``None`` at the executor/pool layer means progress reporting is off
    and the core run loops stay on their uninstrumented path."""

    interval: int = DEFAULT_INTERVAL_INSTRUCTIONS
    min_interval_s: float = DEFAULT_MIN_INTERVAL_S

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(
                f"ProgressConfig.interval must be >= 1, got {self.interval}")
        if self.min_interval_s < 0:
            raise ValueError(
                f"ProgressConfig.min_interval_s must be >= 0, "
                f"got {self.min_interval_s}")

    def reporter(self, emit: Callable[["ProgressFrame"], None], *,
                 workload: str | None = None,
                 technique: str | None = None) -> "ProgressReporter":
        return ProgressReporter(emit, interval=self.interval,
                                min_interval_s=self.min_interval_s,
                                workload=workload, technique=technique)


@dataclass
class ProgressFrame:
    """One point-in-time snapshot of a running simulation.

    ``cycle`` and ``instructions`` are *lifetime* values (monotonic
    across warmup/measure windows) so consumers can assert forward
    progress; ``ipc`` is the current window's IPC-so-far, which is what
    an operator actually wants to watch converge.
    """

    seq: int
    phase: str                      # build | warmup | measure | done
    workload: str | None
    technique: str | None
    cycle: float                    # absolute simulated cycle
    instructions: int               # lifetime committed instructions
    target_instructions: int | None  # warmup + measure, for ETA
    ipc: float                      # IPC of the current window so far
    pc: int | None
    episodes: int                   # SVR PRM rounds / VR episodes so far
    wall_s: float                   # wall seconds since the reporter began

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "phase": self.phase,
            "workload": self.workload,
            "technique": self.technique,
            "cycle": self.cycle,
            "instructions": self.instructions,
            "target_instructions": self.target_instructions,
            "ipc": self.ipc,
            "pc": self.pc,
            "episodes": self.episodes,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProgressFrame":
        return cls(
            seq=int(data.get("seq", 0)),
            phase=str(data.get("phase", "?")),
            workload=data.get("workload"),
            technique=data.get("technique"),
            cycle=float(data.get("cycle", 0.0)),
            instructions=int(data.get("instructions", 0)),
            target_instructions=data.get("target_instructions"),
            ipc=float(data.get("ipc", 0.0)),
            pc=data.get("pc"),
            episodes=int(data.get("episodes", 0)),
            wall_s=float(data.get("wall_s", 0.0)),
        )

    @property
    def fraction(self) -> float | None:
        """Completed fraction of the run, if a target is known."""
        if not self.target_instructions:
            return None
        return min(1.0, self.instructions / self.target_instructions)


def _episodes_of(core: Any) -> int:
    svr = getattr(core, "svr", None)
    if svr is not None:
        return svr.stats.prm_rounds
    vr = getattr(core, "vr", None)
    if vr is not None:
        return vr.stats.episodes
    return 0


class ProgressReporter:
    """Ticks from a core run loop, emits rate-limited progress frames.

    ``emit`` receives each :class:`ProgressFrame`; it must never raise
    into the simulation (wrap pipe sends accordingly).  The reporter is
    deliberately *not* shipped across processes — construct it inside
    the worker with a pipe-writing ``emit`` instead.
    """

    __slots__ = ("interval", "_emit", "_min_interval_s", "_clock",
                 "_start", "_last_wall", "_max_cycle", "seq", "phase",
                 "workload", "technique", "target_instructions",
                 "last_frame")

    def __init__(self, emit: Callable[[ProgressFrame], None], *,
                 interval: int = DEFAULT_INTERVAL_INSTRUCTIONS,
                 min_interval_s: float = DEFAULT_MIN_INTERVAL_S,
                 workload: str | None = None,
                 technique: str | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self._emit = emit
        self._min_interval_s = min_interval_s
        self._clock = clock
        self._start = clock()
        self._last_wall = -float("inf")
        self._max_cycle = 0.0
        self.seq = 0
        self.phase = "build"
        self.workload = workload
        self.technique = technique
        self.target_instructions: int | None = None
        self.last_frame: ProgressFrame | None = None

    def annotate(self, *, workload: str | None = None,
                 technique: str | None = None,
                 target_instructions: int | None = None) -> None:
        """Attach run identity once the harness has resolved it."""
        if workload is not None:
            self.workload = workload
        if technique is not None:
            self.technique = technique
        if target_instructions is not None:
            self.target_instructions = target_instructions

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def sample(self, core: Any, force: bool = False) -> ProgressFrame | None:
        """Build and emit a frame, unless rate-limited (``force`` skips
        the wall-clock limit — used at phase boundaries)."""
        now = self._clock()
        if not force and now - self._last_wall < self._min_interval_s:
            return None
        self._last_wall = now
        stats = core.stats
        # A stats-window reset (warmup -> measure) can pull end_cycle
        # back under the previous window's completion horizon; clamp so
        # the published lifetime cycle never runs backwards.
        self._max_cycle = max(self._max_cycle, stats.end_cycle)
        frame = ProgressFrame(
            seq=self.seq,
            phase=self.phase,
            workload=self.workload,
            technique=self.technique,
            cycle=self._max_cycle,
            instructions=core.lifetime_instructions,
            target_instructions=self.target_instructions,
            ipc=stats.ipc,
            pc=getattr(core, "pc", None),
            episodes=_episodes_of(core),
            wall_s=round(now - self._start, 6),
        )
        self.seq += 1
        self.last_frame = frame
        self._emit(frame)
        return frame

    def finish(self, core: Any) -> ProgressFrame | None:
        """Emit a final forced frame with phase ``done``."""
        self.phase = "done"
        return self.sample(core, force=True)


def advancing(previous: dict[str, Any] | None,
              current: dict[str, Any] | None) -> bool:
    """Is the simulated clock of *current* ahead of *previous*?

    The stall-detection primitive: a run whose frames keep arriving but
    whose simulated cycle is frozen is wedged (e.g. an infinite
    host-side loop), while one with an advancing cycle is merely slow.
    Missing frames count as not advancing.
    """
    if not previous or not current:
        return False
    return (float(current.get("cycle", 0.0)) > float(previous.get("cycle", 0.0))
            or int(current.get("instructions", 0))
            > int(previous.get("instructions", 0)))
