"""Hierarchical span tracing for the execution lifecycle.

A :class:`Span` is one named, timed interval with a parent — the unit the
cross-process telemetry pipeline (``docs/observability.md``) is built
from.  The executor opens spans around its own lifecycle
(``run_cells`` → ``cell`` → ``attempt`` → ``spawn`` / ``reap``), each
worker opens spans around the simulator phases (``build`` / ``warmup`` /
``measure`` / ``serialize``), and the sim-side probe bus is bridged into
cycle-clock phase spans (one per PRM episode) — so a whole ``--jobs N``
sweep reconstructs as one tree that survives the process boundary.

Two clocks coexist, named explicitly on every span:

* ``wall`` — ``time.monotonic()`` seconds.  On Linux the monotonic clock
  is shared by every process on the machine, which is what makes parent
  and worker spans directly comparable on one merged timeline.
* ``cycles`` — simulated cycles, used by spans bridged off the probe
  bus; their timebase is private to one simulation window.

Spans are buffered (bounded by ``max_spans``, counting drops) and
exported as plain JSON-ready dicts, which is how they ride the worker
result pipe and the resume journal.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.probes import ProbeBus, Subscription

SPAN_SCHEMA = 1

WALL = "wall"
CYCLES = "cycles"


class Span:
    """One named interval.  ``end is None`` while still open."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "clock",
                 "status", "attrs")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 start: float, clock: str = WALL,
                 attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.clock = clock
        self.status = "ok"
        self.attrs = attrs or {}

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name, "id": self.span_id, "start": self.start,
            "end": self.end, "clock": self.clock, "status": self.status,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class SpanTracer:
    """Collects a bounded buffer of spans for one process.

    ``begin``/``end`` maintain an explicit stack (new spans parent to the
    innermost open one); :meth:`add` records an already-closed interval —
    the shape the event-driven parent loop and the probe bridge need.
    The tracer is single-threaded by design, like the simulator.
    """

    def __init__(self, pid: int | None = None,
                 max_spans: int = 4096) -> None:
        self.pid = os.getpid() if pid is None else pid
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording ----------------------------------------------------------

    def _new(self, name: str, start: float, parent_id: int | None,
             clock: str, attrs: dict[str, Any]) -> Span:
        span = Span(name, self._next_id, parent_id, start, clock, attrs)
        self._next_id += 1
        return span

    def _keep(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = self._new(name, time.monotonic(), parent, WALL, attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span | None = None, status: str | None = None,
            **attrs: Any) -> Span:
        """Close *span* (default: the innermost open one) and everything
        opened inside it that was left dangling."""
        if not self._stack:
            raise RuntimeError("SpanTracer.end with no open span")
        target = span if span is not None else self._stack[-1]
        if target not in self._stack:
            raise RuntimeError(f"span {target.name!r} is not open")
        now = time.monotonic()
        while True:
            top = self._stack.pop()
            top.end = now
            if top is not target and top.status == "ok":
                top.status = "abandoned"
            self._keep(top)
            if top is target:
                break
        if status is not None:
            target.status = status
        if attrs:
            target.attrs.update(attrs)
        return target

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.begin(name, **attrs)
        try:
            yield span
        except BaseException:
            self.end(span, status="error")
            raise
        self.end(span)

    def add(self, name: str, start: float, end: float, *,
            parent: Span | int | None = None, clock: str = WALL,
            status: str = "ok", **attrs: Any) -> Span:
        """Record an interval measured externally.  ``parent=None``
        attaches to the innermost open span (if any)."""
        if parent is None:
            parent_id = self._stack[-1].span_id if self._stack else None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        span = self._new(name, start, parent_id, clock, attrs)
        span.end = end
        span.status = status
        self._keep(span)
        return span

    # -- export -------------------------------------------------------------

    def export(self) -> list[dict[str, Any]]:
        """Closed spans as JSON-ready dicts, in completion order."""
        return [span.to_dict() for span in self.spans]


def spans_to_trace_events(spans: list[dict[str, Any]], *, pid: int,
                          tid: int = 1) -> list[dict[str, Any]]:
    """Render exported wall-clock spans as Chrome complete slices.

    Wall seconds map to trace microseconds; cycle-clock spans are skipped
    (their timebase is private to one simulation window — the sim-side
    trace-event tail covers that view).  Nested spans land on one ``tid``
    and nest by time containment, which is how Perfetto stacks them.
    """
    events = []
    for span in spans:
        if span.get("clock") != WALL or span.get("end") is None:
            continue
        start = span["start"] * 1e6
        end = span["end"] * 1e6
        args = dict(span.get("attrs") or {})
        args["status"] = span.get("status", "ok")
        events.append({"name": span["name"], "cat": "span", "ph": "X",
                       "ts": start, "dur": max(end - start, 0.01),
                       "pid": pid, "tid": tid, "args": args})
    return events


def bridge_probe_spans(tracer: SpanTracer, bus: ProbeBus,
                       parent: Span | int | None = None,
                       ) -> list[Subscription]:
    """Record sim-side phase spans off the probe bus.

    Each PRM episode (``svr.prm_enter``/``svr.prm_exit``) becomes one
    cycle-clock span named ``prm`` with its termination cause; watchdog
    trips become zero-length ``watchdog`` markers.  Returns the
    subscriptions so the caller detaches them when its window closes.
    """
    open_enter: list[dict[str, Any] | None] = [None]
    parent_id = parent.span_id if isinstance(parent, Span) else parent

    def on_enter(_name: str, ev: dict[str, Any]) -> None:
        open_enter[0] = ev

    def on_exit(_name: str, ev: dict[str, Any]) -> None:
        enter = open_enter[0]
        if enter is None:
            return                       # opened before the bridge attached
        open_enter[0] = None
        tracer.add("prm", enter["time"], ev["time"], parent=parent_id,
                   clock=CYCLES, cause=ev.get("cause"),
                   pc=enter.get("pc"), length=enter.get("length"),
                   instructions=ev.get("instructions"))

    def on_watchdog(_name: str, ev: dict[str, Any]) -> None:
        cycle = ev.get("cycle") or 0.0
        tracer.add("watchdog", cycle, cycle, parent=parent_id,
                   clock=CYCLES, status="error", kind=ev.get("kind"),
                   pc=ev.get("pc"))

    return [bus.subscribe("svr.prm_enter", on_enter),
            bus.subscribe("svr.prm_exit", on_exit),
            bus.subscribe("core.watchdog", on_watchdog)]
