"""The probe bus: named probe points with near-zero-cost no-op dispatch.

Every instrumented component (cores, SVR unit, predictors, memory
hierarchy, DRAM, TLBs) owns :class:`Probe` objects looked up once at
construction time.  An emission site is written as::

    if self._p_commit.enabled:
        self._p_commit.emit(pc=pc, issue=issue, completion=completion)

so that with no subscriber attached the cost per event is a single
attribute read and a branch — the keyword dictionary is never built.  This
is what keeps a fully-instrumented simulator within noise of the
uninstrumented one (the acceptance bar for this layer).

Subscribers receive ``(probe_name, event_dict)`` and may attach to one
probe by exact name or to a family via an ``fnmatch`` glob (``"mem.*"``);
glob subscriptions also cover probes created *after* the subscription.

The probe catalogue (names and payload fields) is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable

Subscriber = Callable[[str, dict[str, Any]], None]


class Probe:
    """One named probe point.  Created and owned by a :class:`ProbeBus`."""

    __slots__ = ("name", "enabled", "_subs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.enabled = False
        self._subs: list[Subscriber] = []

    def emit(self, **event: Any) -> None:
        """Deliver one event to every subscriber (hot path is guarded by
        ``enabled`` at the call site, so this only runs when someone
        listens)."""
        for fn in self._subs:
            fn(self.name, event)

    def _attach(self, fn: Subscriber) -> None:
        if fn not in self._subs:
            self._subs.append(fn)
        self.enabled = True

    def _detach(self, fn: Subscriber) -> None:
        if fn in self._subs:
            self._subs.remove(fn)
        self.enabled = bool(self._subs)


class Subscription:
    """Handle returned by :meth:`ProbeBus.subscribe`; call :meth:`cancel`
    to detach."""

    __slots__ = ("_bus", "_pattern", "_fn", "active")

    def __init__(self, bus: "ProbeBus", pattern: str, fn: Subscriber) -> None:
        self._bus = bus
        self._pattern = pattern
        self._fn = fn
        self.active = True

    def cancel(self) -> None:
        if not self.active:
            return
        self.active = False
        self._bus._remove(self._pattern, self._fn)


def _is_glob(pattern: str) -> bool:
    return any(ch in pattern for ch in "*?[")


class ProbeBus:
    """Registry of named probes plus pattern subscriptions."""

    def __init__(self) -> None:
        self._probes: dict[str, Probe] = {}
        self._patterns: list[tuple[str, Subscriber]] = []

    def probe(self, name: str) -> Probe:
        """Get or create the probe *name* (components call this once)."""
        p = self._probes.get(name)
        if p is None:
            p = Probe(name)
            self._probes[name] = p
            for pattern, fn in self._patterns:
                if fnmatchcase(name, pattern):
                    p._attach(fn)
        return p

    def subscribe(self, pattern: str, fn: Subscriber) -> Subscription:
        """Attach *fn* to every probe matching *pattern* (exact name or
        fnmatch glob), including probes created later."""
        if _is_glob(pattern):
            self._patterns.append((pattern, fn))
            for name, p in self._probes.items():
                if fnmatchcase(name, pattern):
                    p._attach(fn)
        else:
            self.probe(pattern)._attach(fn)
        return Subscription(self, pattern, fn)

    def _remove(self, pattern: str, fn: Subscriber) -> None:
        if _is_glob(pattern):
            self._patterns = [(pat, f) for pat, f in self._patterns
                              if not (pat == pattern and f is fn)]
            for name, p in self._probes.items():
                if fnmatchcase(name, pattern):
                    p._detach(fn)
        else:
            p = self._probes.get(pattern)
            if p is not None:
                p._detach(fn)

    def names(self) -> list[str]:
        """All probe names registered so far, sorted."""
        return sorted(self._probes)

    def clear_subscribers(self) -> None:
        """Detach everything (used by tests and session teardown)."""
        self._patterns.clear()
        for p in self._probes.values():
            p._subs.clear()
            p.enabled = False


_DEFAULT_BUS = ProbeBus()


def default_bus() -> ProbeBus:
    """The process-wide bus components fall back to when no explicit bus is
    passed.  Per-run observation (:class:`repro.obs.RunObservation`) uses a
    private bus instead, so concurrent runs never cross-talk."""
    return _DEFAULT_BUS
