"""Chrome trace-event export: probe streams → Perfetto-viewable JSON.

Subscribes to the probe bus and renders simulated time onto the Chrome
trace-event timeline (open the output at https://ui.perfetto.dev or in
``chrome://tracing``).  One simulated cycle is rendered as one
microsecond of trace time.

Mapping
-------
* ``svr.prm_enter`` / ``svr.prm_exit``   → complete slices (``ph: "X"``)
  on the *svr* track: one slice per piggyback-runahead episode, named by
  its termination cause, with lane count / HSLR PC in ``args``;
* ``dram.access``                        → async begin/end pairs
  (``ph: "b"`` / ``"e"``) on the *dram* track, so overlapping line fills
  are visible as stacked arcs;
* ``mem.load`` at DRAM level             → complete slices on the
  *memory* track (demand misses, the thing SVR exists to overlap);
* ``svr.svi``                            → instant events (``ph: "i"``)
  marking where transient lanes are generated;
* ``core.commit`` (off by default)       → per-instruction slices on the
  *core* track, for microscopic single-loop views.

Unlike the ASCII renderer in :mod:`repro.harness.trace` (now a thin
consumer of the same bus), this works for every core model and every
component that emits probes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.probes import ProbeBus, Subscription

# Trace-time scale: one simulated cycle rendered as one microsecond.
TICKS_PER_CYCLE = 1.0

_PID = 1
_TRACKS = {
    "core": 1,
    "svr": 2,
    "memory": 3,
    "dram": 4,
    "tlb": 5,
}


class ChromeTraceBuilder:
    """Collects trace events from a probe bus; writes trace-event JSON."""

    def __init__(self, *, include_memory: bool = True,
                 include_commits: bool = False,
                 max_events: int = 500_000) -> None:
        self.include_memory = include_memory
        self.include_commits = include_commits
        self.max_events = max_events
        self.events: list[dict[str, Any]] = []
        self.dropped = 0
        self._subs: list[Subscription] = []
        self._dram_seq = 0
        self._prm_open: tuple[float, dict[str, Any]] | None = None
        self._max_ts = 0.0

    # -- collection ---------------------------------------------------------

    def _push(self, event: dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def _note_ts(self, ts: float) -> None:
        if ts > self._max_ts:
            self._max_ts = ts

    def attach(self, bus: ProbeBus) -> None:
        """Subscribe to the probes this exporter renders."""
        wiring: dict[str, Any] = {
            "svr.prm_enter": self._on_prm_enter,
            "svr.prm_exit": self._on_prm_exit,
            "dram.access": self._on_dram,
            "svr.svi": self._on_svi,
        }
        if self.include_memory:
            wiring["mem.load"] = self._on_load
        if self.include_commits:
            wiring["core.commit"] = self._on_commit
        self._subs = [bus.subscribe(name, fn)
                      for name, fn in wiring.items()]

    def detach(self) -> None:
        for sub in self._subs:
            sub.cancel()
        self._subs = []

    def _on_prm_enter(self, _name: str, ev: dict) -> None:
        ts = ev["time"] * TICKS_PER_CYCLE
        self._note_ts(ts)
        self._prm_open = (ts, {"pc": ev["pc"], "length": ev["length"],
                               "stride": ev.get("stride")})

    def _on_prm_exit(self, _name: str, ev: dict) -> None:
        ts = ev["time"] * TICKS_PER_CYCLE
        self._note_ts(ts)
        if self._prm_open is None:
            return  # episode opened before this exporter attached
        start, args = self._prm_open
        self._prm_open = None
        args = dict(args, cause=ev["cause"],
                    instructions=ev.get("instructions"))
        self._push({"name": f"PRM ({ev['cause']})", "cat": "svr",
                    "ph": "X", "ts": start,
                    "dur": max(ts - start, 0.01),
                    "pid": _PID, "tid": _TRACKS["svr"], "args": args})

    def _on_dram(self, _name: str, ev: dict) -> None:
        start = ev["start"] * TICKS_PER_CYCLE
        end = ev["completion"] * TICKS_PER_CYCLE
        self._note_ts(end)
        self._dram_seq += 1
        ident = str(self._dram_seq)
        common = {"name": "dram line", "cat": "dram", "id": ident,
                  "pid": _PID, "tid": _TRACKS["dram"]}
        self._push(dict(common, ph="b", ts=start))
        self._push(dict(common, ph="e", ts=max(end, start + 0.01)))

    def _on_load(self, _name: str, ev: dict) -> None:
        if ev["level"] != "dram":
            return
        ts = ev["time"] * TICKS_PER_CYCLE
        end = ev["completion"] * TICKS_PER_CYCLE
        self._note_ts(end)
        self._push({"name": "load (dram)", "cat": "mem", "ph": "X",
                    "ts": ts, "dur": max(end - ts, 0.01),
                    "pid": _PID, "tid": _TRACKS["memory"],
                    "args": {"addr": ev["addr"], "pc": ev.get("pc")}})

    def _on_svi(self, _name: str, ev: dict) -> None:
        ts = ev["time"] * TICKS_PER_CYCLE
        self._note_ts(ts)
        self._push({"name": f"svi x{ev['lanes']}", "cat": "svr",
                    "ph": "i", "s": "t", "ts": ts,
                    "pid": _PID, "tid": _TRACKS["svr"],
                    "args": {"lanes": ev["lanes"], "pc": ev.get("pc")}})

    def _on_commit(self, _name: str, ev: dict) -> None:
        ts = ev["issue"] * TICKS_PER_CYCLE
        end = ev["completion"] * TICKS_PER_CYCLE
        self._note_ts(end)
        self._push({"name": ev["op"], "cat": "core", "ph": "X",
                    "ts": ts, "dur": max(end - ts, 0.01),
                    "pid": _PID, "tid": _TRACKS["core"],
                    "args": {"pc": ev["pc"], "level": ev.get("level")}})

    # -- output -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        events = list(self.events)
        if self._prm_open is not None:
            # Episode still open at window end: close it at the last
            # timestamp seen so the slice is not lost.
            start, args = self._prm_open
            events.append({"name": "PRM (open)", "cat": "svr", "ph": "X",
                           "ts": start,
                           "dur": max(self._max_ts - start, 0.01),
                           "pid": _PID, "tid": _TRACKS["svr"],
                           "args": dict(args, cause="window-end")})
        meta: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": _PID,
             "args": {"name": "repro-sim"}},
        ]
        for track, tid in _TRACKS.items():
            meta.append({"name": "thread_name", "ph": "M", "pid": _PID,
                         "tid": tid, "args": {"name": track}})
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ns",
            "otherData": {
                "generator": "repro.obs.export",
                "ticks_per_cycle": TICKS_PER_CYCLE,
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")
        return path


def build_multiprocess_trace(
        processes: "list[dict[str, Any]]") -> dict[str, Any]:
    """Assemble one Perfetto trace with one process track per pid.

    Each entry of *processes* describes one OS process of a sweep::

        {"pid": 1234, "label": "worker Camel/svr16",
         "events": [...chrome events (ts already in trace µs)...]}

    Entries sharing a pid (inline execution, recycled worker pids) are
    folded into one process track.  Every pid gets ``process_name``
    metadata and every ``(pid, tid)`` seen in its events gets
    ``thread_name`` metadata (the event's ``cat`` as a fallback name),
    so the merged trace passes the multi-pid checks of
    :func:`validate_trace`.  Timestamps are shifted so the earliest
    event starts at 0 — raw monotonic-clock microseconds put the
    viewport hours into the timeline.
    """
    by_pid: dict[int, dict[str, Any]] = {}
    order: list[int] = []
    for proc in processes:
        pid = proc["pid"]
        entry = by_pid.get(pid)
        if entry is None:
            entry = {"label": proc.get("label") or f"pid {pid}",
                     "events": []}
            by_pid[pid] = entry
            order.append(pid)
        entry["events"].extend(proc.get("events") or [])

    origin = min((ev["ts"] for entry in by_pid.values()
                  for ev in entry["events"]
                  if isinstance(ev.get("ts"), (int, float))),
                 default=0.0)
    meta: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    for sort_index, pid in enumerate(order):
        entry = by_pid[pid]
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "args": {"name": entry["label"]}})
        meta.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                     "args": {"sort_index": sort_index}})
        tids: dict[int, str] = {}
        for ev in entry["events"]:
            ev = dict(ev, pid=pid)
            if isinstance(ev.get("ts"), (int, float)):
                ev["ts"] = ev["ts"] - origin
            tid = ev.get("tid")
            if tid is not None and tid not in tids:
                tids[tid] = str(ev.get("cat") or f"track {tid}")
            events.append(ev)
        for tid in sorted(tids):
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": tids[tid]}})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.export.multiprocess",
                      "processes": len(by_pid)},
    }


def write_trace(trace: dict[str, Any], path: str | Path) -> Path:
    """Serialise any trace dict (builder or merged) to *path*."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace), encoding="utf-8")
    return path


def validate_trace(trace: dict[str, Any]) -> list[str]:
    """Cheap structural validation against the trace-event format; returns
    a list of problems (empty = well-formed).  Used by tests and by users
    sanity-checking exported files.

    Beyond per-event shape, traces that carry metadata are checked for
    track-naming consistency — the multi-pid merge contract: every pid
    with events needs ``process_name`` metadata, and in a multi-pid trace
    every ``(pid, tid)`` track needs ``thread_name`` metadata, or
    Perfetto renders anonymous interleaved tracks.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    event_pids: set[Any] = set()
    event_tracks: set[tuple[Any, Any]] = set()
    named_pids: set[Any] = set()
    named_tracks: set[tuple[Any, Any]] = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "b", "e", "n", "i", "I", "M", "C"):
            problems.append(f"event {i}: bad ph {ph!r}")
            continue
        if "pid" not in ev:
            problems.append(f"event {i}: missing pid")
        if ph == "M":
            name = ev.get("name")
            if name == "process_name":
                named_pids.add(ev.get("pid"))
            elif name == "thread_name":
                named_tracks.add((ev.get("pid"), ev.get("tid")))
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i}: missing/bad ts")
        if "tid" not in ev:
            problems.append(f"event {i}: missing tid")
        else:
            event_tracks.add((ev.get("pid"), ev.get("tid")))
        if "pid" in ev:
            event_pids.add(ev["pid"])
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"event {i}: X without dur")
        if ph in ("b", "e", "n") and "id" not in ev:
            problems.append(f"event {i}: async event without id")
    if named_pids or named_tracks:
        for pid in sorted(event_pids - named_pids, key=str):
            problems.append(
                f"pid {pid} has events but no process_name metadata")
        if len(event_pids) > 1:
            for pid, tid in sorted(event_tracks - named_tracks, key=str):
                problems.append(
                    f"track pid={pid} tid={tid} has events but no "
                    "thread_name metadata (multi-pid trace)")
    return problems
