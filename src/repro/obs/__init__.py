"""Simulator-wide observability: probe bus, metrics, spans, logs, traces.

The five pieces (design rationale in ``docs/observability.md``):

* :mod:`repro.obs.probes`  — named probe points with near-zero-cost no-op
  dispatch when nothing subscribes;
* :mod:`repro.obs.metrics` — hierarchical counters / gauges / log2
  histograms that subscribe to probes and snapshot to plain dicts,
  with typed snapshots that merge deterministically across processes;
* :mod:`repro.obs.spans`   — hierarchical span tracing of the execution
  lifecycle, the telemetry that survives the worker process boundary;
* :mod:`repro.obs.runlog`  — JSONL run records plus a wall-clock
  self-profile of the simulator itself;
* :mod:`repro.obs.export`  — Chrome trace-event JSON for Perfetto,
  including the one-track-per-worker-pid multi-process merge.

:class:`RunObservation` bundles them for one simulator run and is what
``harness.runner.run(..., obs=...)`` and the CLI flags
(``--jsonl`` / ``--chrome-trace``, ``python -m repro stats``) drive.
"""

from __future__ import annotations

from typing import Any

from repro.obs.export import (
    ChromeTraceBuilder,
    build_multiprocess_trace,
    validate_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_standard_metrics,
    merge_typed_snapshots,
    typed_to_plain,
)
from repro.obs.probes import Probe, ProbeBus, Subscription, default_bus
from repro.obs.progress import (
    ProgressConfig,
    ProgressFrame,
    ProgressReporter,
    advancing,
)
from repro.obs.runlog import (
    RunLog,
    SelfProfile,
    make_record,
    session_log_path,
)
from repro.obs.spans import (
    Span,
    SpanTracer,
    bridge_probe_spans,
    spans_to_trace_events,
)

__all__ = [
    "ChromeTraceBuilder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Probe",
    "ProbeBus",
    "ProgressConfig",
    "ProgressFrame",
    "ProgressReporter",
    "RunLog",
    "RunObservation",
    "SelfProfile",
    "Span",
    "SpanTracer",
    "Subscription",
    "advancing",
    "bridge_probe_spans",
    "build_multiprocess_trace",
    "default_bus",
    "install_standard_metrics",
    "make_record",
    "merge_typed_snapshots",
    "session_log_path",
    "spans_to_trace_events",
    "typed_to_plain",
    "validate_trace",
    "write_trace",
]


class RunObservation:
    """Observability bundle for one simulator run.

    Create one, pass it to :func:`repro.harness.runner.run` via ``obs=``;
    the runner wires its private probe bus into every component, attaches
    the collectors when the *measured* window starts (warmup stays
    unobserved, matching the stats windows), and finalises outputs when
    the run ends.  After the run::

        obs.metrics_snapshot()   # deterministic metric dict
        obs.record               # the JSONL record that was (or would be)
                                 # appended
    """

    def __init__(self, *, metrics: bool = True,
                 chrome_trace: str | None = None,
                 jsonl: str | None = None,
                 include_commits: bool = False) -> None:
        self.bus = ProbeBus()
        self.registry = MetricsRegistry() if metrics else None
        self.chrome_trace_path = chrome_trace
        self.trace = (ChromeTraceBuilder(include_commits=include_commits)
                      if chrome_trace is not None else None)
        self.jsonl_path = jsonl
        self.profile = SelfProfile()
        self.record: dict[str, Any] | None = None
        self._subs: list[Subscription] = []
        self._attached = False

    def section(self, name: str):
        """Wall-clock profiling context for one simulator phase."""
        return self.profile.section(name)

    def begin_measure(self) -> None:
        """Attach collectors; called by the runner after warmup."""
        if self._attached:
            return
        self._attached = True
        if self.registry is not None:
            self._subs = install_standard_metrics(self.bus, self.registry)
        if self.trace is not None:
            self.trace.attach(self.bus)

    def end_measure(self) -> None:
        for sub in self._subs:
            sub.cancel()
        self._subs = []
        if self.trace is not None:
            self.trace.detach()
        self._attached = False

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot() if self.registry is not None else {}

    def finalize(self, context: dict[str, Any],
                 result: Any = None) -> dict[str, Any]:
        """Build the run record and write any requested outputs."""
        if self.trace is not None and self.chrome_trace_path is not None:
            self.trace.write(self.chrome_trace_path)
        record = make_record(
            "run",
            **context,
            result=(result.to_dict() if result is not None else None),
            metrics=self.metrics_snapshot(),
            profile=self.profile.snapshot(),
        )
        if self.jsonl_path is not None:
            RunLog(self.jsonl_path).append(record)
        self.record = record
        return record
