"""Metrics registry: hierarchical counters, gauges and log2 histograms.

Metric names are dotted paths (``mem.load.latency``, ``svr.prm.rounds``);
the registry is flat but the naming scheme is hierarchical so snapshots
group naturally.  Histograms bucket by powers of two, which suits the
quantities this simulator cares about (load latencies spanning 2..200
cycles, vector lengths 1..128) and keeps snapshots small and deterministic.

``install_standard_metrics`` subscribes a canonical metric set to the
probe catalogue — attach it to a :class:`~repro.obs.probes.ProbeBus` and
every run gets CPI-stack-adjacent counters, prefetch accounting and
latency/vector-length distributions for free.
"""

from __future__ import annotations

import re
from typing import Any

from repro.obs.probes import ProbeBus, Subscription


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (e.g. an occupancy sampled at snapshot time)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log2-bucketed histogram: bucket *k* holds values in [2^(k-1), 2^k),
    bucket 0 holds values below 1."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    @staticmethod
    def bucket_of(value: float) -> int:
        if value < 1:
            return 0
        return int(value).bit_length()

    @staticmethod
    def bucket_label(index: int) -> str:
        if index == 0:
            return "[0,1)"
        return f"[{1 << (index - 1)},{1 << index})"

    def observe(self, value: float) -> None:
        idx = self.bucket_of(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {self.bucket_label(i): self.buckets[i]
                        for i in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named metrics with get-or-create accessors and dict snapshots."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}, "
                            f"not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict export, sorted by name: counters and gauges become
        numbers, histograms become their bucket dicts."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def typed_snapshot(self) -> dict[str, dict[str, Any]]:
        """Kind-tagged export, the cross-process wire format.

        A plain :meth:`snapshot` cannot be merged — a bare number does
        not say whether it sums (counter) or overwrites (gauge).  Worker
        processes ship this form; :func:`merge_typed_snapshots` folds
        them back together.
        """
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {"kind": "histogram", **metric.snapshot()}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            else:
                out[name] = {"kind": "counter", "value": metric.value}
        return out


def _merge_histogram(into: dict[str, Any], snap: dict[str, Any]) -> None:
    into["count"] += snap["count"]
    into["sum"] += snap["sum"]
    for bound in ("min", "max"):
        pick = min if bound == "min" else max
        values = [v for v in (into[bound], snap[bound]) if v is not None]
        into[bound] = pick(values) if values else None
    buckets = into["buckets"]
    for label, count in snap["buckets"].items():
        buckets[label] = buckets.get(label, 0) + count
    into["mean"] = into["sum"] / into["count"] if into["count"] else 0.0


def merge_typed_snapshots(
        snapshots: "list[dict[str, dict[str, Any]]]",
        ) -> dict[str, dict[str, Any]]:
    """Aggregate worker metric snapshots (:meth:`typed_snapshot` form).

    Counters sum, gauges keep the last write (in the order given — pass
    snapshots in a deterministic order for reproducible gauges), and
    log2 histograms merge bucket-wise; the result for counters and
    histograms is therefore identical for any snapshot order.  A name
    changing kind between snapshots is a wiring bug and raises.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            have = merged.get(name)
            if have is None:
                copy = dict(entry)
                if kind == "histogram":
                    copy["buckets"] = dict(entry["buckets"])
                merged[name] = copy
                continue
            if have["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is {have['kind']} in one snapshot "
                    f"and {kind} in another")
            if kind == "counter":
                have["value"] += entry["value"]
            elif kind == "gauge":
                have["value"] = entry["value"]
            else:
                _merge_histogram(have, entry)
    return {name: merged[name] for name in sorted(merged)}


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted metric name to the Prometheus charset
    (``serve.request_ms`` -> ``repro_serve_request_ms``)."""
    sanitized = _PROM_BAD_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: float | None) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_exposition(registry: "MetricsRegistry", *,
                          prefix: str = "repro_",
                          extra_gauges: dict[str, float] | None = None,
                          ) -> str:
    """Render *registry* in the Prometheus text exposition format.

    Counters and gauges map directly; log2 histograms become native
    Prometheus histograms with cumulative ``le`` buckets at the power-of-
    two upper bounds (bucket ``[2^(k-1),2^k)`` contributes to
    ``le="2^k"``), plus the conventional ``+Inf`` / ``_sum`` / ``_count``
    series.  *extra_gauges* lets a caller splice in point-in-time values
    (queue depth, busy workers) that live outside the registry.  Output
    is sorted by metric name, so scrapes diff cleanly.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, body: list[str]) -> None:
        lines.append(f"# HELP {name} repro metric {name}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(body)

    metrics: dict[str, Any] = dict(registry._metrics)
    for raw in sorted(metrics):
        metric = metrics[raw]
        name = prometheus_name(raw, prefix)
        if isinstance(metric, Counter):
            emit(name, "counter", [f"{name} {_prom_value(metric.value)}"])
        elif isinstance(metric, Gauge):
            emit(name, "gauge", [f"{name} {_prom_value(metric.value)}"])
        else:
            body = []
            cumulative = 0
            for idx in sorted(metric.buckets):
                cumulative += metric.buckets[idx]
                upper = 1 << idx if idx > 0 else 1
                body.append(f'{name}_bucket{{le="{upper}"}} {cumulative}')
            body.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            body.append(f"{name}_sum {_prom_value(metric.total)}")
            body.append(f"{name}_count {metric.count}")
            emit(name, "histogram", body)
    for raw in sorted(extra_gauges or {}):
        name = prometheus_name(raw, prefix)
        emit(name, "gauge", [f"{name} {_prom_value(extra_gauges[raw])}"])
    return "\n".join(lines) + "\n"


def typed_to_plain(typed: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Collapse a typed (or merged) snapshot to the plain
    :meth:`MetricsRegistry.snapshot` shape used by reports and tests."""
    out: dict[str, Any] = {}
    for name, entry in typed.items():
        if entry.get("kind") == "histogram":
            out[name] = {k: v for k, v in entry.items() if k != "kind"}
        else:
            out[name] = entry["value"]
    return out


def install_standard_metrics(bus: ProbeBus,
                             registry: MetricsRegistry) -> list[Subscription]:
    """Subscribe the canonical metric set to *bus*; returns the
    subscriptions so a caller can detach them when its window closes."""
    counter = registry.counter
    histogram = registry.histogram

    instructions = counter("core.instructions")
    window_stalls = counter("core.window_stalls")
    window_stall_hist = histogram("core.window_stall.cycles")
    loads = counter("mem.loads")
    stores = counter("mem.stores")
    load_latency = histogram("mem.load.latency")
    dram_accesses = counter("dram.accesses")
    dram_wait = histogram("dram.queue_wait")
    tlb_walks = counter("tlb.walks")
    tlb_walk_latency = histogram("tlb.walk.latency")
    prm_rounds = counter("svr.prm.rounds")
    vector_length = histogram("svr.prm.vector_length")
    prm_duration = histogram("svr.prm.duration_cycles")
    svi_lanes = counter("svr.svi.lanes")
    svi_group = histogram("svr.svi.group_lanes")
    waiting_skips = counter("svr.waiting_skips")
    gate_blocks = counter("svr.gate_blocks")
    accuracy_bans = counter("svr.accuracy_bans")
    run_length = histogram("predictor.stride.run_length")
    lb_decisions = counter("predictor.loop_bound.decisions")
    lb_length = histogram("predictor.loop_bound.length")
    exec_cells = counter("exec.cells")
    exec_cell_elapsed = histogram("exec.cell.elapsed_s")
    exec_failures = counter("exec.failures")
    exec_retries = counter("exec.retries")
    exec_timeouts = counter("exec.timeouts")
    journal_skips = counter("exec.journal_skipped_records")
    watchdog_trips = counter("core.watchdog_trips")

    def on_commit(_name: str, _ev: dict) -> None:
        instructions.inc()

    def on_window_stall(_name: str, ev: dict) -> None:
        window_stalls.inc()
        window_stall_hist.observe(ev["cycles"])

    def on_load(_name: str, ev: dict) -> None:
        loads.inc()
        counter("mem.loads." + ev["level"]).inc()
        load_latency.observe(ev["latency"])

    def on_store(_name: str, _ev: dict) -> None:
        stores.inc()

    def on_prefetch(_name: str, ev: dict) -> None:
        origin = ev["origin"]
        counter(f"mem.prefetch.{origin}.issued").inc()
        if ev["dropped"]:
            counter(f"mem.prefetch.{origin}.dropped").inc()

    def on_pf_useful(_name: str, ev: dict) -> None:
        counter(f"mem.prefetch.{ev['origin']}.useful").inc()

    def on_pf_useless(_name: str, ev: dict) -> None:
        counter(f"mem.prefetch.{ev['origin']}.useless").inc()

    def on_dram(_name: str, ev: dict) -> None:
        dram_accesses.inc()
        dram_wait.observe(ev["start"] - ev["time"])

    def on_tlb_walk(_name: str, ev: dict) -> None:
        tlb_walks.inc()
        tlb_walk_latency.observe(ev["completion"] - ev["time"])

    def on_prm_enter(_name: str, ev: dict) -> None:
        prm_rounds.inc()
        vector_length.observe(ev["length"])

    def on_prm_exit(_name: str, ev: dict) -> None:
        counter(f"svr.prm.terminations.{ev['cause']}").inc()
        prm_duration.observe(ev["duration"])

    def on_svi(_name: str, ev: dict) -> None:
        svi_lanes.inc(ev["lanes"])
        svi_group.observe(ev["lanes"])

    def on_waiting(_name: str, _ev: dict) -> None:
        waiting_skips.inc()

    def on_gate(_name: str, _ev: dict) -> None:
        gate_blocks.inc()

    def on_ban(_name: str, _ev: dict) -> None:
        accuracy_bans.inc()

    def on_stride_run(_name: str, ev: dict) -> None:
        run_length.observe(ev["run_length"])

    def on_loop_bound(_name: str, ev: dict) -> None:
        lb_decisions.inc()
        lb_length.observe(ev["length"])
        counter(f"predictor.loop_bound.policy.{ev['policy']}").inc()

    def on_exec_cell(_name: str, ev: dict) -> None:
        exec_cells.inc()
        if ev.get("cached"):
            counter("exec.cells.cached").inc()
        else:
            exec_cell_elapsed.observe(ev.get("elapsed_s", 0.0))

    def on_exec_failure(_name: str, ev: dict) -> None:
        exec_failures.inc()
        counter(f"exec.failures.{ev['kind']}").inc()

    def on_exec_retry(_name: str, _ev: dict) -> None:
        exec_retries.inc()

    def on_exec_timeout(_name: str, _ev: dict) -> None:
        exec_timeouts.inc()

    def on_journal_skip(_name: str, _ev: dict) -> None:
        journal_skips.inc()

    def on_watchdog(_name: str, ev: dict) -> None:
        watchdog_trips.inc()
        counter(f"core.watchdog_trips.{ev['kind']}").inc()

    wiring = {
        "core.commit": on_commit,
        "core.window_stall": on_window_stall,
        "mem.load": on_load,
        "mem.store": on_store,
        "mem.prefetch": on_prefetch,
        "mem.pf_useful": on_pf_useful,
        "mem.pf_useless": on_pf_useless,
        "dram.access": on_dram,
        "tlb.walk": on_tlb_walk,
        "svr.prm_enter": on_prm_enter,
        "svr.prm_exit": on_prm_exit,
        "svr.svi": on_svi,
        "svr.waiting": on_waiting,
        "svr.gate_block": on_gate,
        "svr.accuracy_ban": on_ban,
        "predictor.stride_run": on_stride_run,
        "predictor.loop_bound": on_loop_bound,
        "exec.cell": on_exec_cell,
        "exec.failure": on_exec_failure,
        "exec.retry": on_exec_retry,
        "exec.timeout": on_exec_timeout,
        "exec.journal.skip": on_journal_skip,
        "core.watchdog": on_watchdog,
    }
    return [bus.subscribe(name, fn) for name, fn in wiring.items()]
