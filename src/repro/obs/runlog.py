"""Structured run logs: append-only JSONL records plus a wall-clock
self-profile.

One record per simulator invocation (a ``harness.runner.run`` call or a
figure regeneration): the configuration, the :class:`SimResult` export,
the metric snapshot of the measured window, and where the *wall-clock*
time went (build / warmup / measure, via ``time.perf_counter``).  Records
are one JSON object per line so a session log can be tailed, grepped and
loaded incrementally.  The schema is documented in
``docs/observability.md``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, IO

# v2: fractional-second timestamps plus per-process ``seq``/``pid`` so
# same-second records (common in tight sweeps) stay totally ordered.
SCHEMA_VERSION = 2


class SelfProfile:
    """Accumulates wall-clock seconds per named section."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def snapshot(self) -> dict[str, float]:
        return {name: round(self.seconds[name], 6)
                for name in sorted(self.seconds)}


# Per-process monotonic record counter: same-timestamp records (even at
# microsecond resolution two records can tie) sort by (pid, seq).
_SEQ = itertools.count()


def make_record(kind: str, **fields: Any) -> dict[str, Any]:
    """A schema-stamped record; *fields* are merged in verbatim.

    Timestamps are UTC (``...Z``) with fractional seconds: local-time
    ``%z`` rendered records non-comparable across machines, and
    whole-second resolution left same-second records unordered.  ``seq``
    is a per-process monotonic counter and ``pid`` the writing process,
    so merged multi-process logs have a total order ``(timestamp, pid,
    seq)``.
    """
    now = datetime.now(timezone.utc)
    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "timestamp": now.strftime("%Y-%m-%dT%H:%M:%S.%fZ"),
        "seq": next(_SEQ),
        "pid": os.getpid(),
    }
    record.update(fields)
    return record


class RunLog:
    """Append-only JSONL writer holding one open handle.

    The first :meth:`append` opens the file (creating parent directories)
    and every subsequent append reuses the handle with an explicit flush
    per record — reopening per record turned hot sweeps into an
    open/close storm.  Use as a context manager, or call :meth:`close`;
    a dropped ``RunLog`` closes its handle on garbage collection.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def append(self, record: dict[str, Any]) -> None:
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True, default=str))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:       # interpreter teardown; nothing to do
            pass

    def read(self) -> list[dict[str, Any]]:
        """Load every record back (convenience for tests and notebooks).

        A truncated *final* line — the signature of a writer killed
        mid-append — is skipped; a malformed line anywhere else is real
        corruption and still raises :class:`json.JSONDecodeError`.
        """
        if not self.path.exists():
            return []
        with self.path.open(encoding="utf-8") as fh:
            lines = [line.strip() for line in fh]
        while lines and not lines[-1]:
            lines.pop()
        out: list[dict[str, Any]] = []
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break       # torn tail from a crash mid-write
                raise
        return out


def session_log_path(root: str | Path = "results/runlogs") -> Path:
    """Default per-session log file: one JSONL per process under *root*."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return Path(root) / f"session-{stamp}-{os.getpid()}.jsonl"
