"""Structured run logs: append-only JSONL records plus a wall-clock
self-profile.

One record per simulator invocation (a ``harness.runner.run`` call or a
figure regeneration): the configuration, the :class:`SimResult` export,
the metric snapshot of the measured window, and where the *wall-clock*
time went (build / warmup / measure, via ``time.perf_counter``).  Records
are one JSON object per line so a session log can be tailed, grepped and
loaded incrementally.  The schema is documented in
``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

SCHEMA_VERSION = 1


class SelfProfile:
    """Accumulates wall-clock seconds per named section."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def snapshot(self) -> dict[str, float]:
        return {name: round(self.seconds[name], 6)
                for name in sorted(self.seconds)}


def make_record(kind: str, **fields: Any) -> dict[str, Any]:
    """A schema-stamped record; *fields* are merged in verbatim.

    Timestamps are UTC (``...Z``): local-time ``%z`` rendered records
    non-comparable across machines and as an empty offset on platforms
    whose ``strftime`` lacks zone data.
    """
    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    record.update(fields)
    return record


class RunLog:
    """Append-only JSONL writer; parent directories are created lazily."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")

    def read(self) -> list[dict[str, Any]]:
        """Load every record back (convenience for tests and notebooks)."""
        if not self.path.exists():
            return []
        out = []
        with self.path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out


def session_log_path(root: str | Path = "results/runlogs") -> Path:
    """Default per-session log file: one JSONL per process under *root*."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return Path(root) / f"session-{stamp}-{os.getpid()}.jsonl"
