"""Scalar Vector Runahead — the paper's contribution (Section IV).

The :class:`~repro.svr.unit.ScalarVectorUnit` attaches to the in-order core
and implements piggyback runahead mode: stride detection, taint tracking,
speculative-register-file management, SVI generation with lockstep issue,
control-flow masking, loop-bound prediction (EWMA / LBD / CV-scavenging /
tournament), waiting mode, multi-chain handling and the accuracy monitor.
"""

from repro.svr.chain import (
    ChainRecorder,
    LoadClass,
    classify_detector_entries,
)
from repro.svr.config import LoopBoundPolicy, RecyclingPolicy, SVRConfig
from repro.svr.stride_detector import StrideDetector, StrideEntry
from repro.svr.taint_tracker import TaintTracker
from repro.svr.srf import SpeculativeRegisterFile
from repro.svr.loop_bound import LoopBoundUnit
from repro.svr.accuracy import AccuracyMonitor
from repro.svr.unit import ScalarVectorUnit
from repro.svr.overhead import feature_matrix, overhead_bits, overhead_kib

__all__ = [
    "AccuracyMonitor",
    "ChainRecorder",
    "LoadClass",
    "classify_detector_entries",
    "LoopBoundPolicy",
    "LoopBoundUnit",
    "RecyclingPolicy",
    "SVRConfig",
    "ScalarVectorUnit",
    "SpeculativeRegisterFile",
    "StrideDetector",
    "StrideEntry",
    "TaintTracker",
    "feature_matrix",
    "overhead_bits",
    "overhead_kib",
]
