"""SVR accuracy monitor (Section IV-A7).

L1 prefetch tags track, for every line SVR brings in, whether the core used
it before eviction.  After a warmup of 100 uses-or-evictions, if accuracy
drops below 50% all loads are blocked from triggering SVR; the ban lifts at
the next periodic reset so SVR can try again in a new program phase.

The monitor subscribes to the memory hierarchy's prefetch-tag events
(``origin == 'svr'`` only).
"""

from __future__ import annotations


class AccuracyMonitor:
    """Sliding-phase accuracy gate for SVR triggering."""

    def __init__(self, threshold: float = 0.5, warmup_events: int = 100,
                 reset_interval: int = 50_000, enabled: bool = True) -> None:
        self.threshold = threshold
        self.warmup_events = warmup_events
        self.reset_interval = reset_interval
        self.monitor_enabled = enabled
        self.useful = 0
        self.useless = 0
        self.banned = False
        self.bans = 0
        self._instructions_since_reset = 0
        # Optional obs probe ("svr.accuracy_ban"), wired by the owner.
        self.probe = None

    # -- hierarchy listener interface ----------------------------------------

    def on_useful(self, origin: str) -> None:
        if origin == "svr":
            self.useful += 1
            self._evaluate()

    def on_useless(self, origin: str) -> None:
        if origin == "svr":
            self.useless += 1
            self._evaluate()

    # -- gate ------------------------------------------------------------------

    def _evaluate(self) -> None:
        if not self.monitor_enabled or self.banned:
            return
        events = self.useful + self.useless
        if events < self.warmup_events:
            return
        if self.useful / events < self.threshold:
            self.banned = True
            self.bans += 1
            if self.probe is not None and self.probe.enabled:
                self.probe.emit(accuracy=self.useful / events, events=events)

    def allow_trigger(self) -> bool:
        return not self.banned

    def tick(self, instructions: int = 1) -> None:
        """Advance the periodic-reset clock (one call per committed instr)."""
        self._instructions_since_reset += instructions
        if self._instructions_since_reset >= self.reset_interval:
            self._instructions_since_reset = 0
            self.banned = False
            self.useful = 0
            self.useless = 0

    @property
    def accuracy(self) -> float:
        events = self.useful + self.useless
        return self.useful / events if events else 1.0
