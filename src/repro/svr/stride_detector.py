"""Stride detector — the reference prediction table of Fig 6.

Each entry tracks, per load PC: previous address, stride, a 2-bit saturating
confidence counter, the Last Prefetch address that implements waiting mode,
the Seen bit used for multi-chain handling, the Last Indirect Load fields,
and the iteration/EWMA counters feeding loop-bound prediction (the paper
splits these between the stride detector and the LBD; we keep the
per-stride-PC counters here and the per-loop compare state in
:mod:`repro.svr.loop_bound`, which is the same state, organised by owner).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class StrideObservation:
    """What one load told the detector."""

    entry: "StrideEntry"
    is_striding: bool          # confidence reached the threshold
    continued: bool            # addr == prev + stride (iteration continues)
    in_waiting_range: bool     # covered by a previous round's prefetches
    ended_run: bool            # a contiguous run just ended (EWMA updated)
    run_length: int = 0        # length of the run that just ended


@dataclass(slots=True)
class StrideEntry:
    pc: int
    prev_addr: int
    stride: int = 0
    confidence: int = 0
    last_prefetch: int | None = None   # end of the prefetched range
    range_start: int | None = None     # start of the prefetched range
    seen: bool = False
    lil_offset: int = 0                # dynamic instrs to last indirect load
    lil_confidence: int = 0            # 2-bit
    iteration: int = 0                 # contiguous strides so far
    ewma: float = 0.0
    ewma_trained: bool = False         # at least one run has ended
    tournament: int = 1                # 2-bit chooser (MSB: use LBD)
    last_ewma_pred: int | None = None
    last_lbd_pred: int | None = None
    # Cached vectorization-legality verdict for this seed pc, resolved
    # lazily by the SVR unit from the program's VectorizationPlan on the
    # first PRM round it anchors (repro.analysis.vectorplan).  Hardware
    # analogue: the reference prediction table carries the per-seed
    # batching verdict the compiler/plan pinned, so round dispatch is one
    # table read instead of a plan walk.  Evicted entries re-resolve.
    plan_resolved: bool = False
    batchable: bool = False            # verdict allows the SoA fast path
    scalar_fallback_pcs: frozenset = frozenset()  # guard-fired pcs


class StrideDetector:
    """PC-indexed table with LRU replacement on capacity."""

    def __init__(self, entries: int = 32, confidence_threshold: int = 2,
                 ewma_cap: int = 512) -> None:
        self._entries = entries
        self._threshold = confidence_threshold
        self._ewma_cap = ewma_cap
        self._table: dict[int, StrideEntry] = {}
        self.accesses = 0
        # Optional obs probe ("predictor.stride_run"), wired by the owner.
        self.probe = None

    def __len__(self) -> int:
        return len(self._table)

    def get(self, pc: int) -> StrideEntry | None:
        return self._table.get(pc)

    def entries(self):
        return self._table.values()

    def observe(self, pc: int, addr: int) -> StrideObservation:
        """Update the entry for a committed load and classify the access."""
        self.accesses += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self._entries:
                del self._table[next(iter(self._table))]
            entry = StrideEntry(pc=pc, prev_addr=addr)
            self._table[pc] = entry
            return StrideObservation(entry, False, False, False, False)
        # LRU touch.
        del self._table[pc]
        self._table[pc] = entry

        stride = addr - entry.prev_addr
        continued = stride == entry.stride and stride != 0
        ended_run = False
        run_length = 0
        if continued:
            entry.confidence = min(3, entry.confidence + 1)
            entry.iteration += 1
            if entry.iteration >= self._ewma_cap:
                run_length = entry.iteration
                self._update_ewma(entry)
                ended_run = True
        else:
            if entry.iteration > 0:
                run_length = entry.iteration
                self._update_ewma(entry)
                ended_run = True
            # Hysteresis: a confirmed stride survives discontinuities (the
            # jump between inner-loop instances) with reduced confidence; a
            # new stride is only adopted once confidence has drained.  This
            # keeps loop-boundary jumps from triggering runahead with a
            # garbage stride.
            if entry.confidence > 0:
                entry.confidence -= 1
            elif stride != 0:
                entry.stride = stride

        if ended_run and self.probe is not None and self.probe.enabled:
            self.probe.emit(pc=pc, run_length=run_length)
        in_waiting = (
            entry.last_prefetch is not None
            and entry.range_start is not None
            and self._within(entry, addr)
        )
        entry.prev_addr = addr
        is_striding = entry.confidence >= self._threshold and entry.stride != 0
        return StrideObservation(entry, is_striding, continued, in_waiting,
                                 ended_run, run_length)

    @staticmethod
    def _within(entry: StrideEntry, addr: int) -> bool:
        low, high = entry.range_start, entry.last_prefetch
        if low is None or high is None:
            return False
        if low <= high:
            return low <= addr <= high
        return high <= addr <= low   # negative strides

    def _update_ewma(self, entry: StrideEntry) -> None:
        """EWMA_new = 7*EWMA_old/8 + Iteration/8 (Section IV-B2)."""
        if entry.ewma_trained:
            entry.ewma = 7.0 * entry.ewma / 8.0 + entry.iteration / 8.0
        else:
            # Cold start: seed with the first observed run length rather
            # than averaging against an uninitialised zero.
            entry.ewma = float(entry.iteration)
            entry.ewma_trained = True
        entry.iteration = 0

    def record_prefetch_range(self, entry: StrideEntry, start: int,
                              end: int) -> None:
        """Set waiting-mode bounds after a round of runahead."""
        entry.range_start = start
        entry.last_prefetch = end

    def clear_seen_except(self, keep_pc: int | None) -> None:
        for entry in self._table.values():
            if entry.pc != keep_pc:
                entry.seen = False

    def record_lil(self, entry: StrideEntry, offset: int) -> None:
        """Train the Last Indirect Load fields at PRM termination."""
        if entry.lil_offset == offset:
            entry.lil_confidence = min(3, entry.lil_confidence + 1)
        else:
            entry.lil_confidence = max(0, entry.lil_confidence - 1)
            if entry.lil_confidence == 0:
                entry.lil_offset = offset
