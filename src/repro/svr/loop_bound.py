"""Loop-bound prediction (Section IV-B2, Figs 10 and 15).

Three cooperating mechanisms decide how many scalar lanes each round of
piggyback runahead should generate:

* **EWMA** — a per-stride-PC exponentially weighted moving average of
  contiguous-run lengths (the counters live in the stride detector entry);
* **LBD** — the loop-bound detector: the Last Compare (LC) register
  snapshots every compare's PC, source values and register ids; a
  backward *taken* conditional branch reading the LC's destination trains
  a per-loop entry that learns which compare operand is the induction
  variable (changes each iteration) and which is the bound (constant),
  plus the per-iteration increment;
* **CV scavenging** — on loop (re-)entry the stored compare values are
  stale, so SVR reads the *current* register values of the compare's
  source registers and derives the remaining trip count from them;
* a **tournament** of 2-bit counters (stored on the stride entry) picks
  between EWMA and LBD+CV, trained whenever a contiguous run ends and the
  true length becomes known.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import to_signed64
from repro.svr.config import LoopBoundPolicy
from repro.svr.stride_detector import StrideEntry


@dataclass(slots=True)
class LastCompare:
    """The LC register (Fig 10 context): state of the most recent compare."""

    pc: int = -1
    val_a: int = 0
    val_b: int = 0
    reg_a: int = -1
    reg_b: int = -1
    dest: int = -1
    valid: bool = False

    def reset(self) -> None:
        self.valid = False
        self.pc = -1
        self.dest = -1


@dataclass(slots=True)
class LbdEntry:
    """Per-HSLR-PC loop-bound detector entry."""

    comp_pc: int = -1
    s_a: int = 0
    s_b: int = 0
    reg_a: int = -1
    reg_b: int = -1
    confidence: int = 0
    increment: int = 0
    changing: str = ""     # 'a' or 'b' — which operand is the induction var
    fresh: bool = False    # trained since the current loop entry


class LoopBoundUnit:
    """LC + LBD table + prediction policies."""

    def __init__(self, entries: int = 8) -> None:
        self.lc = LastCompare()
        self._entries = entries
        self._table: dict[int, LbdEntry] = {}
        self.trainings = 0
        self.cv_predictions = 0
        # Optional obs probe ("predictor.loop_bound"), wired by the owner.
        self.probe = None

    # -- LC maintenance -----------------------------------------------------

    def observe_compare(self, pc: int, val_a: int, val_b: int, reg_a: int,
                        reg_b: int, dest: int) -> None:
        lc = self.lc
        lc.pc = pc
        lc.val_a = val_a
        lc.val_b = val_b
        lc.reg_a = reg_a
        lc.reg_b = reg_b
        lc.dest = dest
        lc.valid = True

    def observe_write(self, pc: int, dest: int | None, is_compare: bool) -> None:
        """Reset the LC when its flag destination is written by another op."""
        if (dest is not None and not is_compare and self.lc.valid
                and dest == self.lc.dest):
            self.lc.reset()

    # -- LBD table ---------------------------------------------------------------

    def entry_for(self, hslr_pc: int) -> LbdEntry:
        entry = self._table.get(hslr_pc)
        if entry is None:
            if len(self._table) >= self._entries:
                del self._table[next(iter(self._table))]
            entry = LbdEntry()
            self._table[hslr_pc] = entry
        return entry

    def peek(self, hslr_pc: int) -> LbdEntry | None:
        return self._table.get(hslr_pc)

    def on_loop_reentry(self, hslr_pc: int) -> None:
        """A stride discontinuity means we (re-)entered the loop: stored
        compare values are stale until the branch executes again."""
        entry = self._table.get(hslr_pc)
        if entry is not None:
            entry.fresh = False

    def train_on_branch(self, branch_pc: int, target_pc: int, taken: bool,
                        source_reg: int, hslr_pc: int | None) -> None:
        """Train the LBD on a backward conditional-taken branch fed by LC."""
        lc = self.lc
        if (not taken or target_pc >= branch_pc or not lc.valid
                or source_reg != lc.dest or hslr_pc is None
                or target_pc > hslr_pc):
            return
        entry = self.entry_for(hslr_pc)
        if entry.comp_pc != lc.pc:
            entry.confidence -= 1
            if entry.confidence <= 0:
                # Replace with the LC's state.
                entry.comp_pc = lc.pc
                entry.s_a = lc.val_a
                entry.s_b = lc.val_b
                entry.reg_a = lc.reg_a
                entry.reg_b = lc.reg_b
                entry.confidence = 1
                entry.increment = 0
                entry.changing = ""
                entry.fresh = False
            return
        entry.confidence = min(3, entry.confidence + 1)
        a_changed = lc.val_a != entry.s_a
        b_changed = lc.val_b != entry.s_b
        if a_changed != b_changed:
            # Exactly one operand moved: that's the induction variable.
            if a_changed:
                entry.increment = to_signed64(lc.val_a) - to_signed64(entry.s_a)
                entry.changing = "a"
            else:
                entry.increment = to_signed64(lc.val_b) - to_signed64(entry.s_b)
                entry.changing = "b"
            entry.fresh = True
            self.trainings += 1
        entry.s_a = lc.val_a
        entry.s_b = lc.val_b

    # -- predictions -----------------------------------------------------------

    @staticmethod
    def _remaining(induction: int, bound: int, increment: int) -> int | None:
        if increment == 0:
            return None
        remaining = (to_signed64(bound) - to_signed64(induction)) // increment
        return remaining if remaining >= 0 else None

    def predict_lbd(self, hslr_pc: int, require_fresh: bool) -> int | None:
        """Remaining iterations from the stored (possibly stale) LC values."""
        entry = self._table.get(hslr_pc)
        if entry is None or entry.confidence < 2 or not entry.changing:
            return None
        if require_fresh and not entry.fresh:
            return None
        if entry.changing == "a":
            return self._remaining(entry.s_a, entry.s_b, entry.increment)
        return self._remaining(entry.s_b, entry.s_a, entry.increment)

    def predict_cv(self, hslr_pc: int, read_reg) -> int | None:
        """Current-value scavenging: read the compare's source registers now."""
        entry = self._table.get(hslr_pc)
        if (entry is None or entry.confidence < 2 or not entry.changing
                or entry.reg_a < 0 or entry.reg_b < 0):
            return None
        cv_a = read_reg(entry.reg_a)
        cv_b = read_reg(entry.reg_b)
        self.cv_predictions += 1
        if entry.changing == "a":
            return self._remaining(cv_a, cv_b, entry.increment)
        return self._remaining(cv_b, cv_a, entry.increment)

    # -- policy front-end ----------------------------------------------------------

    def decide_length(self, policy: LoopBoundPolicy, stride: StrideEntry,
                      read_reg, n_max: int) -> int:
        """How many lanes to generate this round (0 means skip the round)."""
        length = self._decide_length(policy, stride, read_reg, n_max)
        if self.probe is not None and self.probe.enabled:
            self.probe.emit(pc=stride.pc, policy=policy.name, length=length,
                            ewma=stride.last_ewma_pred,
                            lbd=stride.last_lbd_pred)
        return length

    def _decide_length(self, policy: LoopBoundPolicy, stride: StrideEntry,
                       read_reg, n_max: int) -> int:
        ewma_pred = self._ewma_length(stride, n_max)
        if policy is LoopBoundPolicy.MAXLENGTH:
            return n_max
        if policy is LoopBoundPolicy.EWMA:
            stride.last_ewma_pred = ewma_pred
            return ewma_pred
        lbd_cv = self._lbd_cv_length(stride.pc, read_reg, n_max)
        if policy is LoopBoundPolicy.LBD_WAIT:
            fresh = self.predict_lbd(stride.pc, require_fresh=True)
            return min(fresh, n_max) if fresh is not None else 0
        if policy is LoopBoundPolicy.LBD_MAXLENGTH:
            fresh = self.predict_lbd(stride.pc, require_fresh=True)
            return min(fresh, n_max) if fresh is not None else n_max
        if policy is LoopBoundPolicy.LBD_CV:
            return lbd_cv if lbd_cv is not None else n_max
        # Tournament: 2-bit chooser, MSB set -> trust LBD+CV.
        stride.last_ewma_pred = ewma_pred
        stride.last_lbd_pred = lbd_cv
        if stride.tournament >= 2 and lbd_cv is not None:
            return lbd_cv
        return ewma_pred

    def _ewma_length(self, stride: StrideEntry, n_max: int) -> int:
        """min(EWMA - Iteration, N) if positive, else min(EWMA, N).

        Before the first run ends the EWMA is untrained; be optimistic
        (max length) rather than refusing to runahead at cold start.
        """
        if not stride.ewma_trained:
            return n_max
        ewma = int(round(stride.ewma))
        remaining = ewma - stride.iteration
        if remaining > 0:
            return min(remaining, n_max)
        return min(max(ewma, 0), n_max)

    def _lbd_cv_length(self, hslr_pc: int, read_reg, n_max: int) -> int | None:
        pred = self.predict_lbd(hslr_pc, require_fresh=True)
        if pred is None:
            pred = self.predict_cv(hslr_pc, read_reg)
        return min(pred, n_max) if pred is not None else None

    def train_tournament(self, stride: StrideEntry, actual: int) -> None:
        """A contiguous run just ended with *actual* iterations: reward the
        closer predictor (Section IV-B2, Tournament Predictor)."""
        ewma_pred = stride.last_ewma_pred
        lbd_pred = stride.last_lbd_pred
        if ewma_pred is None or lbd_pred is None:
            return
        ewma_err = abs(ewma_pred - actual)
        lbd_err = abs(lbd_pred - actual)
        if lbd_err < ewma_err:
            stride.tournament = min(3, stride.tournament + 1)
        elif ewma_err < lbd_err:
            stride.tournament = max(0, stride.tournament - 1)
        stride.last_ewma_pred = None
        stride.last_lbd_pred = None
