"""Shared chain-classification vocabulary and dynamic cross-validation hooks.

The static analyzer (:mod:`repro.analysis`) and the dynamic SVR machinery
describe the same objects — striding loads and the dependent instruction
chains hanging off them (paper Fig 8) — from two sides.  This module holds
the vocabulary both sides share:

* :class:`LoadClass` — how a load's address behaves across loop iterations;
* :class:`ChainRecorder` — a cheap per-run log of what the *dynamic* side
  actually did (which PCs seeded runahead rounds with which strides, and
  which PCs issued dependent SVIs), attached to every
  :class:`~repro.svr.unit.ScalarVectorUnit` so tests can assert that dynamic
  behaviour is a subset of the static prediction;
* :func:`classify_detector_entries` — the dynamic analogue of the static
  per-load classification, read off the stride-detector table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LoadClass(enum.Enum):
    """Address behaviour of one static load across iterations of its loop."""

    STRIDING = "striding"        # affine in a loop induction variable
    INDIRECT = "indirect"        # address depends on another load's result
    INVARIANT = "invariant"      # address is loop-invariant
    IRREGULAR = "irregular"      # address varies but fits no affine form
    NONLOOP = "nonloop"          # the load is not inside any natural loop


@dataclass
class ChainRecorder:
    """Cumulative record of dynamic SVR chain activity for one unit.

    ``seeds`` maps a load PC that generated stride SVIs (a runahead seed) to
    the set of strides it was vectorized with; ``dependents`` is every PC
    that read a tainted register while in PRM — i.e. the dynamic dependent
    chain, before vectorizability filtering.  Both accumulate for the
    lifetime of the unit (they survive ``reset_stats``), because they exist
    for cross-validation, not for measurement windows.
    """

    seeds: dict[int, set[int]] = field(default_factory=dict)
    dependents: set[int] = field(default_factory=set)

    def record_seed(self, pc: int, stride: int) -> None:
        self.seeds.setdefault(pc, set()).add(stride)

    def record_dependent(self, pc: int) -> None:
        self.dependents.add(pc)

    @property
    def seed_pcs(self) -> frozenset[int]:
        return frozenset(self.seeds)


def classify_detector_entries(detector, *,
                              min_confidence: int = 2) -> dict[int, int]:
    """Strides of confident entries in a live stride-detector table.

    Returns ``{pc: stride}`` for every table entry at or above
    *min_confidence* — the dynamic ground truth the static
    :class:`LoadClass.STRIDING` classification is checked against.
    """
    return {entry.pc: entry.stride for entry in detector.entries()
            if entry.confidence >= min_confidence and entry.stride != 0}
