"""Taint tracker — identifies the indirect chain (Fig 8).

One entry per architectural register: a *tainted* bit (the register holds a
transient value derived from a striding load), a *mapped* bit plus SRF id
(the transient vector lives in the speculative register file), and an
*offset* recording the dynamic-instruction distance of the last read, which
implements the LRU recycling of Section IV-A3.

A register can be tainted but unmapped: its SRF entry was recycled, so
instructions reading it can no longer be scalar-vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import NUM_REGS


@dataclass(slots=True)
class TaintEntry:
    tainted: bool = False
    mapped: bool = False
    srf_id: int = -1
    offset: int = 0      # dynamic instructions since PRM start at last read


class TaintTracker:
    """Per-architectural-register taint state."""

    def __init__(self) -> None:
        self._entries = [TaintEntry() for _ in range(NUM_REGS)]

    def entry(self, reg: int) -> TaintEntry:
        return self._entries[reg]

    def is_tainted(self, reg: int) -> bool:
        return self._entries[reg].tainted

    def is_vectorizable(self, reg: int) -> bool:
        """Tainted *and* still mapped to a live SRF entry."""
        entry = self._entries[reg]
        return entry.tainted and entry.mapped

    def srf_of(self, reg: int) -> int:
        return self._entries[reg].srf_id

    def map(self, reg: int, srf_id: int, offset: int) -> None:
        entry = self._entries[reg]
        entry.tainted = True
        entry.mapped = True
        entry.srf_id = srf_id
        entry.offset = offset

    def unmap(self, reg: int) -> None:
        """Recycle: keep taint, drop the SRF mapping (Section IV-A3)."""
        entry = self._entries[reg]
        entry.mapped = False
        entry.srf_id = -1

    def taint_unmapped(self, reg: int) -> None:
        """Taint *reg* without an SRF mapping (allocation failed).

        The single path for "the chain continues logically but its value
        could not be vectorized": SRF exhaustion under the DVR policy, an
        LRU steal with no victim, or taint propagation past the LIL
        cutoff.  Downstream readers see tainted-but-unmapped and stop
        vectorizing, never reading a stale SRF entry.
        """
        entry = self._entries[reg]
        entry.tainted = True
        entry.mapped = False
        entry.srf_id = -1

    def untaint(self, reg: int) -> int | None:
        """Overwritten by a non-chain instruction; frees the SRF entry.

        Returns the freed SRF id, if any.
        """
        entry = self._entries[reg]
        freed = entry.srf_id if entry.mapped else None
        entry.tainted = False
        entry.mapped = False
        entry.srf_id = -1
        return freed

    def touch_read(self, reg: int, offset: int) -> None:
        self._entries[reg].offset = offset

    def lru_victim(self) -> int | None:
        """Mapped register with the stalest read offset (LRU recycling)."""
        victim = None
        best = None
        for reg, entry in enumerate(self._entries):
            if entry.mapped and (best is None or entry.offset < best):
                best = entry.offset
                victim = reg
        return victim

    def mapped_registers(self) -> list[int]:
        return [r for r, e in enumerate(self._entries) if e.mapped]

    def clear(self) -> None:
        for entry in self._entries:
            entry.tainted = False
            entry.mapped = False
            entry.srf_id = -1
            entry.offset = 0
