"""The Scalar Vector Unit: piggyback runahead on the in-order core.

This module implements Sections IV-A and IV-B of the paper end to end:

* **Triggering** — every committed load consults the stride detector; a
  confident striding load outside its waiting range enters piggyback
  runahead mode (PRM), setting the HSLR.
* **Stride SVIs** — on PRM entry, N' scalar copies of the striding load
  are issued at future addresses (N' chosen by the loop-bound policy);
  lane values land in a speculative register file (SRF) entry mapped to
  the load's destination register through the taint tracker.
* **Dependent SVIs** — while in PRM, any real instruction reading a
  tainted-and-mapped register is cloned per active lane at the point it
  issues (lockstep coupling); dependent loads issue prefetches whose start
  waits on the source lane's readiness (the scoreboard return counter of
  Section IV-A4).
* **Control flow** — per-lane branch outcomes that diverge from the real
  path clear lane mask bits (one shared mask in the HSLR, Section IV-B1).
* **Termination** — reaching the HSLR load again, a 256-instruction
  timeout, or a retarget; the taint tracker and SRF are then cleared and
  the stride entry's Last Prefetch range implements waiting mode.
* **Multiple chains** — nested / unrolled / independent loops via the
  per-entry Seen bits (Section IV-A6, Fig 9).
* **Throttling** — the loop-bound unit decides N' (Fig 15 policies); the
  accuracy monitor can ban triggering entirely (Section IV-A7).

Lane execution has two engines (``SVRConfig.lane_engine``):

* the **scalar fallback** — the original per-lane Python loops; and
* the **SoA fast path** (:mod:`repro.svr.lanes`) — each SVI of a round
  executes as one batched numpy op across all active lanes, over the
  structure-of-arrays SRF and a ``bool``-ndarray HSLR mask.

Dispatch is keyed **statically**: at PRM entry the seed pc is looked up
in the program's :class:`~repro.analysis.vectorplan.VectorizationPlan`
(cached on the stride-detector entry).  ``BATCHABLE`` /
``BATCHABLE_WITH_GUARD`` rounds run batched; ``SCALAR_ONLY`` rounds,
unplanned seeds and oracle-instrumented runs take the scalar loops.
Inside a batched round, a firing guard falls back per instruction:
``transient-store`` and ``may-alias`` pcs run the per-lane loop, an
opcode without an exact 64-bit vector kernel (FMUL) runs scalar, and
``lane-mask`` guards *are* the vectorized divergence masking.  Both
engines produce byte-identical simulator outputs; only wall-clock speed
differs (``tests/test_svr_soa_equiv.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.executor import alu_fn
from repro.isa.instructions import OpClass
from repro.isa.registers import wrap64
from repro.obs.probes import default_bus
from repro.svr.accuracy import AccuracyMonitor
from repro.svr.chain import ChainRecorder
from repro.svr.config import SVRConfig
from repro.svr.lanes import (
    LaneEngineStats,
    branch_outcomes,
    expand_group_slots,
    gather_words,
    offset_targets,
    stride_targets,
    vector_alu_fn,
)
from repro.svr.loop_bound import LoopBoundUnit
from repro.svr.overhead import overhead_kib
from repro.svr.srf import SpeculativeRegisterFile
from repro.svr.stride_detector import StrideDetector, StrideEntry
from repro.svr.taint_tracker import TaintTracker

_EMPTY_PCS: frozenset[int] = frozenset()


@dataclass
class SvrStats:
    """Counters for one measured region (reset with the core's stats).

    Everything here is *simulated* behaviour and therefore identical
    between the scalar and the SoA lane engines; engine-dispatch counters
    live in :class:`repro.svr.lanes.LaneEngineStats` instead.
    """

    prm_rounds: int = 0
    svi_lanes: int = 0            # scalar copies issued (all classes)
    svi_load_lanes: int = 0       # scalar copies that were loads
    masked_lanes: int = 0
    retargets: int = 0
    unrolled_chains: int = 0
    terminations: dict[str, int] = field(
        default_factory=lambda: {"hslr": 0, "timeout": 0, "retarget": 0})
    rounds_skipped_zero_length: int = 0
    rounds_blocked_by_monitor: int = 0
    table_accesses: int = 0

    @property
    def transient_instructions(self) -> int:
        return self.svi_lanes


class ScalarVectorUnit:
    """SVR attachment for :class:`repro.cores.inorder.InOrderCore`."""

    def __init__(self, config: SVRConfig | None = None, bus=None) -> None:
        self.config = config or SVRConfig()
        cfg = self.config
        self.bus = bus if bus is not None else default_bus()
        self._p_enter = self.bus.probe("svr.prm_enter")
        self._p_exit = self.bus.probe("svr.prm_exit")
        self._p_svi = self.bus.probe("svr.svi")
        self._p_wait = self.bus.probe("svr.waiting")
        self._p_gate = self.bus.probe("svr.gate_block")
        self.detector = StrideDetector(cfg.stride_detector_entries,
                                       cfg.stride_confidence_threshold,
                                       cfg.ewma_cap)
        self.detector.probe = self.bus.probe("predictor.stride_run")
        self.taint = TaintTracker()
        self.srf = SpeculativeRegisterFile(cfg.srf_entries, cfg.vector_length,
                                           cfg.recycling)
        self.loop_bound = LoopBoundUnit()
        self.loop_bound.probe = self.bus.probe("predictor.loop_bound")
        self.monitor = AccuracyMonitor(cfg.accuracy_threshold,
                                       cfg.accuracy_warmup_events,
                                       cfg.accuracy_reset_interval,
                                       cfg.accuracy_enabled)
        self.monitor.probe = self.bus.probe("svr.accuracy_ban")
        self.chain_log = ChainRecorder()
        self.stats = SvrStats()
        self.engine_stats = LaneEngineStats()
        # Opt-in dynamic oracle (repro.analysis.oracle.OracleRecorder).
        # When None — the default — every hook site pays one `is not None`
        # test, keeping the simulator hot path clean.  Oracle-instrumented
        # rounds always run the scalar engine (per-lane observe ordering).
        self.oracle = None
        self.core = None
        self._context_slots = None      # decoupled-context ablation
        self.in_prm = False
        self.hslr_pc: int | None = None
        # HSLR lane mask, structure-of-arrays form: one bool per lane.
        self.mask = np.zeros(cfg.vector_length, dtype=bool)
        self._lane_index = np.arange(cfg.vector_length)
        self._prm_instructions = 0      # main-thread instrs since PRM entry
        self._prm_enter_time = 0.0      # issue time of the triggering load
        self._lil_offset = 0            # offset of last dependent load SVI
        self._generation_stopped = False
        # Plan-keyed engine dispatch state for the current round.
        self._plan = None               # VectorizationPlan | False once built
        self._round_batched = False
        self._round_scalar_pcs: frozenset[int] = _EMPTY_PCS

    # -- wiring -----------------------------------------------------------------

    def attach(self, core) -> None:
        self.core = core
        core.hierarchy.accuracy_listener = self.monitor
        if self.config.decoupled_context:
            from repro.cores.base import IssueSlots

            self._context_slots = IssueSlots(core.config.width)

    def _svi_slot(self, earliest: float) -> float:
        """Reserve an issue slot for one SVI group.

        Lockstep (default): the main thread's real issue slots.
        Decoupled ablation: a free second context's slots.
        """
        if self._context_slots is not None:
            time = self._context_slots.allocate(earliest)
            if time + 1.0 > self.core.stats.end_cycle:
                self.core.stats.end_cycle = time + 1.0
            return time
        return self.core.issue_transient(earliest)

    def _svi_group_slots(self, earliest: float, count: int) -> np.ndarray:
        """*count* SVI issue slots as a vector (batched `_svi_slot`)."""
        if self._context_slots is not None:
            out = self._context_slots.allocate_many(earliest, count)
            if count:
                stats = self.core.stats
                last = out[count - 1] + 1.0
                if last > stats.end_cycle:
                    stats.end_cycle = last
            return out
        return self.core.issue_transient_many(earliest, count)

    def reset_stats(self) -> None:
        self.stats = SvrStats()
        self.engine_stats = LaneEngineStats()

    @property
    def state_kib(self) -> float:
        """SVR SRAM overhead for the energy model (Table II)."""
        return overhead_kib(self.config.vector_length, self.config.srf_entries)

    # -- plan-keyed engine dispatch ------------------------------------------------

    def _program_plan(self):
        """The program's VectorizationPlan, built once (False on failure)."""
        if self._plan is None:
            try:
                from repro.analysis.vectorplan import plan_for_program

                self._plan = plan_for_program(self.core.program,
                                              self.config.vector_length)
            except Exception:
                # Static analysis must never take the simulator down; an
                # unplannable program simply keeps the scalar engine.
                self._plan = False
        return self._plan

    def _seed_dispatch(self, entry: StrideEntry) -> bool:
        """Resolve (and cache on *entry*) the engine for rounds at this seed.

        Returns True when the round may run batched; as a side effect the
        entry carries the guard pcs a batched round must route through
        the scalar loop.
        """
        if not entry.plan_resolved:
            entry.plan_resolved = True
            engine = self.config.lane_engine
            if engine == "scalar":
                entry.batchable = False
            else:
                plan = self._program_plan()
                lp = plan.plan_for_seed(entry.pc) if plan else None
                if lp is None:
                    self.engine_stats.plan_misses += 1
                    # 'soa' forces batching (the kernels are exact);
                    # 'auto' without a plan stays on the reference path.
                    entry.batchable = engine == "soa"
                    entry.scalar_fallback_pcs = _EMPTY_PCS
                else:
                    entry.batchable = engine == "soa" or lp.batchable
                    entry.scalar_fallback_pcs = lp.scalar_fallback_pcs
        return entry.batchable

    # -- core callback ----------------------------------------------------------

    def after_issue(self, pc: int, inst, issue_time: float, result,
                    outcome) -> None:
        """Called by the core for every committed instruction."""
        cfg = self.config
        if cfg.accuracy_enabled:
            self.monitor.tick()
        opclass = inst.opclass
        p_svi = self._p_svi
        svi_before = self.stats.svi_lanes if p_svi.enabled else 0
        if self.oracle is not None:
            self.oracle.observe_commit(pc, inst, result)

        if self.in_prm:
            self._prm_instructions += 1

        # Last Compare register maintenance (Section IV-B2).
        if opclass is OpClass.CMP:
            self.loop_bound.observe_compare(pc, result.src_a, result.src_b,
                                            inst.rs1, inst.rs2, inst.rd)
        else:
            # Inlined LoopBoundUnit.observe_write(pc, inst.rd,
            # is_compare=False): reset the LC when its flag destination is
            # overwritten by a non-compare op.
            lc = self.loop_bound.lc
            if lc.valid and inst.rd is not None and inst.rd == lc.dest:
                lc.reset()
        if inst.is_branch:
            self.loop_bound.train_on_branch(pc, inst.target, result.taken,
                                            inst.rs1, self.hslr_pc)

        started_round = False
        if inst.is_load:
            started_round = self._stride_logic(pc, inst, result, issue_time)

        if self.in_prm and not started_round:
            self._dependent_logic(pc, inst, result, issue_time)

        if (self.in_prm
                and self._prm_instructions > cfg.timeout_instructions):
            self._terminate("timeout", issue_time)

        if p_svi.enabled:
            delta = self.stats.svi_lanes - svi_before
            if delta:
                p_svi.emit(pc=pc, time=issue_time, lanes=delta)

    # -- trigger / multi-chain logic (Section IV-A6) ------------------------------

    def _stride_logic(self, pc: int, inst, result, issue_time: float) -> bool:
        """Handle a committed load; returns True if it generated stride SVIs."""
        obs = self.detector.observe(pc, result.address)
        entry = obs.entry
        self.stats.table_accesses += 1
        if obs.ended_run:
            self.loop_bound.train_tournament(entry, obs.run_length)
            self.loop_bound.on_loop_reentry(pc)
        if not obs.is_striding:
            return False
        if obs.in_waiting_range and self._p_wait.enabled:
            self._p_wait.emit(pc=pc, time=issue_time, addr=result.address)

        if self.in_prm:
            if pc == self.hslr_pc:
                # One full iteration of the indirect chain: terminate, then
                # maybe immediately restart outside the prefetched range.
                self.detector.clear_seen_except(pc)
                self._terminate("hslr", issue_time)
                if not obs.in_waiting_range and self._may_trigger():
                    return self._enter_prm(entry, inst, result.address,
                                           issue_time)
                return False
            if entry.seen:
                # Nested inner loop (Fig 9 top): abort and retarget.
                self._terminate("retarget", issue_time)
                self.stats.retargets += 1
                self.hslr_pc = pc
                self.detector.clear_seen_except(pc)
                entry.seen = True
                if not obs.in_waiting_range and self._may_trigger():
                    return self._enter_prm(entry, inst, result.address,
                                           issue_time)
                return False
            # Unrolled parallel chain (Fig 9 middle): vectorize alongside.
            entry.seen = True
            if (not obs.in_waiting_range and self._may_trigger()
                    and not self._generation_stopped):
                self.stats.unrolled_chains += 1
                self._generate_stride_svis(entry, inst, result.address,
                                           issue_time,
                                           shared_mask=True)
                return True
            return False

        # Not in PRM (normal execution or waiting mode).
        if self.hslr_pc is None or pc == self.hslr_pc:
            self.detector.clear_seen_except(pc)
            if not obs.in_waiting_range and self._may_trigger():
                self.hslr_pc = pc
                return self._enter_prm(entry, inst, result.address, issue_time)
            return False
        if entry.seen:
            # Independent loop seen twice: retarget (Fig 9 bottom).
            self.stats.retargets += 1
            self.hslr_pc = pc
            self.detector.clear_seen_except(pc)
            entry.seen = True
            if not obs.in_waiting_range and self._may_trigger():
                return self._enter_prm(entry, inst, result.address, issue_time)
            return False
        if not obs.in_waiting_range:
            entry.seen = True
        return False

    def _may_trigger(self) -> bool:
        if not self.monitor.allow_trigger():
            self.stats.rounds_blocked_by_monitor += 1
            if self._p_gate.enabled:
                self._p_gate.emit(accuracy=self.monitor.accuracy)
            return False
        return True

    # -- PRM entry and SVI generation ----------------------------------------------

    def _enter_prm(self, entry: StrideEntry, inst, addr: int,
                   issue_time: float) -> bool:
        cfg = self.config
        length = self.loop_bound.decide_length(cfg.policy, entry,
                                               self.core.regs.read,
                                               cfg.vector_length)
        if length <= 0:
            self.stats.rounds_skipped_zero_length += 1
            return False
        self.in_prm = True
        self._prm_instructions = 0
        self._prm_enter_time = issue_time
        self._lil_offset = 0
        self._generation_stopped = False
        self.mask = self._lane_index < length
        self.stats.prm_rounds += 1
        # Engine dispatch for this round: static plan verdict at the seed,
        # cached on the detector entry; oracle instrumentation pins the
        # per-lane reference path.
        batched = self._seed_dispatch(entry) and self.oracle is None
        self._round_batched = batched
        self._round_scalar_pcs = (entry.scalar_fallback_pcs if batched
                                  else _EMPTY_PCS)
        if batched:
            self.engine_stats.batched_rounds += 1
        else:
            self.engine_stats.scalar_rounds += 1
        if self.oracle is not None:
            self.oracle.on_round_start(entry.pc)
        if self._p_enter.enabled:
            self._p_enter.emit(pc=entry.pc, time=issue_time, length=length,
                               stride=entry.stride, addr=addr)
        if cfg.register_copy_cost_cycles > 0:
            self.core.delay_frontend(issue_time + cfg.register_copy_cost_cycles)
        self._generate_stride_svis(entry, inst, addr, issue_time,
                                   shared_mask=False, length=length)
        return True

    def _generate_stride_svis(self, entry: StrideEntry, inst, addr: int,
                              issue_time: float, *, shared_mask: bool,
                              length: int | None = None) -> None:
        """Issue N' future copies of a striding load (Section IV-A1/A4)."""
        cfg = self.config
        if length is None:
            length = self.loop_bound.decide_length(cfg.policy, entry,
                                                   self.core.regs.read,
                                                   cfg.vector_length)
            if length <= 0:
                self.stats.rounds_skipped_zero_length += 1
                return
        self.chain_log.record_seed(entry.pc, entry.stride)
        oracle = self.oracle
        if oracle is not None:
            oracle.observe_stride_round(entry.pc, entry.stride)
            if shared_mask:
                oracle.on_round_join(entry.pc)
        srf_id = self.srf.allocate(inst.rd, self.taint)
        if srf_id is None:
            # SRF exhausted: the destination is part of the chain but its
            # vector cannot be materialised (same contract as
            # _write_dest_lanes).
            self.taint.taint_unmapped(inst.rd)
            return
        self.taint.map(inst.rd, srf_id, self._prm_instructions)
        if self._round_batched:
            last_prefetched = self._stride_lanes_soa(entry, inst, addr,
                                                     issue_time, shared_mask,
                                                     length, srf_id)
        else:
            last_prefetched = self._stride_lanes_scalar(entry, inst, addr,
                                                        issue_time,
                                                        shared_mask, length,
                                                        srf_id)
        if cfg.waiting_mode:
            self.detector.record_prefetch_range(entry, addr, last_prefetched)

    def _stride_lanes_scalar(self, entry: StrideEntry, inst, addr: int,
                             issue_time: float, shared_mask: bool,
                             length: int, srf_id: int) -> int:
        """Per-lane reference loop for the stride SVIs of one round."""
        cfg = self.config
        oracle = self.oracle
        stride = entry.stride
        hierarchy = self.core.hierarchy
        memory = self.core.memory
        slot = issue_time
        last_prefetched = addr
        for lane in range(length):
            if shared_mask and not self.mask[lane]:
                continue
            if lane % cfg.scalars_per_unit == 0:
                slot = self._svi_slot(issue_time)
            self.stats.svi_lanes += 1
            self.stats.svi_load_lanes += 1
            target = wrap64(addr + (lane + 1) * stride)
            if oracle is not None:
                oracle.observe_svi(entry.pc, target, is_store=False)
            completion = hierarchy.prefetch(target, slot, "svr",
                                            drop_on_full=False)
            try:
                value = memory.read_word(target)
            except IndexError:
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                continue
            self.srf.write_lane(srf_id, lane, value,
                                completion if completion is not None else slot)
            last_prefetched = target
        return last_prefetched

    def _stride_lanes_soa(self, entry: StrideEntry, inst, addr: int,
                          issue_time: float, shared_mask: bool,
                          length: int, srf_id: int) -> int:
        """Batched stride SVIs: one vector op over all active lanes.

        Addresses, the memory gather and the SRF write are single numpy
        ops; prefetch issue stays per-lane (the memory hierarchy is a
        stateful sequential model) but consumes the precomputed address
        vector.
        """
        if shared_mask:
            lanes = np.flatnonzero(self.mask[:length])
        else:
            lanes = self._lane_index[:length]
        n = lanes.size
        if n == 0:
            return addr
        self.engine_stats.batched_ops += 1
        targets = stride_targets(addr, entry.stride, lanes)
        self.stats.svi_lanes += n
        self.stats.svi_load_lanes += n
        slots = self._stride_slot_vector(lanes, issue_time)
        # Per-lane prefetch issue in lane order, exactly as the scalar
        # loop interleaves it (IssueSlots and the hierarchy share no
        # state, so batching the slot allocations first is equivalent).
        hierarchy = self.core.hierarchy
        prefetch = hierarchy.prefetch
        target_ints = targets.tolist()
        slot_floats = slots.tolist()
        ready = np.empty(n, dtype=np.float64)
        for i in range(n):
            completion = prefetch(target_ints[i], slot_floats[i], "svr",
                                  drop_on_full=False)
            ready[i] = slot_floats[i] if completion is None else completion
        values, in_bounds = gather_words(self.core.memory.words, targets)
        if in_bounds.all():
            self.srf.write_lanes(srf_id, lanes, values, ready)
            return target_ints[-1]
        oob = ~in_bounds
        self.mask[lanes[oob]] = False
        self.stats.masked_lanes += int(oob.sum())
        if in_bounds.any():
            self.srf.write_lanes(srf_id, lanes[in_bounds], values[in_bounds],
                                 ready[in_bounds])
            return int(targets[in_bounds][-1])
        return addr

    def _stride_slot_vector(self, lanes: np.ndarray,
                            issue_time: float) -> np.ndarray:
        """Per-lane issue slots for stride SVIs over *lanes*.

        The scalar loop allocates a slot whenever the **absolute** lane
        index crosses a group boundary (``lane % scalars_per_unit == 0``)
        and reuses the previous slot otherwise; surviving lanes before
        the first boundary keep ``issue_time``.
        """
        spu = self.config.scalars_per_unit
        if spu == 1:
            return self._svi_group_slots(issue_time, lanes.size)
        boundaries = (lanes % spu) == 0
        n_alloc = int(boundaries.sum())
        if n_alloc == 0:
            return np.full(lanes.size, issue_time, dtype=np.float64)
        alloc = self._svi_group_slots(issue_time, n_alloc)
        fill = np.cumsum(boundaries) - 1
        return np.where(fill < 0, issue_time, alloc[np.maximum(fill, 0)])

    # -- dependent-chain SVIs ------------------------------------------------------

    def _lane_operand(self, reg: int | None, lane: int) -> tuple[int, float, bool]:
        """Value, readiness and validity of *reg* for one lane."""
        if reg is None:
            return 0, 0.0, True
        tentry = self.taint.entry(reg)
        if tentry.tainted and tentry.mapped:
            self.taint.touch_read(reg, self._prm_instructions)
            return self.srf.read_lane(tentry.srf_id, lane)
        return self.core.regs.read(reg), 0.0, True

    def _lane_operands_soa(self, reg: int | None, lanes: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`_lane_operand` over a lane-index vector."""
        n = lanes.size
        if reg is not None:
            tentry = self.taint.entry(reg)
            if tentry.tainted and tentry.mapped:
                self.taint.touch_read(reg, self._prm_instructions)
                return self.srf.read_lanes(tentry.srf_id, lanes)
            value = self.core.regs.read(reg)
        else:
            value = 0
        return (np.full(n, value, dtype=np.uint64),
                np.zeros(n, dtype=np.float64), np.ones(n, dtype=bool))

    def _dependent_logic(self, pc: int, inst, result, issue_time: float) -> None:
        """Generate SVIs for an instruction reading tainted registers."""
        opclass = inst.opclass
        tainted_srcs = [r for r in inst.srcs
                        if self.taint.is_tainted(r)]
        if tainted_srcs:
            self.chain_log.record_dependent(pc)
        vectorizable = bool(tainted_srcs) and all(
            self.taint.is_vectorizable(r) for r in tainted_srcs)
        batched = self._round_batched

        if inst.is_branch:
            if vectorizable:
                if batched:
                    self._mask_divergent_lanes_soa(pc, inst, result,
                                                   issue_time)
                else:
                    self._mask_divergent_lanes(pc, inst, result, issue_time)
            return

        if not tainted_srcs:
            # Overwriting a mapped register from outside the chain frees it.
            if inst.rd is not None and self.taint.is_tainted(inst.rd):
                freed = self.taint.untaint(inst.rd)
                if freed is not None:
                    self.srf.release(freed)
            return

        # LIL cutoff (Section IV-A4): once past the learned offset of the
        # last indirect load, stop generating SVIs — trailing compute after
        # the final dependent load contributes nothing to prefetching.
        self._check_lil_cutoff()
        if self._generation_stopped or not vectorizable:
            # The chain continues logically but cannot be vectorized (LIL
            # cutoff, or a tainted source lost its SRF mapping).  Taint
            # still propagates — and a tainted load past the cutoff means
            # we reached an *alternative* LIL, draining its confidence
            # (footnote 2 of the paper).
            if inst.is_load and self._generation_stopped:
                entry = (self.detector.get(self.hslr_pc)
                         if self.hslr_pc is not None else None)
                if entry is not None:
                    entry.lil_confidence = max(0, entry.lil_confidence - 1)
                self._lil_offset = self._prm_instructions
            if inst.rd is not None:
                self.taint.taint_unmapped(inst.rd)
            return
        if inst.is_load:
            if batched and pc not in self._round_scalar_pcs:
                self._generate_dependent_load_soa(pc, inst, issue_time)
            else:
                if batched:
                    # may-alias guard fired: this load takes the per-lane
                    # reference path.
                    self.engine_stats.guard_scalar_ops += 1
                self._generate_dependent_load(pc, inst, issue_time)
            self._lil_offset = self._prm_instructions
        elif inst.is_store:
            # transient-store guard: stores only prefetch their target
            # lines and always run the per-lane path.
            if batched:
                self.engine_stats.guard_scalar_ops += 1
            self._generate_dependent_store(pc, inst, issue_time)
        elif opclass in (OpClass.ALU, OpClass.FP, OpClass.CMP):
            kernel = vector_alu_fn(inst) if batched else None
            if kernel is not None:
                self._generate_dependent_alu_soa(inst, issue_time, kernel)
            else:
                if batched:
                    # No exact 64-bit vector kernel (FMUL): scalar lanes.
                    self.engine_stats.guard_scalar_ops += 1
                self._generate_dependent_alu(inst, issue_time)

    def _check_lil_cutoff(self) -> None:
        """Stop generating past the learned Last Indirect Load offset."""
        if self.hslr_pc is None:
            return
        entry = self.detector.get(self.hslr_pc)
        if (entry is not None and entry.lil_confidence >= 2
                and self._prm_instructions > entry.lil_offset):
            self._generation_stopped = True

    def _active_lanes(self):
        return np.flatnonzero(self.mask).tolist()

    def _dependent_group_slots(self, count: int,
                               issue_time: float) -> np.ndarray:
        """Per-lane slots for a dependent SVI over *count* active lanes.

        Dependent loops group by the enumerate count over the active-lane
        snapshot (``count % scalars_per_unit == 0``), unlike the stride
        loop's absolute lane index.
        """
        spu = self.config.scalars_per_unit
        groups = -(-count // spu)
        return expand_group_slots(self._svi_group_slots(issue_time, groups),
                                  count, spu)

    def _mask_divergent_lanes(self, pc: int, inst, result,
                              issue_time: float) -> None:
        """Section IV-B1: mask lanes whose branch outcome diverges."""
        cfg = self.config
        for count, lane in enumerate(self._active_lanes()):
            if count % cfg.scalars_per_unit == 0:
                self._svi_slot(issue_time)
            self.stats.svi_lanes += 1
            value, _, valid = self._lane_operand(inst.rs1, lane)
            if not valid:
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                continue
            lane_taken = inst.branch_taken(value)
            if lane_taken != result.taken:
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                if self.oracle is not None:
                    self.oracle.observe_mask(pc)

    def _mask_divergent_lanes_soa(self, pc: int, inst, result,
                                  issue_time: float) -> None:
        """Batched divergence masking: all lane outcomes in one vector op."""
        lanes = np.flatnonzero(self.mask)
        n = lanes.size
        if n == 0:
            return
        self.engine_stats.batched_ops += 1
        self._dependent_group_slots(n, issue_time)   # lockstep issue cost
        self.stats.svi_lanes += n
        values, _ready, valid = self._lane_operands_soa(inst.rs1, lanes)
        taken = branch_outcomes(inst, values)
        diverged = ~valid | (taken != bool(result.taken))
        if diverged.any():
            self.mask[lanes[diverged]] = False
            self.stats.masked_lanes += int(diverged.sum())

    def _generate_dependent_load(self, pc: int, inst,
                                 issue_time: float) -> None:
        cfg = self.config
        hierarchy = self.core.hierarchy
        memory = self.core.memory
        oracle = self.oracle
        lanes = self._active_lanes()
        values: list[tuple[int, int, float]] = []   # (lane, value, ready)
        slot = issue_time
        for count, lane in enumerate(lanes):
            if count % cfg.scalars_per_unit == 0:
                slot = self._svi_slot(issue_time)
            self.stats.svi_lanes += 1
            self.stats.svi_load_lanes += 1
            base, src_ready, valid = self._lane_operand(inst.rs1, lane)
            if not valid:
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                continue
            target = wrap64(base + inst.imm)
            if oracle is not None:
                oracle.observe_svi(pc, target, is_store=False)
            start = max(slot, src_ready)
            completion = hierarchy.prefetch(target, start, "svr",
                                            drop_on_full=False)
            try:
                value = memory.read_word(target)
            except IndexError:
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                continue
            values.append((lane, value,
                           completion if completion is not None else start))
        self._write_dest_lanes(inst.rd, values)

    def _generate_dependent_load_soa(self, pc: int, inst,
                                     issue_time: float) -> None:
        """Batched dependent load: vector addresses, per-lane prefetch."""
        lanes = np.flatnonzero(self.mask)
        n = lanes.size
        if n:
            self.engine_stats.batched_ops += 1
            slots = self._dependent_group_slots(n, issue_time)
            self.stats.svi_lanes += n
            self.stats.svi_load_lanes += n
            base, src_ready, valid = self._lane_operands_soa(inst.rs1, lanes)
            if not valid.all():
                invalid = ~valid
                self.mask[lanes[invalid]] = False
                self.stats.masked_lanes += int(invalid.sum())
                lanes = lanes[valid]
                base = base[valid]
                src_ready = src_ready[valid]
                slots = slots[valid]
                n = lanes.size
        if n == 0:
            # The scalar loop still (re)allocates the destination vector.
            self._write_dest_lanes_soa(
                inst.rd, lanes if isinstance(lanes, np.ndarray) else
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.float64))
            return
        targets = offset_targets(base, inst.imm)
        starts = np.maximum(slots, src_ready)
        hierarchy = self.core.hierarchy
        prefetch = hierarchy.prefetch
        target_ints = targets.tolist()
        start_floats = starts.tolist()
        ready = np.empty(n, dtype=np.float64)
        for i in range(n):
            completion = prefetch(target_ints[i], start_floats[i], "svr",
                                  drop_on_full=False)
            ready[i] = start_floats[i] if completion is None else completion
        values, in_bounds = gather_words(self.core.memory.words, targets)
        if not in_bounds.all():
            oob = ~in_bounds
            self.mask[lanes[oob]] = False
            self.stats.masked_lanes += int(oob.sum())
            lanes = lanes[in_bounds]
            values = values[in_bounds]
            ready = ready[in_bounds]
        self._write_dest_lanes_soa(inst.rd, lanes, values, ready)

    def _generate_dependent_store(self, pc: int, inst,
                                  issue_time: float) -> None:
        """Transient stores only prefetch their target lines (write-allocate);
        they must never modify memory."""
        if not self.taint.is_vectorizable(inst.rs1):
            return
        cfg = self.config
        hierarchy = self.core.hierarchy
        oracle = self.oracle
        slot = issue_time
        for count, lane in enumerate(self._active_lanes()):
            if count % cfg.scalars_per_unit == 0:
                slot = self._svi_slot(issue_time)
            self.stats.svi_lanes += 1
            base, src_ready, valid = self._lane_operand(inst.rs1, lane)
            if not valid:
                # A dead source lane kills the lane, exactly as in the
                # load/ALU paths — it must not keep issuing SVIs.
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                continue
            target = wrap64(base + inst.imm)
            if oracle is not None:
                oracle.observe_svi(pc, target, is_store=True)
            hierarchy.prefetch(target, max(slot, src_ready), "svr",
                               drop_on_full=False)

    def _generate_dependent_alu(self, inst, issue_time: float) -> None:
        cfg = self.config
        lanes = self._active_lanes()
        values: list[tuple[int, int, float]] = []
        slot = issue_time
        compute = alu_fn(inst)     # hoisted out of the per-lane loop
        imm = inst.imm
        for count, lane in enumerate(lanes):
            if count % cfg.scalars_per_unit == 0:
                slot = self._svi_slot(issue_time)
            self.stats.svi_lanes += 1
            a, ready_a, valid_a = self._lane_operand(inst.rs1, lane)
            b, ready_b, valid_b = (self._lane_operand(inst.rs2, lane)
                                   if inst.rs2 is not None else (0, 0.0, True))
            if not (valid_a and valid_b):
                self.mask[lane] = False
                self.stats.masked_lanes += 1
                continue
            value = compute(a, b, imm)
            ready = max(slot, ready_a, ready_b) + 1.0
            values.append((lane, value, ready))
        self._write_dest_lanes(inst.rd, values)

    def _generate_dependent_alu_soa(self, inst, issue_time: float,
                                    kernel) -> None:
        """Batched dependent ALU/CMP/FP: one vector kernel over all lanes."""
        lanes = np.flatnonzero(self.mask)
        n = lanes.size
        if n == 0:
            self._write_dest_lanes_soa(inst.rd, lanes,
                                       np.empty(0, dtype=np.uint64),
                                       np.empty(0, dtype=np.float64))
            return
        self.engine_stats.batched_ops += 1
        slots = self._dependent_group_slots(n, issue_time)
        self.stats.svi_lanes += n
        a, ready_a, valid = self._lane_operands_soa(inst.rs1, lanes)
        if inst.rs2 is not None:
            b, ready_b, valid_b = self._lane_operands_soa(inst.rs2, lanes)
            valid = valid & valid_b
            src_ready = np.maximum(ready_a, ready_b)
        else:
            b = np.zeros(n, dtype=np.uint64)
            src_ready = ready_a
        if not valid.all():
            invalid = ~valid
            self.mask[lanes[invalid]] = False
            self.stats.masked_lanes += int(invalid.sum())
            lanes = lanes[valid]
            a = a[valid]
            b = b[valid]
            slots = slots[valid]
            src_ready = src_ready[valid]
        values = kernel(a, b, inst.imm)
        ready = np.maximum(slots, src_ready) + 1.0
        self._write_dest_lanes_soa(inst.rd, lanes, values, ready)

    def _write_dest_lanes(self, rd: int | None,
                          values: list[tuple[int, int, float]]) -> None:
        if rd is None:
            return
        srf_id = self.srf.allocate(rd, self.taint)
        if srf_id is None:
            # DVR recycling policy exhausted the SRF: dest stays tainted but
            # unmapped, so downstream consumers cannot be vectorized.
            self.taint.taint_unmapped(rd)
            return
        self.taint.map(rd, srf_id, self._prm_instructions)
        for lane, value, ready in values:
            self.srf.write_lane(srf_id, lane, value, ready)

    def _write_dest_lanes_soa(self, rd: int | None, lanes: np.ndarray,
                              values: np.ndarray,
                              ready: np.ndarray) -> None:
        """Vectorized :meth:`_write_dest_lanes`: one fancy-indexed write."""
        if rd is None:
            return
        srf_id = self.srf.allocate(rd, self.taint)
        if srf_id is None:
            self.taint.taint_unmapped(rd)
            return
        self.taint.map(rd, srf_id, self._prm_instructions)
        if lanes.size:
            self.srf.write_lanes(srf_id, lanes, values, ready)

    # -- termination -------------------------------------------------------------

    def _terminate(self, cause: str, time: float | None = None) -> None:
        if not self.in_prm:
            return
        if cause == "hslr" and self.hslr_pc is not None:
            entry = self.detector.get(self.hslr_pc)
            if entry is not None:
                self.detector.record_lil(entry, self._lil_offset)
        self.taint.clear()
        self.srf.release_all()
        self.mask = np.zeros(self.config.vector_length, dtype=bool)
        self.in_prm = False
        self._round_batched = False
        self._round_scalar_pcs = _EMPTY_PCS
        if self.oracle is not None:
            self.oracle.on_round_end()
        self._generation_stopped = False
        self.stats.terminations[cause] += 1
        if self._p_exit.enabled:
            if time is None:
                time = self.core.now() if self.core is not None \
                    else self._prm_enter_time
            self._p_exit.emit(cause=cause, time=time,
                              duration=max(0.0, time - self._prm_enter_time),
                              instructions=self._prm_instructions,
                              pc=self.hslr_pc)
