"""Structure-of-arrays lane engine for batched SVI rounds.

The scalar SVR unit steps every lane as a separate Python object: one
``_lane_operand`` call, one ALU lambda, one SRF write per lane per SVI.
This module provides the numpy kernels that execute one SVI across *all*
active lanes at once — per-lane addresses, operand vectors, ALU results,
branch outcomes and readiness times as dense arrays over the
structure-of-arrays SRF (:mod:`repro.svr.srf`) and the HSLR lane mask
(a ``bool`` ndarray on the unit).

Exactness contract
------------------
Every vector kernel is **bit-identical** to the scalar evaluator in
``repro.isa.executor._ALU_TABLE``: uint64 arithmetic wraps modulo 2^64
exactly like ``wrap64``, signed comparisons view the same bits as int64,
and shift amounts are masked to 6 bits.  Opcodes whose scalar semantics
cannot be reproduced with 64-bit numpy lanes (``FMUL`` needs an exact
128-bit intermediate) have **no** vector kernel — ``vector_alu_fn``
returns ``None`` and the unit falls back to the per-lane loop for that
one instruction, keeping simulator outputs byte-identical between the
two engines.  ``tests/test_svr_lanes.py`` fuzzes every kernel against
its scalar twin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.isa.instructions import Instruction, Opcode

_MASK64 = (1 << 64) - 1
_U64 = np.uint64
_SHIFT6 = np.uint64(63)

# A vector kernel: (a, b, imm) -> result, all uint64 lane vectors except
# the Python-int immediate.  ``b`` is a zeros vector when rs2 is None.
VectorKernel = Callable[[np.ndarray, np.ndarray, int], np.ndarray]


def _imm64(imm: int) -> np.uint64:
    """The immediate as a wrapped uint64 scalar (negative imms wrap)."""
    return np.uint64(imm & _MASK64)


def _signed(a: np.ndarray) -> np.ndarray:
    return a.view(np.int64)


def _k_min(a: np.ndarray, b: np.ndarray, imm: int) -> np.ndarray:
    return np.where(_signed(a) < _signed(b), a, b)


def _k_max(a: np.ndarray, b: np.ndarray, imm: int) -> np.ndarray:
    return np.where(_signed(a) > _signed(b), a, b)


_VECTOR_TABLE: dict[Opcode, VectorKernel] = {
    Opcode.ADD: lambda a, b, imm: a + b,
    Opcode.SUB: lambda a, b, imm: a - b,
    Opcode.MUL: lambda a, b, imm: a * b,
    Opcode.AND: lambda a, b, imm: a & b,
    Opcode.OR: lambda a, b, imm: a | b,
    Opcode.XOR: lambda a, b, imm: a ^ b,
    Opcode.SLL: lambda a, b, imm: a << (b & _SHIFT6),
    Opcode.SRL: lambda a, b, imm: a >> (b & _SHIFT6),
    Opcode.MIN: _k_min,
    Opcode.MAX: _k_max,
    Opcode.ADDI: lambda a, b, imm: a + _imm64(imm),
    Opcode.ANDI: lambda a, b, imm: a & _imm64(imm),
    Opcode.ORI: lambda a, b, imm: a | _imm64(imm),
    Opcode.XORI: lambda a, b, imm: a ^ _imm64(imm),
    Opcode.SLLI: lambda a, b, imm: a << np.uint64(imm & 63),
    Opcode.SRLI: lambda a, b, imm: a >> np.uint64(imm & 63),
    Opcode.MULI: lambda a, b, imm: a * _imm64(imm),
    Opcode.LI: lambda a, b, imm: np.full(a.shape, _imm64(imm), dtype=_U64),
    Opcode.MV: lambda a, b, imm: a,
    Opcode.FADD: lambda a, b, imm: a + b,
    # Opcode.FMUL intentionally absent: the Q32.16 multiply needs an exact
    # 128-bit intermediate ((sa * sb) >> 16) that 64-bit lanes cannot
    # represent; those instructions take the per-lane scalar fallback.
    Opcode.CMP_LT: lambda a, b, imm: (_signed(a) < _signed(b)).astype(_U64),
    Opcode.CMP_LTU: lambda a, b, imm: (a < b).astype(_U64),
    Opcode.CMP_EQ: lambda a, b, imm: (a == b).astype(_U64),
    Opcode.CMP_NE: lambda a, b, imm: (a != b).astype(_U64),
    Opcode.CMP_GE: lambda a, b, imm: (_signed(a) >= _signed(b)).astype(_U64),
}

_VECTOR_BY_INDEX: list[VectorKernel | None] = [
    _VECTOR_TABLE.get(op) for op in Opcode
]


def vector_alu_fn(inst: Instruction) -> VectorKernel | None:
    """The vector evaluator for *inst*, or ``None`` when the opcode has no
    exact 64-bit lane kernel and must run the scalar fallback."""
    return _VECTOR_BY_INDEX[inst.opindex]


def branch_outcomes(inst: Instruction, values: np.ndarray) -> np.ndarray:
    """Per-lane taken bits for a conditional branch over ``rs1`` lanes."""
    if inst.op is Opcode.BEQZ:
        return values == 0
    if inst.op is Opcode.BNEZ:
        return values != 0
    if inst.op is Opcode.JMP:
        return np.ones(values.shape, dtype=bool)
    raise ValueError(f"not a branch: {inst.op}")


def stride_targets(addr: int, stride: int, lanes: np.ndarray) -> np.ndarray:
    """``wrap64(addr + (lane + 1) * stride)`` for a lane-index vector."""
    return (np.uint64(addr & _MASK64)
            + (lanes.astype(_U64) + np.uint64(1)) * _imm64(stride))


def offset_targets(base: np.ndarray, imm: int) -> np.ndarray:
    """``wrap64(base + imm)`` per lane (dependent load/store addresses)."""
    return base + _imm64(imm)


def gather_words(words: np.ndarray, targets: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Functional-memory gather with bounds checking.

    Returns ``(values, in_bounds)``: out-of-bounds lanes read 0 and are
    flagged False — exactly the lanes whose scalar ``read_word`` raises
    ``IndexError`` and gets masked.
    """
    index = targets >> np.uint64(3)
    in_bounds = index < np.uint64(words.shape[0])
    values = np.zeros(targets.shape, dtype=_U64)
    if in_bounds.all():
        values[:] = words[index]
    elif in_bounds.any():
        values[in_bounds] = words[index[in_bounds]]
    return values, in_bounds


def expand_group_slots(group_slots: np.ndarray, count: int,
                       scalars_per_unit: int) -> np.ndarray:
    """Per-lane issue slots from per-group slots (Fig 16 lane grouping)."""
    if scalars_per_unit == 1:
        return group_slots
    return np.repeat(group_slots, scalars_per_unit)[:count]


@dataclass
class LaneEngineStats:
    """Engine-internal dispatch counters.

    Deliberately *not* part of :class:`repro.svr.unit.SvrStats`: the two
    engines must produce byte-identical simulator outputs, so anything
    that differs between them (how rounds were dispatched) lives here.
    """

    batched_rounds: int = 0        # PRM rounds run on the SoA fast path
    scalar_rounds: int = 0         # rounds on the per-lane fallback
    batched_ops: int = 0           # SVIs executed as one vector op
    guard_scalar_ops: int = 0      # SVIs sent to the scalar loop by a guard
    plan_misses: int = 0           # rounds whose seed had no loop plan

    def as_dict(self) -> dict[str, int]:
        return {
            "batched_rounds": self.batched_rounds,
            "scalar_rounds": self.scalar_rounds,
            "batched_ops": self.batched_ops,
            "guard_scalar_ops": self.guard_scalar_ops,
            "plan_misses": self.plan_misses,
        }
