"""Vector Runahead (VR) baseline for the out-of-order core.

Table I compares SVR against VR (Naithani et al., ISCA'21) and DVR; the
paper argues both are infeasible on in-order cores but uses them as design
reference points.  This module models VR's *behaviour* on our OoO core so
the qualitative Table I rows become a quantitative experiment:

* **trigger** — VR fires when the reorder buffer fills behind a
  long-latency load (the full-window stall);
* **stalls the main thread** — runahead executes while the window drains,
  so episodes add no issue cost but also give no main-thread overlap;
* **fixed depth, no loop bounds** — VR always vectorizes ``length`` (64)
  future iterations, over-running inner-loop bounds (the inaccuracy the
  paper contrasts with SVR's throttling);
* **vectorized transient execution** — modelled as a bounded transient
  *functional* forward pass from the stalled PC that issues a prefetch for
  every load it reaches: the same prefetch set VR's vector lanes would
  generate, without re-modelling its SIMD pipeline.

Episodes never touch architectural state (private register copy, stores
suppressed), and their prefetches contend for DRAM bandwidth like any
other traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.executor import execute
from repro.isa.instructions import OpClass
from repro.isa.registers import RegisterFile


@dataclass
class VrStats:
    episodes: int = 0
    transient_instructions: int = 0
    prefetches: int = 0
    aborted_episodes: int = 0    # wrong-path transient execution faulted


class VectorRunaheadUnit:
    """Full-window-stall runahead for :class:`OutOfOrderCore`."""

    def __init__(self, length: int = 64, max_instructions: int = 1024,
                 stall_threshold: float = 30.0,
                 cooldown_instructions: int = 16) -> None:
        self.length = length
        self.max_instructions = max_instructions
        self.stall_threshold = stall_threshold
        self.cooldown = cooldown_instructions
        self.stats = VrStats()
        self.core = None
        self._last_episode_index = -1_000_000

    def attach(self, core) -> None:
        self.core = core

    def reset_stats(self) -> None:
        self.stats = VrStats()

    # -- trigger ---------------------------------------------------------------

    def on_window_stall(self, pc: int, now: float, stall: float,
                        instruction_index: int) -> None:
        """Called by the core when dispatch blocks on a full ROB."""
        if stall < self.stall_threshold:
            return
        if instruction_index - self._last_episode_index < self.cooldown:
            return
        self._last_episode_index = instruction_index
        self._run_episode(pc, now)

    # -- the transient pass -----------------------------------------------------

    def _run_episode(self, pc: int, now: float) -> None:
        """Transiently execute ahead, prefetching every load's target.

        Depth is bounded by ``length`` backward-branch crossings (loop
        iterations — VR's 64 vectors) and ``max_instructions``.
        """
        core = self.core
        self.stats.episodes += 1
        regs = RegisterFile()
        regs.load(core.regs.snapshot())
        memory = core.memory
        hierarchy = core.hierarchy
        iterations = 0
        executed = 0
        time = now
        while (executed < self.max_instructions
               and iterations < self.length
               and 0 <= pc < len(core.program)):
            inst = core.program[pc]
            try:
                result = execute(inst, pc, regs.read, memory,
                                 commit_stores=False)
            except IndexError:
                # Wrong-path address outside simulated memory: abort.
                self.stats.aborted_episodes += 1
                return
            executed += 1
            opclass = inst.opclass
            if opclass is OpClass.LOAD:
                done = hierarchy.prefetch(result.address, time, "vr",
                                          drop_on_full=True)
                self.stats.prefetches += 1
                if done is not None:
                    time = max(time, done - hierarchy.dram.latency_cycles)
                regs.write(inst.rd, result.value)
            elif opclass is OpClass.STORE:
                hierarchy.prefetch(result.address, time, "vr",
                                   drop_on_full=True)
                self.stats.prefetches += 1
            elif opclass is OpClass.HALT:
                break
            elif result.value is not None and inst.rd is not None:
                regs.write(inst.rd, result.value)
            if opclass is OpClass.BRANCH and result.taken \
                    and result.next_pc < pc:
                iterations += 1
            pc = result.next_pc
        self.stats.transient_instructions += executed
