"""Speculative register file (Section IV-A3).

K wide registers, each holding N 64-bit lanes with per-lane value and
ready-time (the scoreboard return-counter of Section IV-A4 collapses to
per-lane readiness in our event-driven model).  SRF entries are
deliberately under-provisioned; when they run out SVR recycles the entry
backing the least-recently-read architectural register, while the DVR
ablation policy refuses and simply stops vectorizing new values.
"""

from __future__ import annotations

from repro.svr.config import RecyclingPolicy
from repro.svr.taint_tracker import TaintTracker


class _SrfEntry:
    __slots__ = ("values", "ready", "valid", "owner")

    def __init__(self, lanes: int) -> None:
        self.values = [0] * lanes
        self.ready = [0.0] * lanes
        self.valid = [False] * lanes
        self.owner = -1    # architectural register currently mapped here

    def reset(self, owner: int) -> None:
        for lane in range(len(self.values)):
            self.values[lane] = 0
            self.ready[lane] = 0.0
            self.valid[lane] = False
        self.owner = owner


class SpeculativeRegisterFile:
    """K x N x 64-bit transient storage with recycling."""

    def __init__(self, entries: int, lanes: int,
                 policy: RecyclingPolicy = RecyclingPolicy.LRU) -> None:
        self._lanes = lanes
        self._policy = policy
        self._entries = [_SrfEntry(lanes) for _ in range(entries)]
        self._free = list(range(entries))
        self.allocations = 0
        self.recycles = 0
        self.allocation_failures = 0

    @property
    def lanes(self) -> int:
        return self._lanes

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def entry(self, srf_id: int) -> _SrfEntry:
        return self._entries[srf_id]

    def allocate(self, reg: int, taint: TaintTracker) -> int | None:
        """Get an SRF entry for architectural register *reg*.

        Reuses an existing mapping (footnote 1: only one copy of an
        architectural register can be live at once).  On exhaustion, LRU
        policy steals from the least-recently-read mapped register; DVR
        policy fails, leaving *reg* tainted-but-unmapped.
        """
        tentry = taint.entry(reg)
        if tentry.mapped:
            srf = self._entries[tentry.srf_id]
            srf.reset(reg)
            return tentry.srf_id
        if self._free:
            srf_id = self._free.pop()
            self._entries[srf_id].reset(reg)
            self.allocations += 1
            return srf_id
        if self._policy is RecyclingPolicy.DVR:
            self.allocation_failures += 1
            return None
        victim_reg = taint.lru_victim()
        if victim_reg is None:
            self.allocation_failures += 1
            return None
        srf_id = taint.srf_of(victim_reg)
        taint.unmap(victim_reg)
        self._entries[srf_id].reset(reg)
        self.recycles += 1
        return srf_id

    def release(self, srf_id: int) -> None:
        entry = self._entries[srf_id]
        entry.owner = -1
        if srf_id not in self._free:
            self._free.append(srf_id)

    def release_all(self) -> None:
        for srf_id, entry in enumerate(self._entries):
            entry.owner = -1
        self._free = list(range(len(self._entries)))

    def write_lane(self, srf_id: int, lane: int, value: int,
                   ready: float) -> None:
        entry = self._entries[srf_id]
        entry.values[lane] = value
        entry.ready[lane] = ready
        entry.valid[lane] = True

    def read_lane(self, srf_id: int, lane: int) -> tuple[int, float, bool]:
        entry = self._entries[srf_id]
        return entry.values[lane], entry.ready[lane], entry.valid[lane]
