"""Speculative register file (Section IV-A3) — numpy structure-of-arrays.

K wide registers, each holding N 64-bit lanes with per-lane value and
ready-time (the scoreboard return-counter of Section IV-A4 collapses to
per-lane readiness in our event-driven model).  SRF entries are
deliberately under-provisioned; when they run out SVR recycles the entry
backing the least-recently-read architectural register, while the DVR
ablation policy refuses and simply stops vectorizing new values.

Lane state is stored column-major across entries as three dense arrays —
``values`` ``uint64[K, N]``, ``ready`` ``float64[K, N]``, ``valid``
``bool[K, N]`` — so the batched lane engine (:mod:`repro.svr.lanes`) can
read and write whole lane vectors with one fancy-indexed numpy op while
the scalar fallback keeps the original per-lane ``read_lane`` /
``write_lane`` API on top of the same storage.  Releasing an entry (one
or all) invalidates its lanes: a reused entry can never leak a stale
``valid=True`` lane from a previous mapping.
"""

from __future__ import annotations

import numpy as np

from repro.svr.config import RecyclingPolicy
from repro.svr.taint_tracker import TaintTracker


class SrfEntryView:
    """Read/write view of one SRF entry's lane arrays (numpy slices)."""

    __slots__ = ("_srf", "_srf_id")

    def __init__(self, srf: "SpeculativeRegisterFile", srf_id: int) -> None:
        self._srf = srf
        self._srf_id = srf_id

    @property
    def values(self) -> np.ndarray:
        return self._srf.values[self._srf_id]

    @property
    def ready(self) -> np.ndarray:
        return self._srf.ready[self._srf_id]

    @property
    def valid(self) -> np.ndarray:
        return self._srf.valid[self._srf_id]

    @property
    def owner(self) -> int:
        return int(self._srf.owners[self._srf_id])


class SpeculativeRegisterFile:
    """K x N x 64-bit transient storage with recycling."""

    def __init__(self, entries: int, lanes: int,
                 policy: RecyclingPolicy = RecyclingPolicy.LRU) -> None:
        self._lanes = lanes
        self._policy = policy
        # Structure-of-arrays lane state, shared by the scalar and the
        # batched (SoA) execution paths.
        self.values = np.zeros((entries, lanes), dtype=np.uint64)
        self.ready = np.zeros((entries, lanes), dtype=np.float64)
        self.valid = np.zeros((entries, lanes), dtype=bool)
        self.owners = np.full(entries, -1, dtype=np.int64)
        self._free = list(range(entries))
        self.allocations = 0
        self.recycles = 0
        self.allocation_failures = 0

    @property
    def lanes(self) -> int:
        return self._lanes

    @property
    def num_entries(self) -> int:
        return self.values.shape[0]

    def entry(self, srf_id: int) -> SrfEntryView:
        return SrfEntryView(self, srf_id)

    def _reset_entry(self, srf_id: int, owner: int) -> None:
        self.values[srf_id].fill(0)
        self.ready[srf_id].fill(0.0)
        self.valid[srf_id].fill(False)
        self.owners[srf_id] = owner

    def allocate(self, reg: int, taint: TaintTracker) -> int | None:
        """Get an SRF entry for architectural register *reg*.

        Reuses an existing mapping (footnote 1: only one copy of an
        architectural register can be live at once).  On exhaustion, LRU
        policy steals from the least-recently-read mapped register; DVR
        policy fails, leaving *reg* tainted-but-unmapped.
        """
        tentry = taint.entry(reg)
        if tentry.mapped:
            self._reset_entry(tentry.srf_id, reg)
            return tentry.srf_id
        if self._free:
            srf_id = self._free.pop()
            self._reset_entry(srf_id, reg)
            self.allocations += 1
            return srf_id
        if self._policy is RecyclingPolicy.DVR:
            self.allocation_failures += 1
            return None
        victim_reg = taint.lru_victim()
        if victim_reg is None:
            self.allocation_failures += 1
            return None
        srf_id = taint.srf_of(victim_reg)
        taint.unmap(victim_reg)
        self._reset_entry(srf_id, reg)
        self.recycles += 1
        return srf_id

    def release(self, srf_id: int) -> None:
        self.owners[srf_id] = -1
        self.valid[srf_id].fill(False)
        if srf_id not in self._free:
            self._free.append(srf_id)

    def release_all(self) -> None:
        self.owners.fill(-1)
        # Invalidate every lane: a reused entry must never expose a stale
        # valid=True lane if any read bypasses the allocate-time reset.
        self.valid.fill(False)
        self._free = list(range(self.num_entries))

    # -- scalar per-lane access (fallback path) -----------------------------

    def write_lane(self, srf_id: int, lane: int, value: int,
                   ready: float) -> None:
        self.values[srf_id, lane] = value
        self.ready[srf_id, lane] = ready
        self.valid[srf_id, lane] = True

    def read_lane(self, srf_id: int, lane: int) -> tuple[int, float, bool]:
        return (self.values.item(srf_id * self._lanes + lane),
                self.ready.item(srf_id * self._lanes + lane),
                self.valid.item(srf_id * self._lanes + lane))

    # -- batched lane access (SoA path) -------------------------------------

    def write_lanes(self, srf_id: int, lanes: np.ndarray, values: np.ndarray,
                    ready: np.ndarray) -> None:
        """Write a lane vector in one shot (lanes is an index array)."""
        self.values[srf_id, lanes] = values
        self.ready[srf_id, lanes] = ready
        self.valid[srf_id, lanes] = True

    def read_lanes(self, srf_id: int,
                   lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
        """Values, ready times and valid bits for a lane-index vector."""
        return (self.values[srf_id, lanes], self.ready[srf_id, lanes],
                self.valid[srf_id, lanes])
