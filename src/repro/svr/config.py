"""SVR configuration knobs.

Defaults follow the paper: vector length N = 16, K = 8 speculative
registers, 32 stride-detector entries, 256-instruction PRM timeout,
tournament loop-bound prediction, waiting mode on, LRU register recycling.
The ablation studies of Section VI-D and Figs 15-16 are all expressed as
deviations from these defaults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LoopBoundPolicy(enum.Enum):
    """Vector-length throttling policies evaluated in Fig 15."""

    MAXLENGTH = "maxlength"          # always issue N lanes
    LBD_WAIT = "lbd+wait"            # DVR-style: wait one iteration for LBD
    LBD_MAXLENGTH = "lbd+maxlength"  # LBD when trained, else N
    LBD_CV = "lbd+cv"                # LBD with current-value scavenging
    EWMA = "ewma"                    # history average only
    TOURNAMENT = "tournament"        # 2-bit chooser between EWMA and LBD+CV


class RecyclingPolicy(enum.Enum):
    """SRF allocation policy (Section VI-D, Register Recycling)."""

    LRU = "lru"    # SVR: steal the least-recently-read mapped register
    DVR = "dvr"    # DVR-style renaming: never steal a live mapping


@dataclass
class SVRConfig:
    """All SVR knobs; see DESIGN.md for the figure each one drives."""

    vector_length: int = 16           # N — SVR8..SVR128 in the figures
    srf_entries: int = 8              # K
    stride_detector_entries: int = 32
    stride_confidence_threshold: int = 2
    timeout_instructions: int = 256   # PRM instruction timeout
    ewma_cap: int = 512               # iteration-counter cap before forced update
    policy: LoopBoundPolicy = LoopBoundPolicy.TOURNAMENT
    recycling: RecyclingPolicy = RecyclingPolicy.LRU
    waiting_mode: bool = True         # Section IV-A5 (ablated in VI-D)
    # Lane execution engine for SVI rounds (repro.svr.lanes):
    #   'auto'   — batched SoA rounds where the static VectorizationPlan
    #              proves it legal (BATCHABLE / BATCHABLE_WITH_GUARD),
    #              per-lane scalar loops otherwise;
    #   'soa'    — force batched rounds regardless of the plan (the
    #              kernels are exact, so this is safe; used by benchmarks
    #              and the equivalence suite);
    #   'scalar' — force the per-lane loops everywhere (the reference
    #              path the SoA engine is gated against).
    lane_engine: str = "auto"
    scalars_per_unit: int = 1         # Fig 16: lanes per execute slot
    # Ablation (Section VI-D, Lockstep Coupling): give SVIs a free second
    # issue context (DVR-style decoupling) instead of sharing the main
    # thread's issue slots.  Infeasible hardware on a little core — used
    # only to quantify what lockstep coupling costs.
    decoupled_context: bool = False
    register_copy_cost_cycles: float = 0.0   # Section VI-D lockstep-coupling cost
    # Accuracy monitor (Section IV-A7).  The paper resets every 1M
    # instructions in 200M windows; we keep the same 1:200 proportion for
    # our scaled-down windows via the runner.
    accuracy_enabled: bool = True
    accuracy_threshold: float = 0.5
    accuracy_warmup_events: int = 100
    accuracy_reset_interval: int = 50_000

    def __post_init__(self) -> None:
        if self.vector_length < 1:
            raise ValueError(
                f"SVRConfig.vector_length must be >= 1, got "
                f"{self.vector_length}")
        if self.srf_entries < 1:
            raise ValueError(
                f"SVRConfig.srf_entries must be >= 1, got "
                f"{self.srf_entries}")
        if self.stride_detector_entries < 1:
            raise ValueError(
                f"SVRConfig.stride_detector_entries must be >= 1, got "
                f"{self.stride_detector_entries}")
        if self.stride_confidence_threshold < 1:
            raise ValueError(
                f"SVRConfig.stride_confidence_threshold must be >= 1, got "
                f"{self.stride_confidence_threshold}")
        if self.timeout_instructions <= 0:
            raise ValueError(
                f"SVRConfig.timeout_instructions must be > 0, got "
                f"{self.timeout_instructions}")
        if self.ewma_cap < 1:
            raise ValueError(
                f"SVRConfig.ewma_cap must be >= 1, got {self.ewma_cap}")
        if self.lane_engine not in ("auto", "soa", "scalar"):
            raise ValueError(
                f"SVRConfig.lane_engine must be 'auto', 'soa' or 'scalar', "
                f"got {self.lane_engine!r}")
        if self.scalars_per_unit < 1:
            raise ValueError(
                f"SVRConfig.scalars_per_unit must be >= 1, got "
                f"{self.scalars_per_unit}")
        if self.register_copy_cost_cycles < 0:
            raise ValueError(
                f"SVRConfig.register_copy_cost_cycles must be >= 0, got "
                f"{self.register_copy_cost_cycles}")
        if not 0.0 <= self.accuracy_threshold <= 1.0:
            raise ValueError(
                f"SVRConfig.accuracy_threshold must be in [0, 1], got "
                f"{self.accuracy_threshold}")
        if self.accuracy_warmup_events < 0:
            raise ValueError(
                f"SVRConfig.accuracy_warmup_events must be >= 0, got "
                f"{self.accuracy_warmup_events}")
        if self.accuracy_reset_interval < 1:
            raise ValueError(
                f"SVRConfig.accuracy_reset_interval must be >= 1, got "
                f"{self.accuracy_reset_interval}")
