"""Hardware-overhead accounting — Table II, plus the Table I feature matrix.

``overhead_bits(n, k)`` reproduces the paper's bit-level budget exactly:
17,738 bits (2.17 KiB) for the default N=16, K=8 configuration, growing to
~9 KiB at N=128 as the SRF dominates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class OverheadBreakdown:
    """Bits per structure, mirroring the rows of Table II."""

    stride_detector: int
    taint_tracker: int
    hslr: int
    srf: int
    lc: int
    lbd: int
    scoreboard: int
    l1_prefetch_tags: int

    @property
    def total_bits(self) -> int:
        return (self.stride_detector + self.taint_tracker + self.hslr
                + self.srf + self.lc + self.lbd + self.scoreboard
                + self.l1_prefetch_tags)

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024


def overhead_breakdown(
    n: int = 16,
    k: int = 8,
    *,
    sd_entries: int = 32,
    arch_regs: int = 32,
    lbd_entries: int = 8,
    scoreboard_entries: int = 32,
    l1_lines: int = 1024,
) -> OverheadBreakdown:
    """Compute SVR state bits for vector length *n* and *k* SRF entries."""
    if n < 1 or k < 1:
        raise ValueError("N and K must be positive")
    # Stride detector entry: 48b PC + 48b LP + 48b prev addr + 1b seen
    # + 8b stride + 16b LIL + 2b stride conf + 2b LIL conf = 173 bits.
    sd_entry = 48 + 48 + 48 + 1 + 8 + 16 + 2 + 2
    # Taint tracker entry: 1b tainted + ceil(log2 K) SRF id + 1b mapped
    # + 8b offset.
    tt_entry = 1 + max(1, math.ceil(math.log2(k))) + 1 + 8
    # HSLR: 48b PC + N mask bits.
    hslr = 48 + n
    # SRF: K vectors of N 64-bit lanes.
    srf = k * n * 64
    # LC: 48b PC + 2 x (64b value + 5b reg id).
    lc = 48 + 2 * (64 + 5)
    # LBD entry: 48b PC + LC copy + 9b EWMA + 16b increment + 9b iteration
    # + 2b tournament.
    lbd_entry = 48 + lc + 9 + 16 + 9 + 2
    # Scoreboard return counters: ceil(log2(N+1)) bits per entry.
    sb_entry = math.ceil(math.log2(n + 1))
    return OverheadBreakdown(
        stride_detector=sd_entries * sd_entry,
        taint_tracker=arch_regs * tt_entry,
        hslr=hslr,
        srf=srf,
        lc=lc,
        lbd=lbd_entries * lbd_entry,
        scoreboard=scoreboard_entries * sb_entry,
        l1_prefetch_tags=l1_lines,
    )


def overhead_bits(n: int = 16, k: int = 8, **kwargs) -> int:
    """Total SVR state in bits (Table II: 17,738 for N=16, K=8)."""
    return overhead_breakdown(n, k, **kwargs).total_bits


def overhead_kib(n: int = 16, k: int = 8, **kwargs) -> float:
    """Total SVR state in KiB (Table II: 2.17 KiB for N=16, K=8)."""
    return overhead_breakdown(n, k, **kwargs).total_kib


def feature_matrix() -> dict[str, dict[str, bool]]:
    """Table I: the qualitative VR / DVR / SVR comparison."""
    return {
        "Based on existing vector ISAs": {"VR": True, "DVR": True, "SVR": False},
        "Relies on existing vector registers": {"VR": True, "DVR": True, "SVR": False},
        "Optimizes vector-register usage": {"VR": False, "DVR": False, "SVR": True},
        "Stalls the main thread": {"VR": True, "DVR": False, "SVR": False},
        "Runahead synchronous with main thread": {"VR": False, "DVR": False, "SVR": True},
        "Mitigates incorrect prefetches": {"VR": False, "DVR": True, "SVR": True},
        "Needs a discovery pass": {"VR": False, "DVR": True, "SVR": False},
    }
