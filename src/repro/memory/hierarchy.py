"""The timed memory hierarchy: L1-D + L2 + DRAM + TLB + prefetchers.

This is the component every core model talks to.  It is event-driven: an
access at simulated time *t* returns an :class:`AccessOutcome` whose
``completion`` accounts for cache latencies, MSHR occupancy, DRAM bandwidth
and latency, and TLB walks.  Lines are inserted eagerly at miss time with
their availability recorded in a pending map, which later accesses to the
same line observe (miss merging / hit-under-fill).

Prefetch-tag bookkeeping for the accuracy metric of Fig 13a lives here: a
line brought in by any prefetcher is *useful* on its first demand touch and
*useless* if the L2 evicts it untouched.  A listener (SVR's accuracy
monitor) can subscribe to these events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import AccessOutcome, Cache, MshrPool
from repro.memory.dram import DramModel
from repro.memory.imp import IndirectMemoryPrefetcher
from repro.memory.stride_prefetcher import StridePrefetcher
from repro.memory.tlb import TlbHierarchy
from repro.obs.probes import default_bus

PREFETCH_ORIGINS = ("stride", "imp", "svr", "vr")

# Expired `_pending` entries are swept every this-many accesses (and at a
# 4096-entry high-water mark), so long runs never carry thousands of dead
# in-flight records that every L1 hit would otherwise probe.
_PURGE_INTERVAL = 2048
# Opportunistic sweeps only drop entries expired by more than this margin.
# Access times are not monotonic (prefetches run at future completion
# times), so an entry merely past its completion could still be merged by a
# later-arriving access carrying an earlier timestamp; one that has been
# dead for 64k cycles cannot, as no in-flight skew approaches that.
_PURGE_MARGIN = 1 << 16


@dataclass
class MemoryConfig:
    """Knobs for the hierarchy; defaults follow Table III."""

    line_bytes: int = 64
    l1_size: int = 64 << 10
    l1_assoc: int = 4
    l1_latency: float = 2.0
    l1_mshrs: int = 16
    l2_size: int = 512 << 10
    l2_assoc: int = 8
    l2_latency: float = 12.0
    dram_latency_ns: float = 45.0
    dram_bandwidth_gbps: float = 50.0
    frequency_ghz: float = 2.0
    dtlb_entries: int = 16
    stlb_entries: int = 2048
    page_table_walkers: int = 4
    stride_prefetcher: bool = True
    stride_degree: int = 2
    imp_prefetcher: bool = False
    imp_degree: int = 16


@dataclass
class HierarchyStats:
    """Aggregate counters used by the figures and the energy model."""

    loads: int = 0
    stores: int = 0
    l1_load_hits: int = 0
    l2_load_hits: int = 0
    dram_loads: int = 0
    prefetches_issued: dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in PREFETCH_ORIGINS})
    prefetches_dropped: dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in PREFETCH_ORIGINS})
    prefetch_useful: dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in PREFETCH_ORIGINS})
    prefetch_useless: dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in PREFETCH_ORIGINS})
    dram_fetches: dict[str, int] = field(
        default_factory=lambda: {"demand": 0, "stride": 0, "imp": 0,
                                 "svr": 0, "vr": 0})
    writebacks: int = 0

    def accuracy(self, origin: str) -> float:
        """Useful / (useful + useless) for one prefetch origin."""
        useful = self.prefetch_useful[origin]
        useless = self.prefetch_useless[origin]
        total = useful + useless
        return useful / total if total else 1.0


class PrefetcherHook:
    """Adapter protocol for prefetchers attached to the hierarchy.

    Subclasses observe every committed demand load and return byte
    addresses to prefetch.  ``origin`` must be in
    :data:`PREFETCH_ORIGINS`; ``needs_value`` requests the loaded value
    (the hierarchy reads functional memory only when some hook wants it).
    """

    origin = "stride"
    drop_on_full = True
    needs_value = False

    def observe_load(self, pc: int, addr: int, value: int | None,
                     level: str):
        """Return an iterable of byte addresses to prefetch."""
        raise NotImplementedError


class _StrideHook(PrefetcherHook):
    origin = "stride"

    def __init__(self, prefetcher: StridePrefetcher) -> None:
        self.prefetcher = prefetcher

    def observe_load(self, pc, addr, value, level):
        return self.prefetcher.train(pc, addr)


class _ImpHook(PrefetcherHook):
    origin = "imp"
    needs_value = True

    def __init__(self, prefetcher: IndirectMemoryPrefetcher) -> None:
        self.prefetcher = prefetcher

    def observe_load(self, pc, addr, value, level):
        return self.prefetcher.observe_load(pc, addr, value,
                                            missed=level != "l1")


class MemoryHierarchy:
    """Timed L1/L2/DRAM with MSHRs, TLBs and attached prefetchers."""

    def __init__(self, memory, config: MemoryConfig | None = None,
                 bus=None) -> None:
        self.config = config or MemoryConfig()
        cfg = self.config
        self.memory = memory
        self.bus = bus if bus is not None else default_bus()
        self._p_load = self.bus.probe("mem.load")
        self._p_store = self.bus.probe("mem.store")
        self._p_prefetch = self.bus.probe("mem.prefetch")
        self._p_useful = self.bus.probe("mem.pf_useful")
        self._p_useless = self.bus.probe("mem.pf_useless")
        self.l1 = Cache("L1-D", cfg.l1_size, cfg.l1_assoc, cfg.line_bytes)
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, cfg.line_bytes)
        self.mshrs = MshrPool(cfg.l1_mshrs)
        self.dram = DramModel(cfg.dram_latency_ns, cfg.dram_bandwidth_gbps,
                              cfg.frequency_ghz, cfg.line_bytes)
        self.dram.probe = self.bus.probe("dram.access")
        self.tlb = TlbHierarchy(self.dram, cfg.dtlb_entries,
                                cfg.stlb_entries, cfg.page_table_walkers)
        self.tlb.probe_walk = self.bus.probe("tlb.walk")
        self.stride_pf = (StridePrefetcher(degree=cfg.stride_degree,
                                           line_bytes=cfg.line_bytes)
                          if cfg.stride_prefetcher else None)
        self.imp = (IndirectMemoryPrefetcher(memory, degree=cfg.imp_degree,
                                             line_bytes=cfg.line_bytes)
                    if cfg.imp_prefetcher else None)
        self._hooks: list[PrefetcherHook] = []
        if self.stride_pf is not None:
            self._hooks.append(_StrideHook(self.stride_pf))
        if self.imp is not None:
            self._hooks.append(_ImpHook(self.imp))
        self.stats = HierarchyStats()
        self.accuracy_listener = None  # SVR monitor hooks in here.
        # line -> (completion time, level string) for in-flight fills
        self._pending: dict[int, tuple[float, str]] = {}
        # line -> origin, for prefetched-but-unused lines
        self._pf_outstanding: dict[int, str] = {}
        # Hot-path caches: per-access attribute chains hoisted once.
        self._line_bytes = cfg.line_bytes
        self._purge_countdown = _PURGE_INTERVAL
        self._hooks_need_value = any(h.needs_value for h in self._hooks)

    def attach_prefetcher(self, hook: PrefetcherHook) -> None:
        """Attach a user-defined :class:`PrefetcherHook` (plug-in API)."""
        if hook.origin not in PREFETCH_ORIGINS:
            raise ValueError(f"unknown prefetch origin: {hook.origin!r}")
        self._hooks.append(hook)
        self._hooks_need_value = any(h.needs_value for h in self._hooks)

    def reset_stats(self) -> None:
        """Start a fresh measurement window; cache/TLB *state* is kept."""
        self.stats = HierarchyStats()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.dram.reset_stats()

    # -- internals ------------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def _record_pf_touch(self, line: int, outcome: AccessOutcome) -> None:
        origin = self._pf_outstanding.pop(line, None)
        if origin is not None:
            self.stats.prefetch_useful[origin] += 1
            outcome.prefetch_hit = True
            if self._p_useful.enabled:
                self._p_useful.emit(origin=origin, line=line)
            if self.accuracy_listener is not None:
                self.accuracy_listener.on_useful(origin)

    def _evict_from_l2(self, victim_line: int, meta, time: float) -> None:
        if meta.dirty:
            self.stats.writebacks += 1
            self.dram.access(time)  # writeback occupies bandwidth only
        origin = self._pf_outstanding.pop(victim_line, None)
        if origin is not None:
            self.stats.prefetch_useless[origin] += 1
            if self._p_useless.enabled:
                self._p_useless.emit(origin=origin, line=victim_line)
            if self.accuracy_listener is not None:
                self.accuracy_listener.on_useless(origin)

    def _purge_pending(self, now: float) -> None:
        """Sweep expired in-flight entries.

        Called from :meth:`_access` on a countdown cadence (every
        ``_PURGE_INTERVAL`` accesses) and whenever the map crosses the
        4096-entry high-water mark; the per-access cost is one decrement
        and compare.  Cadence sweeps apply the ``_PURGE_MARGIN`` safety
        margin; the high-water sweep drops everything expired, exactly as
        the pre-cadence implementation did.
        """
        pending = self._pending
        cutoff = now if len(pending) > 4096 else now - _PURGE_MARGIN
        expired = [ln for ln, (t, _) in pending.items() if t <= cutoff]
        for ln in expired:
            del pending[ln]
        self._purge_countdown = _PURGE_INTERVAL

    def _fill(self, line: int, time: float, *, dirty: bool, prefetched: bool,
              origin: str) -> tuple[float, str]:
        """Walk L2 then DRAM for *line*; insert into both levels.

        Returns ``(completion, level)`` where *level* names the satisfying
        level ('l2' or 'dram').
        """
        cfg = self.config
        l2_meta = self.l2.lookup(line)
        if l2_meta is not None:
            completion = time + cfg.l1_latency + cfg.l2_latency
            level = "l2"
            if dirty:
                l2_meta.dirty = True
        else:
            completion = self.dram.access(time + cfg.l1_latency + cfg.l2_latency)
            level = "dram"
            key = origin if prefetched else "demand"
            self.stats.dram_fetches[key] += 1
            victim = self.l2.insert(line, dirty=dirty, prefetched=prefetched,
                                    origin=origin)
            if victim is not None:
                self._evict_from_l2(victim[0], victim[1], completion)
        victim = self.l1.insert(line, dirty=dirty, prefetched=prefetched,
                                origin=origin)
        # L1 evictions write back into L2 (non-inclusive victim traffic).
        # The victim keeps its prefetch tag so an untouched prefetched line
        # still gets charged as useless when the L2 finally drops it.
        if victim is not None and victim[1].dirty:
            victim_meta = victim[1]
            l2_victim = self.l2.insert(victim[0], dirty=True,
                                       prefetched=victim_meta.prefetched,
                                       origin=victim_meta.origin)
            if l2_victim is not None:
                self._evict_from_l2(l2_victim[0], l2_victim[1], completion)
        return completion, level

    def _access(self, addr: int, time: float, pc: int, *, is_store: bool,
                prefetched: bool, origin: str,
                drop_on_full: bool) -> AccessOutcome | None:
        cfg = self.config
        line = addr // self._line_bytes
        self._purge_countdown -= 1
        if self._purge_countdown <= 0 or len(self._pending) > 4096:
            self._purge_pending(time)

        ready = self.tlb.translate(addr, time)
        meta = self.l1.lookup(line)
        if meta is not None:
            outcome = AccessOutcome(ready + cfg.l1_latency, "l1")
            pending = self._pending.get(line)
            if pending is not None:
                completion, level = pending
                if completion > outcome.completion:
                    # Line is in flight: merge with the outstanding miss.
                    outcome = AccessOutcome(completion, level)
                else:
                    del self._pending[line]
            if not prefetched and self._pf_outstanding:
                self._record_pf_touch(line, outcome)
            if is_store:
                self.l1.mark_dirty(line)
            return outcome

        # L1 miss.  Prefetches may be dropped rather than queue for MSHRs.
        if prefetched and drop_on_full and self.mshrs.would_block(ready):
            self.stats.prefetches_dropped[origin] += 1
            return None
        slot, start = self.mshrs.allocate(ready)
        completion, level = self._fill(line, start, dirty=is_store,
                                       prefetched=prefetched, origin=origin)
        self.mshrs.release(slot, completion)
        self._pending[line] = (completion, level)
        outcome = AccessOutcome(completion, level)
        if prefetched:
            # First prefetch wins: a second prefetcher requesting an
            # already-outstanding line must not steal the accuracy credit.
            self._pf_outstanding.setdefault(line, origin)
        elif self._pf_outstanding:
            self._record_pf_touch(line, outcome)
        return outcome

    # -- public API -------------------------------------------------------------

    def load(self, addr: int, time: float, pc: int) -> AccessOutcome:
        """Timed demand load; trains the attached prefetchers."""
        self.stats.loads += 1
        outcome = self._access(addr, time, pc, is_store=False,
                               prefetched=False, origin="", drop_on_full=False)
        assert outcome is not None
        if outcome.level == "l1":
            self.stats.l1_load_hits += 1
        elif outcome.level == "l2":
            self.stats.l2_load_hits += 1
        else:
            self.stats.dram_loads += 1
        if self._p_load.enabled:
            self._p_load.emit(addr=addr, pc=pc, time=time,
                              level=outcome.level,
                              completion=outcome.completion,
                              latency=outcome.completion - time)

        if self._hooks:
            value = None
            if self._hooks_need_value:
                value = self.memory.read_word(addr)
            for hook in self._hooks:
                for target in hook.observe_load(pc, addr, value,
                                                outcome.level):
                    self.prefetch(target, outcome.completion, hook.origin,
                                  drop_on_full=hook.drop_on_full)
        return outcome

    def store(self, addr: int, time: float, pc: int) -> AccessOutcome:
        """Timed store (write-allocate); the cores treat these as buffered."""
        self.stats.stores += 1
        outcome = self._access(addr, time, pc, is_store=True,
                               prefetched=False, origin="", drop_on_full=False)
        assert outcome is not None
        if self._p_store.enabled:
            self._p_store.emit(addr=addr, pc=pc, time=time,
                               level=outcome.level,
                               completion=outcome.completion,
                               latency=outcome.completion - time)
        return outcome

    def prefetch(self, addr: int, time: float, origin: str,
                 drop_on_full: bool = True) -> float | None:
        """Issue a prefetch; returns completion time or None if dropped.

        SVR passes ``drop_on_full=False`` — its transient loads wait for an
        MSHR like real loads, which is what makes the Fig 17 MSHR sweep
        bite.
        """
        if origin not in PREFETCH_ORIGINS:
            raise ValueError(f"unknown prefetch origin: {origin}")
        self.stats.prefetches_issued[origin] += 1
        outcome = self._access(addr, time, 0, is_store=False, prefetched=True,
                               origin=origin, drop_on_full=drop_on_full)
        if self._p_prefetch.enabled:
            self._p_prefetch.emit(
                addr=addr, origin=origin, time=time,
                dropped=outcome is None,
                completion=None if outcome is None else outcome.completion)
        return None if outcome is None else outcome.completion
