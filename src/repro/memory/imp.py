"""IMP — the Indirect Memory Prefetcher of Yu et al. (MICRO 2015) [60].

IMP is the paper's main prefetcher baseline (Figs 1, 11-13).  It piggybacks
on a stride stream ``A[i]`` and tries to learn a *linear* indirect pattern

    indirect_addr = base + (A[i] << shift)

by correlating the values loaded by the stride stream with the addresses of
subsequent cache misses.  Once confident, every new stride access triggers
prefetches for the next ``degree`` indirect targets, reading the future
index values straight from the (already prefetched) index cache lines.

Faithful consequences the evaluation relies on:

* hashed or masked indices (HashJoin, Kangaroo, randacc) never satisfy the
  linear hypothesis, so IMP stays silent — matching the paper's "IMP fails"
  workloads;
* IMP has no loop-bound information, so it always runs ``degree`` elements
  past inner-loop boundaries — the over-fetch visible in Fig 13;
* each stride access re-requests the next window, costing redundant
  prefetch issues (energy) even when the lines are already resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Element-size coefficients IMP can learn (powers of two up to a cache
# line, per the IMP paper's shift-based coefficient matching).
_SHIFT_CANDIDATES = (0, 1, 2, 3, 4, 5, 6)


@dataclass
class _IndirectPattern:
    shift: int
    base: int
    confidence: int = 0


@dataclass
class _StreamEntry:
    """State for one striding load PC."""

    prev_addr: int
    stride: int = 0
    confidence: int = 0
    recent_values: list[int] = field(default_factory=list)
    # hypothesis per shift: candidate base address awaiting confirmation
    hypotheses: dict[int, int] = field(default_factory=dict)
    pattern: _IndirectPattern | None = None


class IndirectMemoryPrefetcher:
    """IMP model: stride stream detection + indirect pattern table."""

    CONFIDENCE_THRESHOLD = 2
    STRIDE_THRESHOLD = 2
    MAX_RECENT = 4

    def __init__(self, memory, table_entries: int = 16, degree: int = 16,
                 line_bytes: int = 64) -> None:
        self._memory = memory
        self._streams: dict[int, _StreamEntry] = {}
        self._entries = table_entries
        self.degree = degree
        self.line_bytes = line_bytes
        self.issued = 0
        self.patterns_learned = 0

    # -- training -----------------------------------------------------------

    def observe_load(self, pc: int, addr: int, value: int,
                     missed: bool) -> list[int]:
        """Observe a committed load; return byte addresses to prefetch.

        Stride loads train/advance their stream; other (potentially
        indirect) loads are correlated against recent stream values.
        """
        entry = self._streams.get(pc)
        if entry is not None:
            requests = self._advance_stream(entry, addr, value)
            if entry.confidence < self.STRIDE_THRESHOLD and missed:
                # Not (or no longer) a stride stream: this may be the
                # indirect consumer of another stream's values.
                self._correlate(addr)
            return requests
        # First sighting: try correlating against confident streams, then
        # start tracking this PC as a potential stream of its own.
        if missed:
            self._correlate(addr)
        if len(self._streams) >= self._entries:
            del self._streams[next(iter(self._streams))]
        self._streams[pc] = _StreamEntry(prev_addr=addr)
        return []

    def _advance_stream(self, entry: _StreamEntry, addr: int,
                        value: int) -> list[int]:
        stride = addr - entry.prev_addr
        entry.prev_addr = addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.stride = stride
            entry.confidence = max(0, entry.confidence - 1)
            entry.recent_values.clear()
            return []
        if entry.confidence < self.STRIDE_THRESHOLD:
            return []
        entry.recent_values.append(value)
        if len(entry.recent_values) > self.MAX_RECENT:
            entry.recent_values.pop(0)
        if entry.pattern is None or entry.pattern.confidence < self.CONFIDENCE_THRESHOLD:
            return []
        return self._generate(entry, addr)

    def _correlate(self, miss_addr: int) -> None:
        """Try to explain *miss_addr* as base + (value << shift)."""
        for entry in self._streams.values():
            if entry.confidence < self.STRIDE_THRESHOLD or not entry.recent_values:
                continue
            value = entry.recent_values[-1]
            for shift in _SHIFT_CANDIDATES:
                base = miss_addr - (value << shift)
                if base < 0:
                    continue
                pattern = entry.pattern
                if (pattern is not None and pattern.shift == shift
                        and pattern.base == base):
                    pattern.confidence = min(3, pattern.confidence + 1)
                    if pattern.confidence == self.CONFIDENCE_THRESHOLD:
                        self.patterns_learned += 1
                    return
                if entry.hypotheses.get(shift) == base:
                    entry.pattern = _IndirectPattern(shift, base, confidence=1)
                    return
                entry.hypotheses[shift] = base

    # -- generation -----------------------------------------------------------

    def _generate(self, entry: _StreamEntry, addr: int) -> list[int]:
        """Prefetch the next ``degree`` indirect targets past *addr*.

        IMP reads future index values from memory (in hardware, from the
        prefetched index lines); with no loop-bound knowledge it simply
        marches ``degree`` elements ahead.
        """
        pattern = entry.pattern
        assert pattern is not None
        requests = []
        for d in range(1, self.degree + 1):
            index_addr = addr + d * entry.stride
            try:
                value = self._memory.read_word(index_addr)
            except IndexError:
                break
            requests.append(index_addr)
            requests.append(pattern.base + (value << pattern.shift))
        self.issued += len(requests)
        return requests
