"""Functional main memory and a bump-pointer allocator.

The simulator keeps program data in a flat, word-addressed numpy array.
Addresses are byte addresses; loads and stores move aligned 8-byte words
(the mini-ISA has no sub-word accesses).  Workload builders allocate arrays
through :meth:`MainMemory.alloc_array` and get back base byte addresses to
pass into kernels via registers.
"""

from __future__ import annotations

import numpy as np

_WORD = 8
_MASK64 = (1 << 64) - 1


class MainMemory:
    """Flat functional memory.

    ``capacity_bytes`` bounds the footprint of a workload; the default
    (64 MiB) is far larger than any of the scaled-down inputs need.
    Allocation starts at ``base`` so that address 0 stays unmapped, which
    catches uninitialised-pointer bugs in hand-written kernels.
    """

    def __init__(self, capacity_bytes: int = 64 << 20, base: int = 0x1_0000) -> None:
        if capacity_bytes % _WORD:
            raise ValueError("capacity must be a multiple of 8 bytes")
        self._words = np.zeros(capacity_bytes // _WORD, dtype=np.uint64)
        self._num_words = capacity_bytes // _WORD
        self._capacity = capacity_bytes
        self._base = base
        self._brk = base
        self._allocations: dict[str, tuple[int, int]] = {}

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    # -- functional access --------------------------------------------------

    @property
    def words(self) -> np.ndarray:
        """The backing word array (uint64), for vectorized lane gathers.

        Treat as read-only: writes must go through :meth:`write_word` /
        :meth:`write_array` so wrapping stays uniform.
        """
        return self._words

    def read_word(self, addr: int) -> int:
        index = (addr & _MASK64) >> 3
        if index >= self._num_words:
            raise IndexError(f"load outside simulated memory: {addr:#x}")
        # .item() skips the numpy-scalar round trip of `int(arr[i])`.
        return self._words.item(index)

    def write_word(self, addr: int, value: int) -> None:
        index = (addr & _MASK64) >> 3
        if index >= self._num_words:
            raise IndexError(f"store outside simulated memory: {addr:#x}")
        self._words[index] = value & _MASK64

    # -- allocation -----------------------------------------------------------

    def alloc(self, nbytes: int, name: str = "", align: int = 64) -> int:
        """Reserve *nbytes* and return the base byte address.

        Allocations are cache-line aligned by default so arrays never share
        lines, keeping prefetch accuracy accounting clean.
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        addr = (self._brk + align - 1) // align * align
        if addr + nbytes > self._capacity:
            raise MemoryError(
                f"workload footprint exceeds {self._capacity >> 20} MiB"
            )
        self._brk = addr + nbytes
        if name:
            self._allocations[name] = (addr, nbytes)
        return addr

    def alloc_array(self, values, name: str = "") -> int:
        """Copy an iterable/ndarray of 64-bit values into memory.

        Returns the base address.  Values are wrapped to uint64.
        """
        data = np.asarray(values, dtype=np.int64).astype(np.uint64)
        addr = self.alloc(int(data.size) * _WORD, name=name)
        start = addr >> 3
        self._words[start:start + data.size] = data
        return addr

    def alloc_zeros(self, count: int, name: str = "") -> int:
        """Allocate *count* zeroed 64-bit words and return the base address."""
        return self.alloc(count * _WORD, name=name)

    def write_array(self, addr: int, values) -> None:
        """Bulk-write 64-bit values starting at *addr* (initialisation)."""
        data = np.asarray(values, dtype=np.int64).astype(np.uint64)
        start = addr >> 3
        if start + data.size > self._words.shape[0]:
            raise IndexError("bulk write outside simulated memory")
        self._words[start:start + data.size] = data

    def read_array(self, addr: int, count: int) -> np.ndarray:
        """Read *count* words starting at *addr* as an int64 ndarray."""
        start = addr >> 3
        return self._words[start:start + count].astype(np.int64)

    def allocation(self, name: str) -> tuple[int, int]:
        """Return ``(base_address, nbytes)`` of a named allocation."""
        return self._allocations[name]

    @property
    def footprint_bytes(self) -> int:
        """Bytes allocated so far."""
        return self._brk - self._base
