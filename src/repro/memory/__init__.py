"""Memory-system substrate: functional memory, caches, DRAM, TLBs, prefetchers.

Everything the paper's Sniper configuration provides (Table III) is built
here from scratch: a two-level cache hierarchy with MSHRs and per-line
prefetch tags, a bandwidth/latency DRAM model, TLBs with a page-table-walker
pool, the baseline L1 stride prefetcher, and the IMP comparison prefetcher.
"""

from repro.memory.main_memory import MainMemory
from repro.memory.dram import DramModel
from repro.memory.cache import Cache, AccessOutcome
from repro.memory.tlb import TlbHierarchy
from repro.memory.stride_prefetcher import StridePrefetcher
from repro.memory.imp import IndirectMemoryPrefetcher
from repro.memory.hierarchy import MemoryHierarchy, MemoryConfig

__all__ = [
    "AccessOutcome",
    "Cache",
    "DramModel",
    "IndirectMemoryPrefetcher",
    "MainMemory",
    "MemoryConfig",
    "MemoryHierarchy",
    "StridePrefetcher",
    "TlbHierarchy",
]
