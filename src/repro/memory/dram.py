"""DRAM timing model: fixed access latency plus a bandwidth constraint.

Table III: 45 ns latency, 50 GiB/s bandwidth at a 2 GHz core clock.  The
memory controller is a single service pipe: each 64-byte line transfer
occupies the pipe for ``line_bytes / bytes_per_cycle`` cycles, and a
request completes ``latency_cycles`` after it wins the pipe.  This is the
abstraction the Fig 18 bandwidth sweep varies.

Requests do not arrive in timestamp order (a page walk issued at t=20 can
reach the model after a line fill reserved t=124), so the pipe is tracked
as a pruned list of busy intervals rather than a single next-free time:
each request is placed in the earliest gap that fits, which keeps early
arrivals from being queued behind later reservations.
"""

from __future__ import annotations

# How far in the past a request may arrive relative to the newest
# reservation; intervals older than this are pruned.  Arrival skew is
# bounded by one DRAM round trip (~110 cycles), so 2k cycles is generous.
_PRUNE_HORIZON = 2048.0


class DramModel:
    """Latency + bandwidth DRAM model.

    Parameters
    ----------
    latency_ns:
        Idle (unloaded) access latency.
    bandwidth_gbps:
        Peak bandwidth in GiB/s.
    frequency_ghz:
        Core clock, used to convert to cycles.
    line_bytes:
        Transfer granule (cache-line size).
    """

    def __init__(
        self,
        latency_ns: float = 45.0,
        bandwidth_gbps: float = 50.0,
        frequency_ghz: float = 2.0,
        line_bytes: int = 64,
    ) -> None:
        if bandwidth_gbps <= 0 or latency_ns <= 0:
            raise ValueError("DRAM latency and bandwidth must be positive")
        self.latency_cycles = latency_ns * frequency_ghz
        bytes_per_cycle = bandwidth_gbps * (1 << 30) / (frequency_ghz * 1e9)
        self.cycles_per_line = line_bytes / bytes_per_cycle
        # Sorted, disjoint busy intervals [(start, end), ...].
        self._busy: list[tuple[float, float]] = []
        self._newest = 0.0
        self.accesses = 0
        self.busy_cycles = 0.0
        # Optional obs probe ("dram.access"), wired by the hierarchy.
        self.probe = None

    def _prune(self) -> None:
        cutoff = self._newest - _PRUNE_HORIZON
        if self._busy and self._busy[0][1] < cutoff:
            self._busy = [iv for iv in self._busy if iv[1] >= cutoff]

    def access(self, time: float) -> float:
        """Issue a line fetch at *time*; return its completion time."""
        need = self.cycles_per_line
        start = max(time, 0.0)
        busy = self._busy
        if not busy or start >= busy[-1][1]:
            # Fast path (the overwhelmingly common case): the request lands
            # at or after the newest reservation, so the whole pipe ahead is
            # free — extend the tail interval in place for a back-to-back
            # transfer, or append a fresh one.  Identical placement to the
            # gap scan below, without the scan or the merge rebuild.
            end = start + need
            if busy and start == busy[-1][1]:
                busy[-1] = (busy[-1][0], end)
            else:
                busy.append((start, end))
        else:
            index = 0
            # Find the first gap of length `need` at or after `start`.
            for index, (ivl_start, ivl_end) in enumerate(busy):
                if ivl_end <= start:
                    continue
                if start + need <= ivl_start:
                    break
                start = max(start, ivl_end)
            else:
                index = len(busy)
            end = start + need
            busy.insert(index, (start, end))
            # Merge with neighbours to keep the list short.
            merged: list[tuple[float, float]] = []
            for ivl in busy:
                if merged and ivl[0] <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], ivl[1]))
                else:
                    merged.append(ivl)
            self._busy = merged
        if end > self._newest:
            self._newest = end
        self._prune()
        self.accesses += 1
        self.busy_cycles += need
        completion = start + self.latency_cycles
        if self.probe is not None and self.probe.enabled:
            self.probe.emit(time=time, start=start, completion=completion)
        return completion

    def utilisation(self, elapsed_cycles: float) -> float:
        """Fraction of *elapsed_cycles* the memory pipe was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset_stats(self) -> None:
        self.accesses = 0
        self.busy_cycles = 0.0
