"""Set-associative cache with LRU replacement, MSHRs and prefetch tags.

A :class:`Cache` holds only tags and per-line metadata (data lives in the
functional :class:`~repro.memory.main_memory.MainMemory`).  Each line carries
the two prefetch tags the paper adds to the L1 (Section IV-A7): *prefetched*
(brought in by a prefetch, not yet referenced) and *dirty* for writebacks.

MSHR occupancy is modelled as a pool of busy-until times: allocating an MSHR
at time *t* waits for the earliest-free entry, which is how a 1-MSHR system
serialises misses in the Fig 17 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class AccessOutcome:
    """Result of a timed hierarchy access."""

    completion: float
    level: str                 # 'l1' | 'l2' | 'dram'
    prefetch_hit: bool = False  # first demand touch of a prefetched line


@dataclass(slots=True)
class LineMeta:
    dirty: bool = False
    prefetched: bool = False
    origin: str = ""           # prefetch origin: 'svr' | 'stride' | 'imp'


class Cache:
    """One cache level.

    Parameters mirror Table III (size, 64 B lines, associativity).  The
    latency is charged by the hierarchy, not here; this class only answers
    hit/miss questions and manages replacement.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int = 64) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(f"{name}: size not divisible by assoc*line")
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        # set index -> {tag: LineMeta}, dict order is LRU order (front = LRU).
        self._sets: list[dict[int, LineMeta]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, line_addr: int) -> tuple[dict[int, LineMeta], int]:
        return self._sets[line_addr % self.num_sets], line_addr // self.num_sets

    def lookup(self, line_addr: int, touch: bool = True,
               count_stats: bool = True) -> LineMeta | None:
        """Return the line's metadata if present (LRU-touching it).

        ``count_stats=False`` turns the call into a pure-bookkeeping peek:
        observability and debugging reads must not inflate the hit/miss
        counters the figures are built from (use :meth:`contains` when the
        metadata itself is not needed).
        """
        cache_set = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        meta = cache_set.get(tag)
        if meta is None:
            if count_stats:
                self.misses += 1
            return None
        if count_stats:
            self.hits += 1
        if touch:
            del cache_set[tag]
            cache_set[tag] = meta
        return meta

    def contains(self, line_addr: int) -> bool:
        cache_set, tag = self._locate(line_addr)
        return tag in cache_set

    def insert(self, line_addr: int, *, dirty: bool = False,
               prefetched: bool = False, origin: str = "") -> tuple[int, LineMeta] | None:
        """Fill a line; return ``(victim_line_addr, victim_meta)`` if one
        was evicted, else ``None``.

        Filling a present line merges *all* flags, not just ``dirty``:
        ``dirty`` is OR-merged, and a prefetch landing on a resident
        non-prefetched line sets the prefetch tag with its origin.  A line
        that already carries a prefetch tag keeps its original origin
        (first prefetch wins), mirroring how the hierarchy's
        ``_pf_outstanding`` accounting credits the first prefetcher to
        request a line.  A demand fill (``prefetched=False``) never clears
        a resident prefetch tag — only a demand *touch* does, and that is
        accounted by the hierarchy.
        """
        cache_set = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        meta = cache_set.get(tag)
        if meta is not None:
            del cache_set[tag]
            cache_set[tag] = meta
            if dirty:
                meta.dirty = True
            if prefetched and not meta.prefetched:
                meta.prefetched = True
                meta.origin = origin
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim_tag, victim_meta = next(iter(cache_set.items()))
            del cache_set[victim_tag]
            victim = (victim_tag * self.num_sets + line_addr % self.num_sets,
                      victim_meta)
        cache_set[tag] = LineMeta(dirty=dirty, prefetched=prefetched,
                                  origin=origin)
        return victim

    def mark_dirty(self, line_addr: int) -> None:
        cache_set, tag = self._locate(line_addr)
        meta = cache_set.get(tag)
        if meta is not None:
            meta.dirty = True

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class MshrPool:
    """Miss-status-holding registers as a busy-until pool.

    ``allocate(t)`` blocks (in simulated time) until an entry is free and
    returns the start time; the caller later fixes the entry's release time
    via the returned slot index.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("need at least one MSHR")
        self._free_at = [0.0] * entries
        self.peak_wait = 0.0
        self.full_stalls = 0

    @property
    def entries(self) -> int:
        return len(self._free_at)

    def earliest_free(self) -> float:
        return min(self._free_at)

    def allocate(self, time: float) -> tuple[int, float]:
        """Return ``(slot, start_time)`` for a miss arriving at *time*.

        Slot choice is the earliest-free entry, ties broken by lowest
        index (``list.index`` of the C-level ``min``, which the MSHR tests
        pin — the same slot a linear scan would pick).
        """
        free_at = self._free_at
        earliest = min(free_at)
        slot = free_at.index(earliest)
        if earliest > time:
            self.full_stalls += 1
            wait = earliest - time
            if wait > self.peak_wait:
                self.peak_wait = wait
            return slot, earliest
        return slot, time

    def would_block(self, time: float) -> bool:
        """True if no MSHR is free at *time* (used for drop-on-full)."""
        return self.earliest_free() > time

    def release(self, slot: int, time: float) -> None:
        self._free_at[slot] = time
