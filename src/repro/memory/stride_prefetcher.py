"""Baseline L1 stride prefetcher (reference-prediction-table style).

Table III lists a stride prefetcher on the L1-D for every configuration,
including the plain in-order baseline.  It covers the sequential accesses
(offset/neighbor array walks) but by construction cannot help the indirect
accesses that SVR and IMP target.
"""

from __future__ import annotations


class _Entry:
    __slots__ = ("prev_addr", "stride", "confidence")

    def __init__(self, addr: int) -> None:
        self.prev_addr = addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """PC-indexed reference prediction table (Chen & Baer [17]).

    On a confident stride match it requests ``degree`` lines starting
    ``distance`` strides ahead.  Requests are line addresses; issuing them
    (and dropping them when MSHRs are full) is the hierarchy's job.
    """

    def __init__(self, table_entries: int = 64, degree: int = 2,
                 distance: int = 4, line_bytes: int = 64,
                 confidence_threshold: int = 2) -> None:
        self._table: dict[int, _Entry] = {}
        self._entries = table_entries
        self.degree = degree
        self.distance = distance
        self.line_bytes = line_bytes
        self.threshold = confidence_threshold
        self.issued = 0

    def train(self, pc: int, addr: int) -> list[int]:
        """Observe a demand load; return byte addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self._entries:
                del self._table[next(iter(self._table))]
            self._table[pc] = _Entry(addr)
            return []
        stride = addr - entry.prev_addr
        entry.prev_addr = addr
        if stride == entry.stride and stride != 0:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.stride = stride
            entry.confidence = max(0, entry.confidence - 1)
            return []
        if entry.confidence < self.threshold:
            return []
        requests = []
        seen_lines = set()
        for k in range(self.distance, self.distance + self.degree * 4):
            target = addr + k * stride
            line = target // self.line_bytes
            if line not in seen_lines and line != addr // self.line_bytes:
                seen_lines.add(line)
                requests.append(target)
            if len(requests) >= self.degree:
                break
        self.issued += len(requests)
        return requests
