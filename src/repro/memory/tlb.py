"""TLBs and page-table walkers.

Table III: 16-entry fully-associative D-TLB, 2048-entry S-TLB, and 4 page
table walkers.  A D-TLB miss that hits the S-TLB costs a small refill
penalty; a full miss occupies one walker for the duration of a two-level
walk whose accesses go through the shared DRAM model (so heavy TLB-missing
workloads, e.g. randacc, contend for walkers exactly as in the Fig 17
PTW sweep).
"""

from __future__ import annotations

PAGE_BYTES = 4096


class _FifoTlb:
    """Fully-associative TLB with LRU replacement (dict-ordered)."""

    def __init__(self, entries: int) -> None:
        self._entries = entries
        self._pages: dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, page: int) -> None:
        if page in self._pages:
            del self._pages[page]
        elif len(self._pages) >= self._entries:
            del self._pages[next(iter(self._pages))]
        self._pages[page] = None


class TlbHierarchy:
    """D-TLB + S-TLB + PTW pool; returns translation-ready times."""

    STLB_HIT_CYCLES = 6.0      # refill from the second-level TLB
    WALK_CACHED_CYCLES = 20.0  # page-table accesses that hit on-chip

    def __init__(self, dram, dtlb_entries: int = 16, stlb_entries: int = 2048,
                 walkers: int = 4) -> None:
        self._dtlb = _FifoTlb(dtlb_entries)
        self._stlb = _FifoTlb(stlb_entries)
        self._dram = dram
        self._walker_free = [0.0] * max(1, walkers)
        self.walks = 0
        self.stlb_refills = 0
        # Optional obs probe ("tlb.walk"), wired by the hierarchy.
        self.probe_walk = None

    @property
    def walkers(self) -> int:
        return len(self._walker_free)

    def translate(self, addr: int, time: float) -> float:
        """Return the time at which the translation of *addr* is available."""
        page = addr // PAGE_BYTES
        if self._dtlb.access(page):
            return time
        if self._stlb.access(page):
            self._dtlb.fill(page)
            self.stlb_refills += 1
            return time + self.STLB_HIT_CYCLES
        # Full miss: grab a walker, charge a cached leg plus one DRAM access
        # for the leaf PTE (page tables are too big to stay resident for the
        # irregular workloads).
        walker_free = self._walker_free
        earliest = min(walker_free)
        slot = walker_free.index(earliest)
        start = max(time, earliest)
        done = self._dram.access(start + self.WALK_CACHED_CYCLES)
        self._walker_free[slot] = done
        self._stlb.fill(page)
        self._dtlb.fill(page)
        self.walks += 1
        if self.probe_walk is not None and self.probe_walk.enabled:
            self.probe_walk.emit(page=page, time=time, completion=done)
        return done

    @property
    def dtlb_misses(self) -> int:
        return self._dtlb.misses

    @property
    def dtlb_hits(self) -> int:
        return self._dtlb.hits
