"""repro — a full-system Python reproduction of *Scalar Vector Runahead*
(Roelandts et al., MICRO 2024).

The package builds everything the paper's evaluation depends on, from
scratch: a mini-ISA with an assembler, a timed memory hierarchy (caches,
MSHRs, DRAM bandwidth/latency, TLBs, stride + IMP prefetchers), in-order
and out-of-order timing cores, the SVR mechanism itself, an energy model,
the paper's workloads (GAP graph kernels, HPC/DB kernels, SPEC surrogates)
and a harness that regenerates every figure and table.

Quick start::

    from repro import run, technique
    result = run("PR_KR", technique("svr16"), scale="bench")
    print(result.cpi, result.energy_per_instruction_nj)

See README.md for the architecture tour and DESIGN.md for the experiment
index.
"""

from repro.harness.runner import (
    MAIN_TECHNIQUES,
    SimResult,
    TechniqueConfig,
    run,
    technique,
)
from repro.harness.report import format_series, format_table, harmonic_mean
from repro.svr.config import LoopBoundPolicy, RecyclingPolicy, SVRConfig
from repro.svr.overhead import feature_matrix, overhead_bits, overhead_kib
from repro.workloads.registry import (
    GAP_WORKLOADS,
    HPC_WORKLOADS,
    IRREGULAR_WORKLOADS,
    SPEC_WORKLOADS,
    build_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "GAP_WORKLOADS",
    "HPC_WORKLOADS",
    "IRREGULAR_WORKLOADS",
    "LoopBoundPolicy",
    "MAIN_TECHNIQUES",
    "RecyclingPolicy",
    "SPEC_WORKLOADS",
    "SVRConfig",
    "SimResult",
    "TechniqueConfig",
    "__version__",
    "build_workload",
    "feature_matrix",
    "format_series",
    "format_table",
    "harmonic_mean",
    "overhead_bits",
    "overhead_kib",
    "run",
    "technique",
    "workload_names",
]
