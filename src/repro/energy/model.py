"""Event-count energy model.

The paper uses McPAT v1.0 at 22 nm for SoC power and adds DRAM energy to
report *whole-system* energy per committed instruction (Fig 12).  McPAT is
a large closed pipeline of RC models; our substitution keeps the structure
of its output — static power per core type plus per-event dynamic energies
— with constants calibrated to the paper's reported averages (in-order core
0.12 W, out-of-order core 1.01 W) and to DRAM device datasheet magnitudes
(~15 nJ per 64-byte line transfer).  Every effect the paper's energy claims
rest on is represented:

* the OoO core pays rename/ROB/issue-queue energy per instruction and a
  much higher static power;
* slow execution pays system static power (SoC uncore + DRAM background)
  for longer — why the OoO core usually beats the in-order baseline on
  whole-system energy despite its power draw;
* SVR pays per-SVI issue/SRF energy (the paper's "22% of core power" while
  in runahead) plus a small static adder for its 2-9 KiB of SRAM;
* every DRAM transfer, useful or not, costs line energy — inaccurate
  prefetching (IMP) shows up directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EnergyParams:
    """Calibration constants (Joules and Watts)."""

    # Static power [W]
    system_static_w: float = 0.60        # SoC uncore + DRAM background
    inorder_core_static_w: float = 0.085
    ooo_core_static_w: float = 0.88
    svr_static_w_per_kib: float = 0.002
    imp_static_w: float = 0.004

    # Dynamic energy per event [J]
    inorder_instr_j: float = 8e-12       # fetch/decode/issue/commit
    ooo_instr_j: float = 40e-12          # + rename/ROB/IQ/LSQ CAMs
    alu_op_j: float = 3e-12
    fp_op_j: float = 6e-12
    l1_access_j: float = 20e-12
    l2_access_j: float = 50e-12
    dram_line_j: float = 15e-9
    branch_lookup_j: float = 1e-12
    svi_op_j: float = 6e-12              # SVU slice + SRF lane access
    svr_table_j: float = 1e-12           # stride detector / taint / LBD
    imp_prefetch_j: float = 25e-12


@dataclass
class EnergyBreakdown:
    """Energy split for one run; all values in Joules."""

    static_j: float = 0.0
    core_dynamic_j: float = 0.0
    cache_dynamic_j: float = 0.0
    dram_dynamic_j: float = 0.0
    technique_dynamic_j: float = 0.0     # SVR / IMP machinery

    @property
    def total_j(self) -> float:
        return (self.static_j + self.core_dynamic_j + self.cache_dynamic_j
                + self.dram_dynamic_j + self.technique_dynamic_j)

    def per_instruction_nj(self, instructions: int) -> float:
        """nJ per committed instruction — the Fig 12 metric."""
        if instructions <= 0:
            return 0.0
        return self.total_j / instructions * 1e9

    def as_dict(self) -> dict[str, float]:
        return {
            "static_j": self.static_j,
            "core_dynamic_j": self.core_dynamic_j,
            "cache_dynamic_j": self.cache_dynamic_j,
            "dram_dynamic_j": self.dram_dynamic_j,
            "technique_dynamic_j": self.technique_dynamic_j,
            "total_j": self.total_j,
        }


class EnergyModel:
    """Turn a finished run's event counts into an :class:`EnergyBreakdown`."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def evaluate(
        self,
        *,
        core_kind: str,
        cycles: float,
        frequency_ghz: float,
        instructions: int,
        alu_ops: int,
        fp_ops: int,
        branches: int,
        l1_accesses: int,
        l2_accesses: int,
        dram_lines: int,
        svi_ops: int = 0,
        svr_table_accesses: int = 0,
        svr_state_kib: float = 0.0,
        imp_prefetches: int = 0,
        imp_enabled: bool = False,
    ) -> EnergyBreakdown:
        """Compute whole-system energy for one simulated region."""
        p = self.params
        seconds = cycles / (frequency_ghz * 1e9)

        static_w = p.system_static_w
        if core_kind == "ooo":
            static_w += p.ooo_core_static_w
            instr_j = p.ooo_instr_j
        elif core_kind == "inorder":
            static_w += p.inorder_core_static_w
            instr_j = p.inorder_instr_j
        else:
            raise ValueError(f"unknown core kind: {core_kind}")
        static_w += p.svr_static_w_per_kib * svr_state_kib
        if imp_enabled:
            static_w += p.imp_static_w

        breakdown = EnergyBreakdown()
        breakdown.static_j = static_w * seconds
        breakdown.core_dynamic_j = (
            instructions * instr_j
            + alu_ops * p.alu_op_j
            + fp_ops * p.fp_op_j
            + branches * p.branch_lookup_j
        )
        breakdown.cache_dynamic_j = (
            l1_accesses * p.l1_access_j + l2_accesses * p.l2_access_j
        )
        breakdown.dram_dynamic_j = dram_lines * p.dram_line_j
        breakdown.technique_dynamic_j = (
            svi_ops * p.svi_op_j
            + svr_table_accesses * p.svr_table_j
            + imp_prefetches * p.imp_prefetch_j
        )
        return breakdown

    def average_power_w(self, breakdown: EnergyBreakdown, cycles: float,
                        frequency_ghz: float) -> float:
        seconds = cycles / (frequency_ghz * 1e9)
        return breakdown.total_j / seconds if seconds > 0 else 0.0
