"""Whole-system energy model (McPAT substitution, see DESIGN.md)."""

from repro.energy.model import EnergyModel, EnergyParams, EnergyBreakdown

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams"]
