"""The ``repro serve`` HTTP service: simulation as a service.

Stdlib-only (``http.server``) long-lived server tying the serving
pieces together around one **scheduler thread**:

* HTTP threads (``ThreadingHTTPServer``) only touch the internally
  locked admission objects — :class:`~repro.serve.queue.JobQueue`,
  :class:`~repro.serve.ratelimit.RateLimiter`,
  :class:`~repro.serve.breaker.CircuitBreaker`,
  :class:`~repro.serve.store.ResultStore`;
* exactly one scheduler thread owns the
  :class:`~repro.serve.pool.WorkerPool` pipes and the
  :class:`~repro.obs.spans.SpanTracer`, dispatching queued cells,
  harvesting verdicts, scheduling jittered retries
  (:meth:`repro.exec.executor.ExecConfig.backoff_delay`), promoting
  successes into the content-addressed store + JSONL ledger, and
  feeding the breaker.

Admission pipeline for ``POST /jobs`` (first refusal wins)::

    drain guard -> rate limit (429) -> validation (400)
      -> store hit (200, cached) -> breaker (200, quarantined verdict)
      -> queue (202, or 429 + Retry-After when full)

Graceful drain (SIGTERM/SIGINT or ``POST /admin/drain``): stop
admitting, let in-flight cells finish up to ``drain_timeout_s``, settle
stragglers as failures, stop the pool and the HTTP listener, exit 0.

Every stage emits ``serve.*`` probes through a private
:class:`~repro.obs.probes.ProbeBus`; :func:`install_serve_metrics`
turns them into the counters/histograms behind ``GET /metrics`` and the
``repro report`` service section.

The live observability plane (PR 9) rides the same spine: pool workers
stream in-flight progress frames that land on jobs (so
``GET /jobs/<id>?wait=S`` long-polls until something changes),
``GET /events`` streams job/progress/breaker events as chunked ndjson,
``GET /metrics`` speaks Prometheus text exposition under content
negotiation (JSON stays the default), and a bounded
:class:`~repro.serve.events.MetricsRing` behind ``GET /metrics/history``
feeds ``repro top`` and the report dashboard.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.exec.executor import ExecConfig
from repro.exec.failures import HANG, RunFailure
from repro.exec.faults import FaultPlan
from repro.exec.journal import RunJournal
from repro.exec.spec import RunSpec
from repro.obs.metrics import (
    MetricsRegistry,
    install_standard_metrics,
    prometheus_exposition,
)
from repro.obs.probes import ProbeBus
from repro.obs.progress import ProgressConfig
from repro.obs.spans import SpanTracer
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.events import EventBroker, MetricsRing
from repro.serve.pool import Completion, WorkerPool
from repro.serve.queue import (
    FAILED,
    OK,
    QUARANTINED_STATE,
    Job,
    JobQueue,
    QueueFull,
)
from repro.serve.ratelimit import RateLimiter
from repro.serve.store import ResultStore

SERVE_VERSION = 1

_SCALES = ("tiny", "bench", "default")
_SUBMIT_FIELDS = {"workload", "technique", "scale", "warmup", "measure"}


class Reject(Exception):
    """An admission refusal, carrying its HTTP shape."""

    def __init__(self, status: int, message: str,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


@dataclass
class ServeConfig:
    """Knobs for one :class:`ReproServer`."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral (tests)
    workers: int = 2                  # warm worker processes
    queue_limit: int = 32             # distinct queued cells before 429
    rate: float = 0.0                 # tokens/s per client; 0 = unlimited
    burst: float = 10.0               # token-bucket capacity
    timeout_s: float | None = 120.0   # wall-clock hang fence per attempt
    retries: int = 1                  # extra attempts for crash/hang
    backoff_s: float = 0.25           # first retry delay (jittered)
    max_backoff_s: float = 5.0
    jitter_seed: int = 0
    store_dir: str = "results/store"
    ledger: str | None = "results/serve-ledger.jsonl"
    breaker_threshold: int = 3        # consecutive crash/hang -> open
    breaker_cooldown_s: float = 300.0
    drain_timeout_s: float = 30.0
    heartbeat_s: float = 5.0          # idle-worker ping cadence
    faults: FaultPlan | None = None   # injected faults (tests, demos)
    progress_interval: int = 1_000    # instructions between frames; 0 = off
    sample_interval_s: float = 2.0    # metrics-history push cadence
    history_size: int = 512           # metrics ring capacity
    events_queue: int = 256           # per-subscriber event queue bound
    events_replay: int = 64           # /events?replay=N ring capacity

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"ServeConfig.workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(
                f"ServeConfig.queue_limit must be >= 1, "
                f"got {self.queue_limit}")
        if self.rate < 0:
            raise ValueError(
                f"ServeConfig.rate must be >= 0, got {self.rate}")
        if self.retries < 0:
            raise ValueError(
                f"ServeConfig.retries must be >= 0, got {self.retries}")
        if self.drain_timeout_s < 0:
            raise ValueError(
                f"ServeConfig.drain_timeout_s must be >= 0, "
                f"got {self.drain_timeout_s}")
        if self.progress_interval < 0:
            raise ValueError(
                f"ServeConfig.progress_interval must be >= 0, "
                f"got {self.progress_interval}")
        if self.sample_interval_s <= 0:
            raise ValueError(
                f"ServeConfig.sample_interval_s must be > 0, "
                f"got {self.sample_interval_s}")


def install_serve_metrics(bus: ProbeBus,
                          registry: MetricsRegistry) -> dict[str, Any]:
    """Subscribe ``serve.*`` probes to service-level metrics."""
    counter = registry.counter
    requests = counter("serve.requests")
    request_ms = registry.histogram("serve.request_ms")
    admitted = counter("serve.admitted")
    coalesced = counter("serve.coalesced")
    cache_hits = counter("serve.cache_hits")
    cache_misses = counter("serve.cache_misses")
    wait_s = registry.histogram("serve.job_wait_s")
    run_s = registry.histogram("serve.job_run_s")

    def on_request(_name: str, ev: dict) -> None:
        requests.inc()
        counter(f"serve.requests_{ev['status'] // 100}xx").inc()
        request_ms.observe(ev["elapsed_s"] * 1e3)

    def on_admit(_name: str, ev: dict) -> None:
        admitted.inc()
        if ev.get("coalesced"):
            coalesced.inc()

    def on_reject(_name: str, ev: dict) -> None:
        counter(f"serve.rejected_{ev['reason']}").inc()

    def on_cache(_name: str, ev: dict) -> None:
        (cache_hits if ev["hit"] else cache_misses).inc()

    def on_job(_name: str, ev: dict) -> None:
        counter(f"serve.jobs_{ev['state']}").inc()
        if ev.get("wait_s") is not None:
            wait_s.observe(ev["wait_s"])
        if ev.get("run_s") is not None:
            run_s.observe(ev["run_s"])

    def on_breaker(_name: str, ev: dict) -> None:
        counter(f"serve.breaker_{ev['action']}").inc()

    def on_worker(_name: str, ev: dict) -> None:
        counter(f"serve.worker_{ev['action']}").inc()

    def on_store(_name: str, ev: dict) -> None:
        counter(f"serve.store_{ev['action']}").inc()

    progress_frames = counter("serve.progress_frames")

    def on_progress(_name: str, _ev: dict) -> None:
        progress_frames.inc()

    wiring: dict[str, Any] = {
        "serve.request": on_request,
        "serve.admit": on_admit,
        "serve.reject": on_reject,
        "serve.cache": on_cache,
        "serve.job": on_job,
        "serve.breaker": on_breaker,
        "serve.worker": on_worker,
        "serve.store": on_store,
        "serve.progress": on_progress,
    }
    for name, handler in wiring.items():
        bus.subscribe(name, handler)
    return wiring


class ReproServer:
    """One serving instance: admission front end, scheduler, store."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        config = self.config
        self.bus = ProbeBus()
        self.registry = MetricsRegistry()
        install_standard_metrics(self.bus, self.registry)
        install_serve_metrics(self.bus, self.registry)
        # Probes fire from HTTP threads and the scheduler alike; one lock
        # serialises emission (and the single-threaded tracer behind it).
        self._obs_lock = threading.Lock()
        self._p_request = self.bus.probe("serve.request")
        self._p_admit = self.bus.probe("serve.admit")
        self._p_reject = self.bus.probe("serve.reject")
        self._p_cache = self.bus.probe("serve.cache")
        self._p_job = self.bus.probe("serve.job")
        self._p_breaker = self.bus.probe("serve.breaker")
        self._p_worker = self.bus.probe("serve.worker")
        self._p_store = self.bus.probe("serve.store")
        self._p_progress = self.bus.probe("serve.progress")
        self._p_cell = self.bus.probe("exec.cell")
        self._p_failure = self.bus.probe("exec.failure")
        self._p_retry = self.bus.probe("exec.retry")

        self.ledger = (RunJournal(config.ledger, bus=self.bus)
                       if config.ledger else None)
        self.store = ResultStore(config.store_dir,
                                 on_corrupt=self._on_corrupt)
        self.queue = JobQueue(limit=config.queue_limit)
        self.limiter = (RateLimiter(config.rate, config.burst)
                        if config.rate > 0 else None)
        self.breaker = CircuitBreaker(threshold=config.breaker_threshold,
                                      cooldown_s=config.breaker_cooldown_s)
        self.pool = WorkerPool(config.workers, timeout_s=config.timeout_s,
                               faults=config.faults,
                               heartbeat_s=config.heartbeat_s,
                               on_event=self._on_worker_event,
                               progress=(ProgressConfig(
                                   interval=config.progress_interval)
                                   if config.progress_interval > 0
                                   else None))
        self.events = EventBroker(queue_size=config.events_queue,
                                  replay_size=config.events_replay)
        self.history = MetricsRing(size=config.history_size)
        self._last_sample = 0.0
        self.tracer = SpanTracer()
        self._delays = ExecConfig(
            retries=config.retries, backoff_s=config.backoff_s,
            max_backoff_s=config.max_backoff_s,
            jitter_seed=config.jitter_seed)

        self._attempts: dict[str, int] = {}     # key -> attempts so far
        self._cell_started: dict[str, float] = {}
        self._delayed: list[tuple[float, str]] = []   # (ready_at, key)
        self._corrupt_seen = 0
        self._rebuild_lock = threading.Lock()
        self._draining = False
        self._drain_reason = ""
        self._drain_deadline = math.inf
        self._done = threading.Event()
        self._started_mono = time.monotonic()
        self._httpd: _HTTPServer | None = None
        self._threads: list[threading.Thread] = []
        self.port = config.port

    # -- observability helpers ----------------------------------------

    def _emit(self, probe: Any, **fields: Any) -> None:
        with self._obs_lock:
            probe.emit(**fields)

    def _on_corrupt(self, key: str, reason: str) -> None:
        self._emit(self._p_store, action="corrupt", key=key, reason=reason)

    def _on_worker_event(self, event: str, **fields: Any) -> None:
        if event == "progress":
            self._on_progress(fields)
            return
        self._emit(self._p_worker, action=event, **fields)
        self.events.publish("worker", action=event, **fields)

    def _on_progress(self, fields: dict[str, Any]) -> None:
        """A live frame from a busy pool worker: pin it to the jobs
        riding the cell (long-poll wakeup) and stream it."""
        frame: dict[str, Any] = fields.get("frame") or {}
        key = fields.get("key")
        jobs = self.queue.note_progress(key, frame) if key else []
        self._emit(self._p_progress, key=key, worker=fields.get("worker"),
                   phase=frame.get("phase"), cycle=frame.get("cycle"),
                   instructions=frame.get("instructions"),
                   ipc=frame.get("ipc"))
        self.events.publish("progress", key=key,
                            worker=fields.get("worker"),
                            jobs=[job.job_id for job in jobs],
                            frame=frame)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Warm the store, start workers, scheduler and HTTP listener."""
        if self.ledger is not None and self.ledger.exists():
            rebuilt = self.store.rebuild(self.ledger)
            if rebuilt:
                self._emit(self._p_store, action="rebuild", entries=rebuilt)
        self.pool.start()
        scheduler = threading.Thread(target=self._scheduler_loop,
                                     name="repro-serve-scheduler",
                                     daemon=True)
        self._httpd = _HTTPServer((self.config.host, self.config.port),
                                  _Handler)
        self._httpd.repro = self
        self.port = self._httpd.server_address[1]
        listener = threading.Thread(target=self._httpd.serve_forever,
                                    kwargs={"poll_interval": 0.2},
                                    name="repro-serve-http", daemon=True)
        self._threads = [scheduler, listener]
        scheduler.start()
        listener.start()

    def request_drain(self, reason: str = "signal") -> None:
        """Begin graceful shutdown; idempotent, safe from any thread."""
        if self._draining:
            return
        self._draining = True
        self._drain_reason = reason
        self._drain_deadline = (time.monotonic()
                                + self.config.drain_timeout_s)
        self.events.publish("drain", reason=reason)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully shut down."""
        return self._done.wait(timeout)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission (HTTP threads) -------------------------------------

    def submit(self, payload: Any, client: str) -> tuple[Job, int]:
        """Admit one submission; returns ``(job, http_status)`` or
        raises :class:`Reject`."""
        if self._draining:
            raise Reject(503, "server is draining; not accepting jobs")
        if self.limiter is not None:
            granted, retry_after = self.limiter.acquire(client)
            if not granted:
                self._emit(self._p_reject, reason="ratelimit",
                           client=client)
                raise Reject(429,
                             f"rate limit exceeded for client {client!r}",
                             retry_after)
        spec = self._validate(payload)
        key = spec.key
        record = self.lookup(key)
        if record is not None:
            job = self.queue.admit_terminal(spec, client, OK, cached=True)
            self._emit(self._p_cache, key=key, hit=True)
            self._job_settled(job)
            return job, 200
        self._emit(self._p_cache, key=key, hit=False)
        run_it, state = self.breaker.admit(key)
        if not run_it:
            failure = self.breaker.quarantine_failure(
                key, spec.workload, spec.technique_name)
            job = self.queue.admit_terminal(spec, client, QUARANTINED_STATE,
                                            failure=failure)
            self._emit(self._p_breaker, action="short_circuit", key=key,
                       state=state)
            self.events.publish("breaker", action="short_circuit",
                                key=key, state=state)
            self._job_settled(job)
            return job, 200
        try:
            job = self.queue.submit(spec, client)
        except QueueFull as exc:
            self._emit(self._p_reject, reason="queue_full", client=client)
            raise Reject(429, str(exc), exc.retry_after_s) from None
        self._emit(self._p_admit, key=key, client=client,
                   coalesced=job.coalesced)
        self.events.publish("job", job_id=job.job_id, key=key,
                            state=job.state, coalesced=job.coalesced)
        return job, 202

    def _validate(self, payload: Any) -> RunSpec:
        """Map a request body to a :class:`RunSpec`, or 400."""
        if not isinstance(payload, dict):
            raise Reject(400, "request body must be a JSON object")
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            raise Reject(400, f"unknown field(s): {sorted(unknown)}; "
                              f"expected {sorted(_SUBMIT_FIELDS)}")
        workload = payload.get("workload")
        tech = payload.get("technique")
        if not isinstance(workload, str) or not workload:
            raise Reject(400, "'workload' must be a non-empty string")
        if not isinstance(tech, str) or not tech:
            raise Reject(400, "'technique' must be a non-empty string")
        scale = payload.get("scale", "bench")
        if scale not in _SCALES:
            raise Reject(400, f"'scale' must be one of {_SCALES}, "
                              f"got {scale!r}")
        windows: dict[str, int | None] = {}
        for name in ("warmup", "measure"):
            value = payload.get(name)
            if value is not None and (not isinstance(value, int)
                                      or isinstance(value, bool)
                                      or value < 0):
                raise Reject(400, f"{name!r} must be a non-negative "
                                  f"integer, got {value!r}")
            windows[name] = value
        try:
            spec = RunSpec.make(workload, tech, scale=scale,
                                warmup=windows["warmup"],
                                measure=windows["measure"])
        except (KeyError, ValueError, TypeError) as exc:
            raise Reject(400, f"invalid config: {exc}") from None
        from repro.workloads.registry import workload_names
        known = workload_names("irregular") + workload_names("spec")
        if workload not in known:
            raise Reject(400, f"unknown workload {workload!r}; known: "
                              f"{', '.join(known)}")
        return spec

    def lookup(self, key: str) -> dict[str, Any] | None:
        """Store read with the detect-and-rebuild loop: a miss caused by
        quarantined corruption triggers a ledger replay, then retries."""
        record = self.store.get(key)
        if record is not None:
            return record
        with self._rebuild_lock:
            if self.store.corrupt_detected == self._corrupt_seen:
                return None
            self._corrupt_seen = self.store.corrupt_detected
            if self.ledger is None or not self.ledger.exists():
                return None
            rebuilt = self.store.rebuild(self.ledger)
            self._emit(self._p_store, action="rebuild", entries=rebuilt)
        return self.store.get(key)

    def result_bytes(self, key: str) -> bytes | None:
        """Raw validated store-entry bytes (byte-identical across
        cache hits — the file is written once and never rewritten)."""
        if self.lookup(key) is None:
            return None
        try:
            return self.store.entry_path(key).read_bytes()
        except OSError:
            return None

    # -- scheduler thread ---------------------------------------------

    def _scheduler_loop(self) -> None:
        try:
            self._schedule_until_drained()
        finally:
            self._shutdown()

    def _schedule_until_drained(self) -> None:
        while True:
            now = time.monotonic()
            for ready_at, key in list(self._delayed):
                if ready_at <= now:
                    self._delayed.remove((ready_at, key))
                    self.queue.requeue(key)
            while self.pool.idle_count() > 0:
                spec = self.queue.next_cell()
                if spec is None:
                    break
                attempt = self._attempts.get(spec.key, 0) + 1
                self._attempts[spec.key] = attempt
                self.queue.bump_attempts(spec.key, attempt)
                self._cell_started.setdefault(spec.key, now)
                if not self.pool.dispatch(spec, attempt):
                    self.queue.requeue(spec.key)
                    self._attempts[spec.key] = attempt - 1
                    break
                for job in self.queue.jobs_for(spec.key):
                    self.events.publish("job", job_id=job.job_id,
                                        key=spec.key, state=job.state,
                                        attempt=attempt)
            for completion in self.pool.poll(0.1):
                self._handle(completion)
            now = time.monotonic()
            if now - self._last_sample >= self.config.sample_interval_s:
                self._last_sample = now
                self._push_sample()
            if self._draining:
                idle = (self.queue.inflight() == 0
                        and not self._delayed)
                if idle or time.monotonic() >= self._drain_deadline:
                    return

    def _handle(self, c: Completion) -> None:
        key = c.spec.key
        if c.status == "ok":
            self._settle_ok(c)
            return
        retryable = (c.kind in self._delays.retry_kinds
                     and c.attempt <= self.config.retries
                     and not self._draining)
        if retryable:
            delay = self._delays.backoff_delay(c.attempt, key)
            self._emit(self._p_retry, key=key, workload=c.spec.workload,
                       technique=c.spec.technique_name, attempt=c.attempt,
                       kind=c.kind, delay_s=delay)
            if self.ledger is not None:
                self.ledger.append_event(
                    "retry", key=key, attempt=c.attempt, kind=c.kind,
                    message=c.message, delay_s=round(delay, 4))
            self._delayed.append((time.monotonic() + delay, key))
            self.events.publish("retry", key=key, attempt=c.attempt,
                                kind=c.kind, delay_s=round(delay, 4))
            return
        self._settle_failed(c)

    def _push_sample(self) -> None:
        """One point-in-time gauge sample into the history ring (and the
        ledger, so ``repro report`` can replay the service's live
        history after the fact)."""
        snap = self.registry.snapshot()
        sample = {
            "queue_depth": self.queue.depth(),
            "inflight": self.queue.inflight(),
            "busy_workers": self.pool.busy_count(),
            "idle_workers": self.pool.idle_count(),
            "worker_restarts": self.pool.restarts,
            "jobs_ok": snap.get("serve.jobs_ok", 0),
            "jobs_failed": snap.get("serve.jobs_failed", 0),
            "requests": snap.get("serve.requests", 0),
            "progress_frames": snap.get("serve.progress_frames", 0),
            "events_published": self.events.published,
        }
        self.history.push(sample)
        if self.ledger is not None:
            self.ledger.append_event("serve.sample", **sample)

    def _cell_common(self, c: Completion) -> tuple[int, float]:
        attempts = self._attempts.pop(c.spec.key, c.attempt)
        started = self._cell_started.pop(c.spec.key, None)
        now = time.monotonic()
        elapsed = now - started if started is not None else 0.0
        self.tracer.add("serve.cell", started if started is not None
                        else now, now, workload=c.spec.workload,
                        technique=c.spec.technique_name,
                        status=c.status, attempts=attempts)
        return attempts, elapsed

    def _settle_ok(self, c: Completion) -> None:
        key = c.spec.key
        attempts, elapsed = self._cell_common(c)
        record = {
            "event": "cell", "key": key, "workload": c.spec.workload,
            "technique": c.spec.technique_name, "scale": c.spec.scale,
            "status": "ok", "attempts": attempts,
            "elapsed_s": round(elapsed, 6), "result": c.result,
            "spec": c.spec.config_dict(),
        }
        self.store.put(key, record)
        if self.ledger is not None:
            self.ledger.append(dict(record))
        self.breaker.record_success(key)
        self._emit(self._p_cell, key=key, workload=c.spec.workload,
                   technique=c.spec.technique_name, status="ok",
                   cached=False, attempts=attempts, elapsed_s=elapsed)
        for job in self.queue.settle(key, OK, attempts=attempts):
            self._job_settled(job)

    def _settle_failed(self, c: Completion) -> None:
        key = c.spec.key
        attempts, elapsed = self._cell_common(c)
        failure = RunFailure(
            key=key, workload=c.spec.workload,
            technique=c.spec.technique_name, kind=c.kind or "crash",
            message=c.message, attempts=attempts, elapsed_s=elapsed,
            cycle=c.extra.get("cycle"), pc=c.extra.get("pc"),
            traceback=c.extra.get("traceback"))
        state = self.breaker.record_failure(key, failure.kind,
                                            failure.message)
        if state == OPEN:
            self._emit(self._p_breaker, action="open", key=key,
                       consecutive=len(self.breaker.history(key)))
            self.events.publish("breaker", action="open", key=key)
            if self.ledger is not None:
                self.ledger.append_event("serve.breaker", key=key,
                                         state=state)
        if self.ledger is not None:
            self.ledger.append_cell(
                key=key, workload=c.spec.workload,
                technique=c.spec.technique_name, scale=c.spec.scale,
                status="failed", attempts=attempts, elapsed_s=elapsed,
                failure=failure.to_dict(), spec=c.spec.config_dict())
        self._emit(self._p_failure, key=key, workload=c.spec.workload,
                   technique=c.spec.technique_name, kind=failure.kind,
                   message=failure.message, attempts=attempts)
        for job in self.queue.settle(key, FAILED, attempts=attempts,
                                     failure=failure):
            self._job_settled(job)

    def _job_settled(self, job: Job) -> None:
        self._emit(self._p_job, job_id=job.job_id, key=job.key,
                   state=job.state, cached=job.cached,
                   coalesced=job.coalesced, wait_s=job.wait_s(),
                   run_s=job.run_s())
        self.events.publish("job", job_id=job.job_id, key=job.key,
                            state=job.state, cached=job.cached,
                            coalesced=job.coalesced)
        if self.ledger is not None:
            self.ledger.append_event("serve.job", **job.to_dict())

    def _shutdown(self) -> None:
        # Finish (or expire) whatever is still on a worker, then settle
        # every remaining admitted cell so no job is left non-terminal.
        remaining = max(0.5, self._drain_deadline - time.monotonic())
        for completion in self.pool.drain(timeout_s=min(remaining, 10.0)):
            self._handle(completion)
        for key in self.queue.active_keys():
            attempts = self._attempts.pop(key, 0)
            jobs = self.queue.jobs()
            spec = next((j.spec for j in jobs if j.key == key), None)
            failure = RunFailure(
                key=key,
                workload=spec.workload if spec else "?",
                technique=spec.technique_name if spec else "?",
                kind=HANG, attempts=max(attempts, 1),
                message=(f"server drained ({self._drain_reason}) before "
                         "the cell completed"))
            for job in self.queue.settle(key, FAILED,
                                         attempts=max(attempts, 1),
                                         failure=failure):
                self._job_settled(job)
        if self.ledger is not None:
            self.ledger.append_event("serve.drain",
                                     reason=self._drain_reason,
                                     restarts=self.pool.restarts)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self._done.set()

    # -- introspection ------------------------------------------------

    def health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "version": SERVE_VERSION,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "queue_depth": self.queue.depth(),
            "inflight": self.queue.inflight(),
            "workers": self.pool.snapshot(),
            "worker_restarts": self.pool.restarts,
            "breaker": self.breaker.snapshot(),
            "store": {"entries": len(self.store.keys()),
                      "writes": self.store.writes,
                      "corrupt_detected": self.store.corrupt_detected},
            "events_published": self.events.published,
            "event_subscribers": self.events.subscriber_count(),
        }

    def live_gauges(self) -> dict[str, float]:
        """Point-in-time values spliced into the Prometheus exposition
        (the registry only holds event-driven counters/histograms)."""
        return {
            "serve.queue_depth": float(self.queue.depth()),
            "serve.inflight": float(self.queue.inflight()),
            "serve.busy_workers": float(self.pool.busy_count()),
            "serve.idle_workers": float(self.pool.idle_count()),
            "serve.worker_restarts_total": float(self.pool.restarts),
            "serve.uptime_s": round(
                time.monotonic() - self._started_mono, 3),
        }

    def spans(self) -> list[dict[str, Any]]:
        with self._obs_lock:
            return self.tracer.export()


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro: ReproServer


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def rs(self) -> ReproServer:
        return self.server.repro        # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass                            # the serve.request probe covers it

    # -- response helpers ---------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str,
              retry_after_s: float | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After",
                             str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, obj: Any,
              retry_after_s: float | None = None) -> None:
        body = json.dumps(obj, sort_keys=True, default=str).encode("utf-8")
        self._send(status, body, "application/json", retry_after_s)

    def _error(self, status: int, message: str,
               retry_after_s: float | None = None) -> None:
        payload: dict[str, Any] = {"error": message}
        if retry_after_s is not None:
            payload["retry_after_s"] = round(retry_after_s, 3)
        self._json(status, payload, retry_after_s)

    def _observed(self, method: str) -> None:
        started = time.monotonic()
        path = urlparse(self.path).path.rstrip("/") or "/"
        status = 500
        try:
            status = self._route(method, path)
        except BrokenPipeError:
            raise
        except Reject as exc:
            status = exc.status
            self._error(exc.status, str(exc), exc.retry_after_s)
        finally:
            self.rs._emit(self.rs._p_request, method=method, path=path,
                          status=status,
                          elapsed_s=time.monotonic() - started)

    # -- routing ------------------------------------------------------

    def do_GET(self) -> None:   # noqa: N802 — http.server API
        self._observed("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._observed("POST")

    def _query(self) -> dict[str, str]:
        """Last-wins flat view of the request's query string."""
        parsed = parse_qs(urlparse(self.path).query)
        return {name: values[-1] for name, values in parsed.items()}

    def _route(self, method: str, path: str) -> int:
        rs = self.rs
        if method == "GET":
            if path == "/healthz":
                self._json(200, rs.health())
                return 200
            if path == "/metrics":
                return self._get_metrics()
            if path == "/metrics/history":
                return self._get_history()
            if path == "/events":
                return self._get_events()
            if path == "/jobs":
                self._json(200, {"jobs": [job.to_dict()
                                          for job in rs.queue.jobs()]})
                return 200
            if path.startswith("/jobs/"):
                return self._get_job(path[len("/jobs/"):])
            if path.startswith("/results/"):
                return self._get_result(path[len("/results/"):])
            if path == "/admin/spans":
                self._json(200, {"spans": rs.spans()})
                return 200
            self._error(404, f"no such resource: {path}")
            return 404
        if path == "/jobs":
            return self._post_job()
        if path == "/admin/drain":
            rs.request_drain("http")
            self._json(202, {"status": "draining"})
            return 202
        self._error(404, f"no such resource: {method} {path}")
        return 404

    def _get_metrics(self) -> int:
        """JSON by default (the stable scripting surface); Prometheus
        text exposition via ``?format=prometheus`` or an ``Accept``
        header that asks for ``text/plain`` without JSON."""
        rs = self.rs
        accept = self.headers.get("Accept", "")
        wants_prom = (self._query().get("format") == "prometheus"
                      or ("text/plain" in accept
                          and "application/json" not in accept))
        if wants_prom:
            text = prometheus_exposition(rs.registry,
                                         extra_gauges=rs.live_gauges())
            self._send(200, text.encode("utf-8"),
                       "text/plain; version=0.0.4; charset=utf-8")
            return 200
        self._json(200, rs.registry.snapshot())
        return 200

    def _get_history(self) -> int:
        query = self._query()
        try:
            last = int(query.get("last", "0"))
        except ValueError:
            raise Reject(400, "'last' must be an integer") from None
        samples = self.rs.history.snapshot(last if last > 0 else None)
        self._json(200, {"samples": samples})
        return 200

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()

    def _get_events(self) -> int:
        """Chunked ndjson stream of live serve events.

        ``?replay=N`` pre-seeds the stream with recent history;
        ``?limit=N`` closes it after N events (deterministic tests and
        scripts).  A heartbeat line keeps the connection warm through
        idle stretches — and is how a vanished client is detected.  A
        client disconnect only unwinds this handler thread; the
        scheduler never blocks on a subscriber (bounded queues drop
        oldest).
        """
        rs = self.rs
        query = self._query()
        try:
            limit = int(query.get("limit", "0"))
            replay = int(query.get("replay", "0"))
        except ValueError:
            raise Reject(400, "'limit' and 'replay' must be "
                              "integers") from None
        sub = rs.events.subscribe(replay=max(0, replay))
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        sent = 0
        try:
            while not (limit and sent >= limit):
                if rs.draining and rs._done.is_set():
                    break
                event = sub.get(timeout_s=2.0)
                if event is None:
                    self._write_chunk(b'{"event":"heartbeat"}\n')
                    continue
                line = json.dumps(event, sort_keys=True,
                                  default=str).encode("utf-8")
                self._write_chunk(line + b"\n")
                sent += 1
            self._write_chunk(b"")     # terminal chunk
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass                       # client went away mid-stream
        finally:
            sub.close()
            self.close_connection = True
        return 200

    def _get_job(self, job_id: str) -> int:
        rs = self.rs
        job = rs.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job: {job_id!r}")
            return 404
        query = self._query()
        if "wait" in query and not job.terminal:
            try:
                wait_s = min(float(query["wait"]), 60.0)
            except ValueError:
                raise Reject(400, "'wait' must be a number") from None
            try:
                version = int(query.get("version", job.version))
            except ValueError:
                raise Reject(400, "'version' must be an integer") from None
            job = rs.queue.wait_for_change(job_id, version, wait_s) or job
        payload: dict[str, Any] = {"job": job.to_dict()}
        if job.state == OK:
            record = rs.lookup(job.key)
            if record is not None:
                payload["result"] = record.get("result")
        self._json(200, payload)
        return 200

    def _get_result(self, key: str) -> int:
        try:
            body = self.rs.result_bytes(key)
        except ValueError as exc:       # non-hex key
            self._error(400, str(exc))
            return 400
        if body is None:
            self._error(404, f"no stored result for key {key!r}")
            return 404
        self._send(200, body, "application/json")
        return 200

    def _post_job(self) -> int:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise Reject(400, f"request body is not valid JSON: {exc}")
        client = (self.headers.get("X-Repro-Client")
                  or self.client_address[0])
        job, status = self.rs.submit(payload, client)
        self._json(status, {"job": job.to_dict()})
        return status
