"""``repro top``: a self-refreshing terminal view of live simulation.

Two sources, one renderer:

* **server mode** (``--url``) polls a running ``repro serve`` —
  ``/healthz`` for workers and queue depth, ``/jobs`` for per-job state
  with live progress frames, ``/metrics/history`` for a recent-activity
  sparkline;
* **journal mode** (``--journal``) replays a local sweep/exec journal
  and summarises settled cells — useful when there is no server, only a
  long-running batch sweep writing checkpoints.

Everything renders to plain text; the refresh loop repaints with ANSI
cursor-home + clear-to-end (no curses dependency), and ``--once``
prints a single frame with no escape codes at all (scripts, CI logs).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, TextIO

_BAR_WIDTH = 22
_SPARKS = "▁▂▃▄▅▆▇█"


def progress_bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    """``[#####.............]`` for a 0..1 fraction."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def frame_fraction(frame: dict[str, Any]) -> float:
    target = frame.get("target_instructions") or 0
    if target <= 0:
        return 0.0
    return min(1.0, float(frame.get("instructions", 0)) / target)


def frame_eta_s(frame: dict[str, Any]) -> float | None:
    """Linear ETA from instructions-per-wall-second so far."""
    fraction = frame_fraction(frame)
    wall = frame.get("wall_s") or 0.0
    if fraction <= 0.0 or wall <= 0.0:
        return None
    if fraction >= 1.0:
        return 0.0
    return wall * (1.0 - fraction) / fraction


def _fmt_eta(eta: float | None) -> str:
    if eta is None:
        return "eta ?"
    if eta >= 90.0:
        return f"eta {eta / 60.0:.1f}m"
    return f"eta {eta:.0f}s"


def sparkline(values: list[float], width: int = 24) -> str:
    values = values[-width:]
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(int(v / top * (len(_SPARKS) - 1) + 0.5),
                    len(_SPARKS) - 1)]
        for v in values)


# ---------------------------------------------------------------------------
# Server mode.
# ---------------------------------------------------------------------------

def render_server_view(health: dict[str, Any],
                       jobs: list[dict[str, Any]],
                       history: list[dict[str, Any]],
                       url: str) -> str:
    lines = [
        f"repro top — {url}  [{health.get('status', '?')}]  "
        f"uptime {health.get('uptime_s', 0):.0f}s",
        f"queue {health.get('queue_depth', 0)}  "
        f"inflight {health.get('inflight', 0)}  "
        f"restarts {health.get('worker_restarts', 0)}  "
        f"store {health.get('store', {}).get('entries', 0)} entries  "
        f"events {health.get('events_published', 0)}",
        "",
        "workers:",
    ]
    for worker in health.get("workers", []):
        line = (f"  w{worker.get('worker')}  pid {worker.get('pid')}  "
                f"{worker.get('state', '?'):<5} "
                f"done {worker.get('jobs_done', 0)}")
        frame = worker.get("progress")
        if worker.get("running"):
            line += f"  {worker['running']}"
        if frame:
            line += (f"  {progress_bar(frame_fraction(frame))} "
                     f"{frame_fraction(frame) * 100:3.0f}%  "
                     f"cyc {frame.get('cycle', 0):.0f}  "
                     f"ipc {frame.get('ipc', 0):.2f}  "
                     f"{_fmt_eta(frame_eta_s(frame))}")
        lines.append(line)
    active = [j for j in jobs
              if j.get("state") in ("queued", "running")]
    done = [j for j in jobs
            if j.get("state") not in ("queued", "running")]
    lines += ["", f"jobs ({len(active)} active, {len(done)} settled):"]
    for job in active + done[-8:]:
        line = (f"  {job.get('job_id', '?'):<8} "
                f"{job.get('workload', '?')}/{job.get('technique', '?')}"
                f"  {job.get('state', '?'):<7}")
        if job.get("wait_s") is not None:
            line += f" wait {job['wait_s']:.1f}s"
        frame = job.get("progress")
        if job.get("state") == "running" and frame:
            line += (f"  {progress_bar(frame_fraction(frame))} "
                     f"{frame_fraction(frame) * 100:3.0f}%  "
                     f"ipc {frame.get('ipc', 0):.2f}  "
                     f"{_fmt_eta(frame_eta_s(frame))}")
        if job.get("cached"):
            line += "  (cache hit)"
        lines.append(line)
    if history:
        busy = [float(s.get("busy_workers", 0)) for s in history]
        depth = [float(s.get("queue_depth", 0)) for s in history]
        lines += ["",
                  f"history ({len(history)} samples): "
                  f"busy {sparkline(busy)}  queue {sparkline(depth)}"]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Journal mode.
# ---------------------------------------------------------------------------

def load_journal_cells(path: str) -> list[dict[str, Any]]:
    """Settled cell records from an exec/sweep journal, tolerant of
    partial trailing lines (the journal may be mid-write)."""
    cells: list[dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("event") == "cell":
                    cells.append(record)
    except OSError:
        return []
    return cells


def render_journal_view(path: str,
                        cells: list[dict[str, Any]]) -> str:
    ok = [c for c in cells if c.get("status") == "ok"]
    failed = [c for c in cells if c.get("status") != "ok"]
    lines = [
        f"repro top — journal {path}",
        f"settled {len(cells)} cell(s): {len(ok)} ok, "
        f"{len(failed)} failed",
        "",
    ]
    for cell in cells[-16:]:
        status = cell.get("status", "?")
        line = (f"  {cell.get('workload', '?')}/"
                f"{cell.get('technique', '?'):<12} {status:<7}"
                f" attempts {cell.get('attempts', 1)}")
        if cell.get("elapsed_s") is not None:
            line += f"  {cell['elapsed_s']:.2f}s"
        result = cell.get("result") or {}
        if status == "ok" and result.get("ipc") is not None:
            line += f"  ipc {result['ipc']:.3f}"
        failure = cell.get("failure") or {}
        if failure:
            line += f"  {failure.get('kind', '?')}"
            frame = failure.get("progress")
            if frame:
                line += (f" @ cycle {frame.get('cycle', 0):.0f} "
                         f"({frame_fraction(frame) * 100:.0f}% done)")
        lines.append(line)
    elapsed = [c.get("elapsed_s", 0.0) for c in cells if c.get("elapsed_s")]
    if elapsed:
        lines += ["", f"cell seconds: {sparkline(elapsed)}"]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The refresh loop.
# ---------------------------------------------------------------------------

def run_top(*, url: str | None = None, journal: str | None = None,
            interval_s: float = 2.0, once: bool = False,
            iterations: int | None = None, out: TextIO,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Render until interrupted (or *iterations* frames; tests)."""
    if (url is None) == (journal is None):
        raise ValueError("run_top needs exactly one of url or journal")

    def frame_text() -> str:
        if journal is not None:
            return render_journal_view(journal, load_journal_cells(journal))
        from repro.serve.client import ServeClient, ServeClientError
        client = ServeClient(url, timeout_s=5.0)
        try:
            health = client.health()
            jobs = client.jobs()
            history = client.history(last=48)
        except ServeClientError as exc:
            return f"repro top — {url}: {exc}\n"
        return render_server_view(health, jobs, history, url)

    count = 0
    try:
        while True:
            text = frame_text()
            if once:
                out.write(text)
                return 0
            out.write("\x1b[H\x1b[J" + text)
            out.flush()
            count += 1
            if iterations is not None and count >= iterations:
                return 0
            sleep(interval_s)
    except KeyboardInterrupt:
        out.write("\n")
        return 0
