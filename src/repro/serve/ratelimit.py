"""Per-client token-bucket rate limiting for the serving layer.

Each client (the ``X-Repro-Client`` header, falling back to the remote
address) owns one :class:`TokenBucket`: ``burst`` tokens of capacity
refilled at ``rate`` tokens per second on a caller-supplied monotonic
clock (injectable so tests are deterministic).  A denied acquisition
reports how long until the next token — which the HTTP layer surfaces
verbatim as ``Retry-After``.

The per-client table is bounded: when it exceeds ``max_clients`` the
stalest buckets (oldest last touch) are evicted, so an adversarial
client-id churn cannot grow server memory.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(self, rate: float, burst: float,
                 clock: Clock = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"TokenBucket needs rate > 0 and burst > 0, "
                f"got rate={rate}, burst={burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.clock = clock
        self.updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def acquire(self, n: float = 1.0) -> tuple[bool, float]:
        """Take *n* tokens; returns ``(granted, retry_after_s)`` where
        ``retry_after_s`` is 0 on grant and the wait until *n* tokens
        accumulate on denial."""
        now = self.clock()
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True, 0.0
        return False, (n - self.tokens) / self.rate


class RateLimiter:
    """Thread-safe table of per-client token buckets."""

    def __init__(self, rate: float, burst: float, max_clients: int = 1024,
                 clock: Clock = time.monotonic) -> None:
        if max_clients < 1:
            raise ValueError(
                f"RateLimiter.max_clients must be >= 1, got {max_clients}")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def acquire(self, client: str, n: float = 1.0) -> tuple[bool, float]:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._evict_stalest()
                bucket = TokenBucket(self.rate, self.burst, self.clock)
                self._buckets[client] = bucket
            return bucket.acquire(n)

    def _evict_stalest(self) -> None:
        stale = sorted(self._buckets.items(),
                       key=lambda kv: kv[1].updated)
        for client, _bucket in stale[:max(1, self.max_clients // 4)]:
            del self._buckets[client]

    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)
