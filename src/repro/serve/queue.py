"""Bounded job queue with coalescing — the admission-control core.

A :class:`Job` is one client submission; its *cell* is the underlying
``(workload, technique, scale)`` simulation keyed by the deterministic
config hash.  Duplicate submissions of an active cell **coalesce**: they
become additional jobs attached to the same in-flight cell instead of
re-simulating it, and all settle together when the cell reaches a
terminal verdict.

Backpressure is explicit: :meth:`JobQueue.submit` raises
:class:`QueueFull` (carrying a Retry-After hint) when the number of
*distinct queued cells* reaches the bound, rather than letting the
backlog — and every submitter's latency — grow without limit.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exec.failures import RunFailure
from repro.exec.spec import RunSpec

QUEUED = "queued"
RUNNING = "running"
OK = "ok"
FAILED = "failed"
QUARANTINED_STATE = "quarantined"

TERMINAL_STATES = (OK, FAILED, QUARANTINED_STATE)


class QueueFull(RuntimeError):
    """Raised at admission when the queue is at capacity."""

    def __init__(self, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"job queue full ({depth}/{limit} cells queued)")
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One client submission through its lifecycle."""

    job_id: str
    spec: RunSpec
    client: str
    state: str = QUEUED
    submitted_ts: float = field(default_factory=time.time)
    started_mono: float | None = None
    finished_mono: float | None = None
    queued_mono: float = field(default_factory=time.monotonic)
    attempts: int = 0
    cached: bool = False
    coalesced: bool = False
    failure: RunFailure | None = None

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait_s(self) -> float | None:
        if self.started_mono is None:
            return None
        return self.started_mono - self.queued_mono

    def run_s(self) -> float | None:
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.job_id, "key": self.key,
            "workload": self.spec.workload,
            "technique": self.spec.technique_name,
            "scale": self.spec.scale, "client": self.client,
            "state": self.state, "submitted_ts": self.submitted_ts,
            "attempts": self.attempts, "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.wait_s() is not None:
            out["wait_s"] = round(self.wait_s(), 6)
        if self.run_s() is not None:
            out["run_s"] = round(self.run_s(), 6)
        if self.failure is not None:
            out["failure"] = self.failure.to_dict()
        return out


class JobQueue:
    """Thread-safe bounded queue of jobs, coalesced per config hash."""

    def __init__(self, limit: int = 64, retry_after_s: float = 2.0,
                 max_done: int = 512) -> None:
        if limit < 1:
            raise ValueError(f"JobQueue.limit must be >= 1, got {limit}")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self.max_done = max_done
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._jobs: dict[str, Job] = {}          # job_id -> Job
        self._order: list[str] = []              # insertion order
        self._pending: list[str] = []            # queued cell keys, FIFO
        self._active: dict[str, list[str]] = {}  # key -> job_ids in flight

    # -- admission ----------------------------------------------------

    def submit(self, spec: RunSpec, client: str) -> Job:
        """Admit one submission; raises :class:`QueueFull` at capacity.

        A submission whose cell is already queued or running coalesces
        onto it (and is exempt from the capacity check — it adds no
        simulation work).
        """
        with self._lock:
            key = spec.key
            coalesced = key in self._active
            if not coalesced and len(self._pending) >= self.limit:
                raise QueueFull(len(self._pending), self.limit,
                                self.retry_after_s)
            job = Job(job_id=f"job-{next(self._ids)}", spec=spec,
                      client=client, coalesced=coalesced)
            self._remember(job)
            if coalesced:
                job.state = self._jobs[self._active[key][0]].state
                self._active[key].append(job.job_id)
            else:
                self._active[key] = [job.job_id]
                self._pending.append(key)
            return job

    def admit_terminal(self, spec: RunSpec, client: str, state: str,
                       *, cached: bool = False,
                       failure: RunFailure | None = None) -> Job:
        """Record a job that settles at admission time (cache hit or
        breaker quarantine) without ever entering the queue."""
        with self._lock:
            job = Job(job_id=f"job-{next(self._ids)}", spec=spec,
                      client=client, state=state, cached=cached,
                      failure=failure)
            now = time.monotonic()
            job.started_mono = job.finished_mono = now
            self._remember(job)
            return job

    def _remember(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        # Bound memory: evict the oldest *terminal* jobs beyond max_done.
        if len(self._order) > self.max_done:
            for job_id in list(self._order):
                if len(self._order) <= self.max_done:
                    break
                if self._jobs[job_id].terminal:
                    self._order.remove(job_id)
                    del self._jobs[job_id]

    # -- scheduler side -----------------------------------------------

    def next_cell(self) -> RunSpec | None:
        """Pop the oldest queued cell and mark its jobs running."""
        with self._lock:
            if not self._pending:
                return None
            key = self._pending.pop(0)
            spec = None
            now = time.monotonic()
            for job_id in self._active.get(key, ()):
                job = self._jobs[job_id]
                job.state = RUNNING
                job.started_mono = now
                spec = job.spec
            return spec

    def requeue(self, key: str) -> None:
        """Put a cell back at the head (retry after a transient failure)."""
        with self._lock:
            if key in self._active and key not in self._pending:
                self._pending.insert(0, key)
                for job_id in self._active[key]:
                    self._jobs[job_id].state = QUEUED

    def settle(self, key: str, state: str, *, attempts: int = 1,
               failure: RunFailure | None = None) -> list[Job]:
        """Finish every job riding *key*; returns the settled jobs."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"settle needs a terminal state, got {state!r}")
        with self._lock:
            settled = []
            now = time.monotonic()
            for job_id in self._active.pop(key, ()):
                job = self._jobs[job_id]
                job.state = state
                job.attempts = attempts
                job.failure = failure
                if job.started_mono is None:
                    job.started_mono = now
                job.finished_mono = now
                settled.append(job)
            if key in self._pending:       # settled while still queued
                self._pending.remove(key)
            return settled

    def bump_attempts(self, key: str, attempts: int) -> None:
        with self._lock:
            for job_id in self._active.get(key, ()):
                self._jobs[job_id].attempts = attempts

    def active_keys(self) -> list[str]:
        """Cells admitted but not yet settled (queued + running)."""
        with self._lock:
            return list(self._active)

    # -- introspection ------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def inflight(self) -> int:
        """Cells admitted but not yet settled (queued + running)."""
        with self._lock:
            return len(self._active)
