"""Bounded job queue with coalescing — the admission-control core.

A :class:`Job` is one client submission; its *cell* is the underlying
``(workload, technique, scale)`` simulation keyed by the deterministic
config hash.  Duplicate submissions of an active cell **coalesce**: they
become additional jobs attached to the same in-flight cell instead of
re-simulating it, and all settle together when the cell reaches a
terminal verdict.

Backpressure is explicit: :meth:`JobQueue.submit` raises
:class:`QueueFull` (carrying a Retry-After hint) when the number of
*distinct queued cells* reaches the bound, rather than letting the
backlog — and every submitter's latency — grow without limit.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exec.failures import RunFailure
from repro.exec.spec import RunSpec

QUEUED = "queued"
RUNNING = "running"
OK = "ok"
FAILED = "failed"
QUARANTINED_STATE = "quarantined"

TERMINAL_STATES = (OK, FAILED, QUARANTINED_STATE)


class QueueFull(RuntimeError):
    """Raised at admission when the queue is at capacity."""

    def __init__(self, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"job queue full ({depth}/{limit} cells queued)")
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One client submission through its lifecycle."""

    job_id: str
    spec: RunSpec
    client: str
    state: str = QUEUED
    submitted_ts: float = field(default_factory=time.time)
    started_mono: float | None = None
    finished_mono: float | None = None
    queued_mono: float = field(default_factory=time.monotonic)
    attempts: int = 0
    cached: bool = False
    coalesced: bool = False
    failure: RunFailure | None = None
    progress: dict | None = None   # latest in-flight frame while running
    version: int = 0               # bumped on every observable change

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait_s(self) -> float | None:
        """Queue wait: time-to-start once started, time-so-far before."""
        if self.started_mono is None:
            if self.state == QUEUED:
                return time.monotonic() - self.queued_mono
            return None
        return self.started_mono - self.queued_mono

    def run_s(self) -> float | None:
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.job_id, "key": self.key,
            "workload": self.spec.workload,
            "technique": self.spec.technique_name,
            "scale": self.spec.scale, "client": self.client,
            "state": self.state, "submitted_ts": self.submitted_ts,
            "attempts": self.attempts, "cached": self.cached,
            "coalesced": self.coalesced, "version": self.version,
        }
        if self.wait_s() is not None:
            out["wait_s"] = round(self.wait_s(), 6)
        if self.run_s() is not None:
            out["run_s"] = round(self.run_s(), 6)
        if self.failure is not None:
            out["failure"] = self.failure.to_dict()
        if self.progress is not None:
            out["progress"] = self.progress
        return out


class JobQueue:
    """Thread-safe bounded queue of jobs, coalesced per config hash."""

    def __init__(self, limit: int = 64, retry_after_s: float = 2.0,
                 max_done: int = 512) -> None:
        if limit < 1:
            raise ValueError(f"JobQueue.limit must be >= 1, got {limit}")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self.max_done = max_done
        self._lock = threading.Lock()
        # Long-poll wakeups: every observable job change bumps the job's
        # version and notifies.  HTTP threads wait on this condition; the
        # scheduler thread is the only notifier, so wakeups are cheap.
        self._changed = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._jobs: dict[str, Job] = {}          # job_id -> Job
        self._order: list[str] = []              # insertion order
        self._pending: list[str] = []            # queued cell keys, FIFO
        self._active: dict[str, list[str]] = {}  # key -> job_ids in flight

    # -- admission ----------------------------------------------------

    def submit(self, spec: RunSpec, client: str) -> Job:
        """Admit one submission; raises :class:`QueueFull` at capacity.

        A submission whose cell is already queued or running coalesces
        onto it (and is exempt from the capacity check — it adds no
        simulation work).
        """
        with self._lock:
            key = spec.key
            coalesced = key in self._active
            if not coalesced and len(self._pending) >= self.limit:
                raise QueueFull(len(self._pending), self.limit,
                                self.retry_after_s)
            job = Job(job_id=f"job-{next(self._ids)}", spec=spec,
                      client=client, coalesced=coalesced)
            self._remember(job)
            if coalesced:
                job.state = self._jobs[self._active[key][0]].state
                self._active[key].append(job.job_id)
            else:
                self._active[key] = [job.job_id]
                self._pending.append(key)
            return job

    def admit_terminal(self, spec: RunSpec, client: str, state: str,
                       *, cached: bool = False,
                       failure: RunFailure | None = None) -> Job:
        """Record a job that settles at admission time (cache hit or
        breaker quarantine) without ever entering the queue."""
        with self._lock:
            job = Job(job_id=f"job-{next(self._ids)}", spec=spec,
                      client=client, state=state, cached=cached,
                      failure=failure)
            now = time.monotonic()
            job.started_mono = job.finished_mono = now
            self._remember(job)
            return job

    def _remember(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        # Bound memory: evict the oldest *terminal* jobs beyond max_done.
        if len(self._order) > self.max_done:
            for job_id in list(self._order):
                if len(self._order) <= self.max_done:
                    break
                if self._jobs[job_id].terminal:
                    self._order.remove(job_id)
                    del self._jobs[job_id]

    # -- scheduler side -----------------------------------------------

    def next_cell(self) -> RunSpec | None:
        """Pop the oldest queued cell and mark its jobs running."""
        with self._lock:
            if not self._pending:
                return None
            key = self._pending.pop(0)
            spec = None
            now = time.monotonic()
            for job_id in self._active.get(key, ()):
                job = self._jobs[job_id]
                job.state = RUNNING
                job.started_mono = now
                job.version += 1
                spec = job.spec
            self._changed.notify_all()
            return spec

    def requeue(self, key: str) -> None:
        """Put a cell back at the head (retry after a transient failure)."""
        with self._lock:
            if key in self._active and key not in self._pending:
                self._pending.insert(0, key)
                for job_id in self._active[key]:
                    job = self._jobs[job_id]
                    job.state = QUEUED
                    job.version += 1
                self._changed.notify_all()

    def settle(self, key: str, state: str, *, attempts: int = 1,
               failure: RunFailure | None = None) -> list[Job]:
        """Finish every job riding *key*; returns the settled jobs."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"settle needs a terminal state, got {state!r}")
        with self._lock:
            settled = []
            now = time.monotonic()
            for job_id in self._active.pop(key, ()):
                job = self._jobs[job_id]
                job.state = state
                job.attempts = attempts
                job.failure = failure
                if job.started_mono is None:
                    job.started_mono = now
                job.finished_mono = now
                job.version += 1
                settled.append(job)
            if key in self._pending:       # settled while still queued
                self._pending.remove(key)
            self._changed.notify_all()
            return settled

    def bump_attempts(self, key: str, attempts: int) -> None:
        with self._lock:
            for job_id in self._active.get(key, ()):
                job = self._jobs[job_id]
                job.attempts = attempts
                job.version += 1
            self._changed.notify_all()

    def note_progress(self, key: str, frame: dict) -> list[Job]:
        """Attach a live progress frame to every job riding *key*;
        returns the jobs it landed on (empty when the cell settled
        before the frame arrived)."""
        with self._lock:
            updated = []
            for job_id in self._active.get(key, ()):
                job = self._jobs[job_id]
                job.progress = frame
                job.version += 1
                updated.append(job)
            if updated:
                self._changed.notify_all()
            return updated

    def active_keys(self) -> list[str]:
        """Cells admitted but not yet settled (queued + running)."""
        with self._lock:
            return list(self._active)

    def jobs_for(self, key: str) -> list[Job]:
        """The jobs currently riding an active cell."""
        with self._lock:
            return [self._jobs[job_id]
                    for job_id in self._active.get(key, ())]

    # -- introspection ------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait_for_change(self, job_id: str, version: int,
                        timeout_s: float) -> Job | None:
        """Long-poll primitive: block until the job's version exceeds
        *version* (state flip, attempt bump, or progress frame), the job
        is terminal, or *timeout_s* elapses.  Returns the job as it
        stands at wakeup (current state on timeout — never an error),
        or ``None`` when the job id is unknown.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._changed:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return None
                if job.version > version or job.terminal:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
                self._changed.wait(remaining)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def inflight(self) -> int:
        """Cells admitted but not yet settled (queued + running)."""
        with self._lock:
            return len(self._active)
