"""Per-config-hash circuit breaker for the serving layer.

A config that keeps crashing or hanging burns a worker (and its restart
cost) every time it is submitted.  The breaker watches **terminal**
failures per config hash, classified by the executor's taxonomy
(:mod:`repro.exec.failures`):

* ``closed``    — healthy; jobs run normally;
* ``open``      — ``threshold`` consecutive crash/hang verdicts were
  recorded; submissions short-circuit to an immediate ``quarantined``
  failure verdict carrying the recorded history, no worker is touched;
* ``half-open`` — ``cooldown_s`` after opening, exactly one trial job is
  let through; success closes the breaker, failure reopens it (and
  restarts the cooldown).

``invalid-config`` failures never trip the breaker — they are rejected
at admission (HTTP 400) before reaching it, and they say nothing about
the health of the simulation path.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.exec.failures import CRASH, HANG, QUARANTINED, RunFailure

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

# Failure kinds that count toward opening the breaker.
TRIP_KINDS = (CRASH, HANG)


class _Entry:
    __slots__ = ("consecutive", "history", "opened_at", "state",
                 "trial_inflight", "opens")

    def __init__(self) -> None:
        self.consecutive = 0
        self.history: list[dict[str, Any]] = []
        self.opened_at = 0.0
        self.state = CLOSED
        self.trial_inflight = False
        self.opens = 0


class CircuitBreaker:
    """Thread-safe breaker table keyed by deterministic config hash."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 300.0,
                 history_limit: int = 16,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(
                f"CircuitBreaker.threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(
                f"CircuitBreaker.cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.history_limit = history_limit
        self.clock = clock
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()

    def _entry(self, key: str) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry()
            self._entries[key] = entry
        return entry

    def state(self, key: str) -> str:
        """Current state, promoting ``open`` to ``half-open`` once the
        cooldown has elapsed."""
        with self._lock:
            return self._state_locked(key)

    def _state_locked(self, key: str) -> str:
        entry = self._entries.get(key)
        if entry is None or entry.state == CLOSED:
            return CLOSED
        if (entry.state == OPEN
                and self.clock() - entry.opened_at >= self.cooldown_s):
            entry.state = HALF_OPEN
            entry.trial_inflight = False
        return entry.state

    def admit(self, key: str) -> tuple[bool, str]:
        """Admission decision for one job: ``(run_it, state)``.

        ``half-open`` admits exactly one in-flight trial; concurrent
        submissions of the same key stay short-circuited until the trial
        settles.
        """
        with self._lock:
            state = self._state_locked(key)
            if state == CLOSED:
                return True, state
            entry = self._entry(key)
            if state == HALF_OPEN and not entry.trial_inflight:
                entry.trial_inflight = True
                return True, state
            return False, state

    def record_success(self, key: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            entry.consecutive = 0
            entry.state = CLOSED
            entry.trial_inflight = False

    def record_failure(self, key: str, kind: str, message: str) -> str:
        """Record a terminal failure verdict; returns the new state."""
        with self._lock:
            entry = self._entry(key)
            entry.trial_inflight = False
            if kind not in TRIP_KINDS:
                return self._state_locked(key)
            entry.consecutive += 1
            entry.history.append({
                "kind": kind, "message": message,
                "ts": round(time.time(), 3)})
            del entry.history[:-self.history_limit]
            if (entry.state == HALF_OPEN
                    or entry.consecutive >= self.threshold):
                entry.state = OPEN
                entry.opened_at = self.clock()
                entry.opens += 1
            return entry.state

    def history(self, key: str) -> list[dict[str, Any]]:
        with self._lock:
            entry = self._entries.get(key)
            return list(entry.history) if entry is not None else []

    def quarantine_failure(self, key: str, workload: str,
                           technique: str) -> RunFailure:
        """The immediate failure verdict for a short-circuited job."""
        history = self.history(key)
        last = history[-1] if history else {}
        return RunFailure(
            key=key, workload=workload, technique=technique,
            kind=QUARANTINED,
            message=(f"circuit open after {len(history)} recorded "
                     f"crash/hang failure(s); last: "
                     f"{last.get('kind', '?')} — "
                     f"{last.get('message', 'no history')}"))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready view of every non-closed entry (health endpoint,
        dashboard)."""
        with self._lock:
            out = {}
            for key in sorted(self._entries):
                state = self._state_locked(key)
                entry = self._entries[key]
                if state == CLOSED and not entry.opens:
                    continue
                out[key] = {"state": state,
                            "consecutive": entry.consecutive,
                            "opens": entry.opens,
                            "history": list(entry.history)}
            return out
