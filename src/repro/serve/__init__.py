"""Simulation as a service: the robustness layer behind ``repro serve``.

The batch executor (:mod:`repro.exec`) runs a fixed cell matrix and
exits; this package keeps a simulator fleet alive behind an HTTP
endpoint, able to absorb crashes, hangs, floods and disk corruption
without falling over (design rationale in ``docs/serving.md``):

* :mod:`repro.serve.pool`      — warm worker pool with heartbeats and
  automatic restart (:class:`WorkerPool`);
* :mod:`repro.serve.queue`     — bounded, coalescing job queue
  (:class:`JobQueue`, :class:`QueueFull`);
* :mod:`repro.serve.ratelimit` — per-client token buckets
  (:class:`RateLimiter`, :class:`TokenBucket`);
* :mod:`repro.serve.breaker`   — per-config-hash circuit breaker
  (:class:`CircuitBreaker`);
* :mod:`repro.serve.store`     — crash-safe content-addressed result
  store (:class:`ResultStore`);
* :mod:`repro.serve.server`    — the HTTP front end and scheduler
  (:class:`ReproServer`, :class:`ServeConfig`);
* :mod:`repro.serve.events`    — live event fan-out and bounded metric
  history (:class:`EventBroker`, :class:`MetricsRing`);
* :mod:`repro.serve.client`    — stdlib client used by ``repro submit``
  (:class:`ServeClient`);
* :mod:`repro.serve.top`       — the self-refreshing ``repro top``
  terminal view.
"""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.events import EventBroker, EventSubscription, MetricsRing
from repro.serve.pool import Completion, WorkerPool
from repro.serve.queue import (
    FAILED,
    OK,
    QUARANTINED_STATE,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobQueue,
    QueueFull,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.server import (
    Reject,
    ReproServer,
    ServeConfig,
    install_serve_metrics,
)
from repro.serve.store import ResultStore, record_digest

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "Completion",
    "EventBroker",
    "EventSubscription",
    "FAILED",
    "HALF_OPEN",
    "Job",
    "MetricsRing",
    "JobQueue",
    "OK",
    "OPEN",
    "QUARANTINED_STATE",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "RateLimiter",
    "Reject",
    "ReproServer",
    "ResultStore",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "TERMINAL_STATES",
    "TokenBucket",
    "WorkerPool",
    "install_serve_metrics",
    "record_digest",
]
