"""Warm worker pool: long-lived isolated simulation processes.

The batch executor (:mod:`repro.exec.executor`) pays a process spawn per
cell — correct for sweeps, wasteful for a server where cells arrive one
at a time forever.  The pool keeps ``size`` worker processes **warm**:
each imports the simulator once and then loops, receiving one
:class:`~repro.exec.spec.RunSpec` at a time over its pipe and reporting
a classified verdict back, reusing the executor's process-isolation
guarantees (a crash or hang takes down the worker, never the server).

Health machinery:

* a worker that dies mid-job surfaces as a ``crash`` verdict and is
  **restarted** automatically;
* a worker that blows the per-job wall-clock deadline is killed,
  classified ``hang``, and restarted;
* **idle workers are heartbeated** (ping/pong over the job pipe); one
  that stops answering is declared wedged and restarted — so a stuck
  worker cannot silently shrink capacity;
* :meth:`WorkerPool.drain` stops dispatch, waits for in-flight jobs up
  to a deadline, then shuts every worker down cleanly (kill only as the
  last resort).

Fault injection (:class:`~repro.exec.faults.FaultPlan`) is honoured in
the worker exactly as in the batch executor, with one sharpening: an
injected ``crash`` kills the worker process outright (``os._exit``),
exercising the death-detection and restart path rather than the
in-process exception path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable

from repro.cores.base import SimulationError
from repro.exec.failures import CRASH, HANG, INVALID_CONFIG
from repro.exec.faults import FaultPlan, InjectedCrash, apply_fault
from repro.exec.spec import RunSpec, execute_spec
from repro.obs.progress import ProgressConfig, advancing

# Exit code a worker uses for an injected crash, distinguishable from an
# interpreter fatality in the restart log.
_INJECTED_EXIT = 23

_PING_TIMEOUT_S = 5.0


def _pool_worker_main(conn) -> None:
    """Worker process body: serve jobs until told to stop.

    While a job runs, the worker may interleave zero or more
    ``("progress", frame_dict)`` messages on the pipe before the single
    terminal ``("ok", ...)`` / ``("fail", ...)`` reply — the parent's
    harvest treats any non-terminal message as a live snapshot.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "ping":
            try:
                conn.send(("pong", message[1]))
            except (OSError, BrokenPipeError):
                break
            continue
        if kind != "run":
            continue
        _, spec, attempt, faults = message[:4]
        progress = message[4] if len(message) > 4 else None
        reporter = None
        if progress is not None:
            def _ship(frame) -> None:
                try:
                    conn.send(("progress", frame.to_dict()))
                except (OSError, BrokenPipeError):
                    pass       # parent gone; terminal send will notice
            reporter = progress.reporter(
                _ship, workload=spec.workload,
                technique=spec.technique_name)
        try:
            reply = _run_job(spec, attempt, faults, reporter)
        except InjectedCrash:
            try:
                conn.close()
            except OSError:
                pass
            os._exit(_INJECTED_EXIT)   # the real thing: die, don't report
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            break
    try:
        conn.close()
    except OSError:
        pass


def _run_job(spec: RunSpec, attempt: int, faults: FaultPlan | None,
             reporter: Any = None) -> tuple:
    """One cell in the warm worker; classified like the batch executor."""
    try:
        if faults is not None and faults.active:
            kind = faults.decide(spec.key, spec.workload,
                                 spec.technique_name, attempt)
            if kind is not None:
                apply_fault(kind, inline=False, label=spec.label())
        return ("ok", execute_spec(spec, progress=reporter))
    except InjectedCrash:
        raise
    except SimulationError as exc:
        return ("fail", HANG, str(exc),
                {"cycle": exc.cycle, "pc": exc.pc})
    except (KeyError, ValueError, TypeError) as exc:
        return ("fail", INVALID_CONFIG, f"{type(exc).__name__}: {exc}", {})
    except BaseException as exc:   # noqa: BLE001 — report, stay warm
        return ("fail", CRASH, f"{type(exc).__name__}: {exc}",
                {"traceback": traceback_mod.format_exc(limit=20)})


@dataclass
class Completion:
    """One settled job attempt, as the scheduler sees it."""

    spec: RunSpec
    attempt: int
    status: str                    # 'ok' | 'fail'
    result: dict | None = None
    kind: str | None = None        # failure taxonomy when status == 'fail'
    message: str = ""
    extra: dict = field(default_factory=dict)
    worker_restarted: bool = False


class _Worker:
    __slots__ = ("index", "proc", "conn", "state", "spec", "attempt",
                 "deadline", "started", "jobs_done", "ping_sent",
                 "ping_deadline", "last_frame")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: mp.process.BaseProcess | None = None
        self.conn: Any = None
        self.state = "idle"            # 'idle' | 'busy' | 'dead'
        self.spec: RunSpec | None = None
        self.attempt = 0
        self.deadline: float | None = None
        self.started = 0.0
        self.jobs_done = 0
        self.ping_sent: float | None = None
        self.ping_deadline: float | None = None
        self.last_frame: dict | None = None   # latest progress snapshot


class WorkerPool:
    """Fixed-size pool of warm simulation workers.

    Single-consumer by design: dispatch/poll/drain are called from the
    server's one scheduler thread (the HTTP threads never touch worker
    pipes).
    """

    def __init__(self, size: int, timeout_s: float | None = None,
                 faults: FaultPlan | None = None,
                 heartbeat_s: float = 5.0,
                 on_event: Callable[..., None] | None = None,
                 progress: ProgressConfig | None = None) -> None:
        if size < 1:
            raise ValueError(f"WorkerPool.size must be >= 1, got {size}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(
                f"WorkerPool.timeout_s must be > 0, got {timeout_s}")
        self.size = size
        self.timeout_s = timeout_s
        self.faults = faults
        self.heartbeat_s = heartbeat_s
        self.progress = progress
        self.on_event = on_event or (lambda _event, **_f: None)
        self.restarts = 0
        self._ctx = mp.get_context()
        self._workers = [_Worker(i) for i in range(size)]
        self._started = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        for worker in self._workers:
            self._spawn(worker)
        self._started = True

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True,
            name=f"repro-serve-w{worker.index}")
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.state = "idle"
        worker.spec = None
        worker.deadline = None
        worker.ping_sent = None
        worker.ping_deadline = None
        worker.last_frame = None
        self.on_event("start", worker=worker.index, pid=proc.pid)

    def _reap(self, worker: _Worker) -> None:
        proc = worker.proc
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
            proc.close()
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
        worker.proc = None
        worker.conn = None
        worker.state = "dead"

    def _restart(self, worker: _Worker, reason: str) -> None:
        self.restarts += 1
        self.on_event("restart", worker=worker.index, reason=reason)
        self._reap(worker)
        self._spawn(worker)

    # -- dispatch -----------------------------------------------------

    def idle_count(self) -> int:
        return sum(1 for w in self._workers if w.state == "idle")

    def busy_count(self) -> int:
        return sum(1 for w in self._workers if w.state == "busy")

    def dispatch(self, spec: RunSpec, attempt: int) -> bool:
        """Hand one cell to an idle worker; False when none is free."""
        for worker in self._workers:
            if worker.state != "idle":
                continue
            try:
                worker.conn.send(("run", spec, attempt, self.faults,
                                  self.progress))
            except (OSError, BrokenPipeError):
                self._restart(worker, "dead at dispatch")
                continue
            worker.state = "busy"
            worker.spec = spec
            worker.attempt = attempt
            worker.started = time.monotonic()
            worker.deadline = (worker.started + self.timeout_s
                               if self.timeout_s is not None else None)
            worker.ping_sent = None
            worker.ping_deadline = None
            worker.last_frame = None
            return True
        return False

    # -- harvest ------------------------------------------------------

    def poll(self, timeout: float) -> list[Completion]:
        """Wait up to *timeout* for completions; also runs deadline
        enforcement and idle heartbeats."""
        completions: list[Completion] = []
        now = time.monotonic()
        horizons = [now + timeout]
        horizons += [w.deadline for w in self._workers
                     if w.state == "busy" and w.deadline is not None]
        horizons += [w.ping_deadline for w in self._workers
                     if w.ping_deadline is not None]
        conns = [w.conn for w in self._workers
                 if w.conn is not None and w.state in ("idle", "busy")]
        wait_s = max(0.0, min(horizons) - now)
        ready = mp_connection.wait(conns, timeout=wait_s) if conns else []
        for worker in list(self._workers):
            if worker.conn in ready:
                completion = self._harvest(worker)
                if completion is not None:
                    completions.append(completion)
        now = time.monotonic()
        for worker in self._workers:
            if (worker.state == "busy" and worker.deadline is not None
                    and now >= worker.deadline):
                completions.append(self._expire(worker))
            elif (worker.ping_deadline is not None
                    and now >= worker.ping_deadline):
                self._restart(worker, "heartbeat timeout")
        self._heartbeat(now)
        return completions

    def _harvest(self, worker: _Worker) -> Completion | None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            return self._died(worker)
        if message[0] == "pong":
            worker.ping_sent = None
            worker.ping_deadline = None
            return None
        if message[0] == "progress":
            if worker.state == "busy" and worker.spec is not None:
                self._note_progress(worker, message[1])
            return None
        if worker.state != "busy" or worker.spec is None:
            return None                 # stray message from a stopping worker
        spec, attempt = worker.spec, worker.attempt
        worker.state = "idle"
        worker.spec = None
        worker.deadline = None
        worker.last_frame = None
        worker.jobs_done += 1
        if message[0] == "ok":
            return Completion(spec=spec, attempt=attempt, status="ok",
                              result=message[1])
        _, kind, text, extra = message
        return Completion(spec=spec, attempt=attempt, status="fail",
                          kind=kind, message=text, extra=extra or {})

    def _note_progress(self, worker: _Worker, frame: dict) -> None:
        """A live snapshot from a busy worker: record it, extend the
        wall-clock fence when the *simulated* clock advanced, and hand
        the frame to the server."""
        if (worker.deadline is not None and self.timeout_s is not None
                and advancing(worker.last_frame, frame)):
            worker.deadline = time.monotonic() + self.timeout_s
        worker.last_frame = frame
        self.on_event("progress", worker=worker.index,
                      key=worker.spec.key, attempt=worker.attempt,
                      frame=frame)

    def _died(self, worker: _Worker) -> Completion | None:
        """Pipe EOF: the worker process is gone."""
        spec, attempt = worker.spec, worker.attempt
        frame = worker.last_frame
        exitcode = worker.proc.exitcode if worker.proc is not None else None
        busy = worker.state == "busy" and spec is not None
        self._restart(worker, f"worker died (exit code {exitcode})")
        if not busy:
            return None
        extra: dict = {}
        if frame is not None:
            extra = {"cycle": frame.get("cycle"), "pc": frame.get("pc"),
                     "progress": frame}
        return Completion(
            spec=spec, attempt=attempt, status="fail", kind=CRASH,
            message=(f"worker died without reporting a result "
                     f"(exit code {exitcode})"),
            extra=extra, worker_restarted=True)

    def _expire(self, worker: _Worker) -> Completion:
        spec, attempt = worker.spec, worker.attempt
        frame = worker.last_frame
        elapsed = time.monotonic() - worker.started
        self._restart(worker, f"deadline exceeded after {elapsed:.1f}s")
        if frame is not None:
            text = (f"stalled: no simulated-cycle advance within "
                    f"{self.timeout_s:g}s — last frame at cycle "
                    f"{frame.get('cycle')}, pc {frame.get('pc')}, "
                    f"phase {frame.get('phase')} (attempt {attempt})")
            extra = {"cycle": frame.get("cycle"), "pc": frame.get("pc"),
                     "progress": frame}
        else:
            text = (f"wall-clock timeout: no result within "
                    f"{self.timeout_s:g}s (attempt {attempt})")
            extra = {}
        return Completion(
            spec=spec, attempt=attempt, status="fail", kind=HANG,
            message=text, extra=extra, worker_restarted=True)

    def _heartbeat(self, now: float) -> None:
        for worker in self._workers:
            if (worker.state != "idle" or worker.conn is None
                    or worker.ping_sent is not None):
                continue
            worker.ping_sent = now
            worker.ping_deadline = now + _PING_TIMEOUT_S
            try:
                worker.conn.send(("ping", now))
            except (OSError, BrokenPipeError):
                self._restart(worker, "dead at heartbeat")

    # -- shutdown -----------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> list[Completion]:
        """Finish in-flight work (bounded), then stop every worker."""
        deadline = time.monotonic() + timeout_s
        completions: list[Completion] = []
        while (self.busy_count()
               and time.monotonic() < deadline):
            completions.extend(self.poll(0.2))
        for worker in self._workers:
            if worker.state == "busy":    # still stuck at the deadline
                completions.append(self._expire(worker))
        self.stop()
        return completions

    def stop(self) -> None:
        for worker in self._workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for worker in self._workers:
            if worker.proc is not None:
                worker.proc.join(timeout=2.0)
            self._reap(worker)
        self._started = False

    def snapshot(self) -> list[dict[str, Any]]:
        out = []
        for worker in self._workers:
            out.append({
                "worker": worker.index,
                "pid": (worker.proc.pid
                        if worker.proc is not None else None),
                "state": worker.state,
                "jobs_done": worker.jobs_done,
                "running": (worker.spec.label()
                            if worker.spec is not None else None),
                "progress": worker.last_frame,
            })
        return out
