"""Live event fan-out and bounded metric history for the serve layer.

Two small, fully in-memory primitives back the streaming endpoints:

* :class:`EventBroker` — a publish/subscribe hub for job lifecycle,
  progress, and breaker events.  Each subscriber owns a **bounded**
  queue; when a slow consumer falls behind, the broker drops that
  subscriber's *oldest* events (counting them) rather than blocking the
  publisher — the scheduler thread must never wait on an HTTP client.
  A small replay ring lets a new subscriber ask for recent history
  (``/events?replay=N``), which also makes streaming tests
  deterministic.
* :class:`MetricsRing` — a bounded ring of periodic gauge samples
  (queue depth, busy workers, jobs done ...) the scheduler pushes every
  couple of seconds.  ``/metrics/history`` serves it; the report
  dashboard sparkles it.

Both are internally locked and safe to touch from HTTP handler threads
while the scheduler publishes.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any


class EventSubscription:
    """One subscriber's bounded view of the event stream."""

    def __init__(self, broker: "EventBroker", maxlen: int,
                 backlog: list[dict[str, Any]]) -> None:
        self._broker = broker
        self._queue: deque[dict[str, Any]] = deque(backlog, maxlen=maxlen)
        self._cond = threading.Condition()
        self.dropped = 0
        self.closed = False

    def _push(self, event: dict[str, Any]) -> None:
        with self._cond:
            if len(self._queue) == self._queue.maxlen:
                self.dropped += 1
            self._queue.append(event)
            self._cond.notify()

    def get(self, timeout_s: float | None = None) -> dict[str, Any] | None:
        """Next event, blocking up to *timeout_s* (None on timeout or
        after :meth:`close`)."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        with self._cond:
            while not self._queue:
                if self.closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._queue.popleft()

    def close(self) -> None:
        self.closed = True
        self._broker.unsubscribe(self)
        with self._cond:
            self._cond.notify_all()


class EventBroker:
    """Bounded, non-blocking pub/sub for serve events."""

    def __init__(self, queue_size: int = 256, replay_size: int = 64) -> None:
        if queue_size < 1:
            raise ValueError(
                f"EventBroker.queue_size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._subscribers: list[EventSubscription] = []
        self._replay: deque[dict[str, Any]] = deque(maxlen=max(replay_size, 1))
        self.published = 0

    def publish(self, event_type: str, **fields: Any) -> dict[str, Any]:
        """Stamp and fan out one event; never blocks.  Fields must not
        use the reserved keys ``seq``/``ts``/``event``."""
        event = {"seq": next(self._seq), "ts": round(time.time(), 6),
                 "event": event_type, **fields}
        with self._lock:
            self.published += 1
            self._replay.append(event)
            subscribers = list(self._subscribers)
        for sub in subscribers:
            sub._push(event)
        return event

    def subscribe(self, replay: int = 0) -> EventSubscription:
        """New subscriber; *replay* pre-seeds it with up to that many of
        the most recent events."""
        with self._lock:
            backlog = (list(self._replay)[-replay:] if replay > 0 else [])
            sub = EventSubscription(self, self.queue_size, backlog)
            self._subscribers.append(sub)
            return sub

    def unsubscribe(self, sub: EventSubscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)


class MetricsRing:
    """Bounded ring of periodic point-in-time samples."""

    def __init__(self, size: int = 512) -> None:
        if size < 1:
            raise ValueError(f"MetricsRing.size must be >= 1, got {size}")
        self._lock = threading.Lock()
        self._samples: deque[dict[str, Any]] = deque(maxlen=size)

    def push(self, sample: dict[str, Any]) -> dict[str, Any]:
        stamped = {"ts": round(time.time(), 6), **sample}
        with self._lock:
            self._samples.append(stamped)
        return stamped

    def snapshot(self, last: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            samples = list(self._samples)
        return samples[-last:] if last else samples

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)
