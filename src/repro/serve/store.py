"""Crash-safe content-addressed result store.

The resume journal (:mod:`repro.exec.journal`) is an append-only ledger:
correct, but linear to read and only as durable as its single file.  The
serving layer promotes completed cells into a **content-addressed
store** — one file per deterministic config hash
(:attr:`repro.exec.spec.RunSpec.key`), so a resubmitted cell is a cache
hit served byte-identically without replaying a journal.

Durability and corruption model:

* every entry is written to a temp file in the store directory, flushed,
  fsynced and then :func:`os.replace`'d into place — a crash mid-write
  leaves either the old entry or no entry, never a torn one;
* every entry embeds a sha256 over the canonical JSON of its record; a
  read that finds bad JSON, a checksum mismatch or a key mismatch
  **quarantines** the file (renamed to ``*.corrupt``) and reports a
  miss, so the cell is simply re-simulated instead of crashing the
  service;
* :meth:`ResultStore.rebuild` replays a journal to repopulate entries
  lost to quarantine.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.exec.journal import RunJournal

STORE_VERSION = 1

_KEY_CHARS = set("0123456789abcdef")


def _canonical(record: dict[str, Any]) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=str).encode("utf-8")


def record_digest(record: dict[str, Any]) -> str:
    """sha256 hex digest of the canonical JSON of *record*."""
    return hashlib.sha256(_canonical(record)).hexdigest()


class ResultStore:
    """Directory of checksummed result records keyed by config hash."""

    def __init__(self, root: str | os.PathLike,
                 on_corrupt: Callable[[str, str], None] | None = None,
                 ) -> None:
        self.root = Path(root)
        self.on_corrupt = on_corrupt
        self.corrupt_detected = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        if not key or not set(key) <= _KEY_CHARS:
            raise ValueError(f"store key must be a hex config hash, "
                             f"got {key!r}")
        return self.root / f"{key}.json"

    def entry_path(self, key: str) -> Path:
        """Where *key*'s entry lives (or would live); the raw-bytes
        endpoint reads this file directly after a validated ``get``."""
        return self._path(key)

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def put(self, key: str, record: dict[str, Any]) -> Path:
        """Atomically write *record* under *key* (last write wins)."""
        path = self._path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"v": STORE_VERSION, "key": key,
                 "sha256": record_digest(record), "record": record}
        blob = json.dumps(entry, sort_keys=True, default=str)
        fd, tmp_name = tempfile.mkstemp(dir=self.root,
                                        prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored record for *key*, or None on miss **or** on a
        corrupt entry (which is quarantined, never raised)."""
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(path, key, f"unreadable: {exc}")
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path, key, "invalid JSON")
            return None
        if not isinstance(entry, dict) or "record" not in entry:
            self._quarantine(path, key, "malformed entry")
            return None
        record = entry["record"]
        if (entry.get("key") != key
                or entry.get("sha256") != record_digest(record)):
            self._quarantine(path, key, "checksum mismatch")
            return None
        return record

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        self.corrupt_detected += 1
        target = path.with_suffix(f".corrupt.{int(time.time())}")
        try:
            os.replace(path, target)
        except OSError:
            pass
        if self.on_corrupt is not None:
            self.on_corrupt(key, reason)

    def verify(self) -> tuple[list[str], list[str]]:
        """Read every entry; returns ``(ok_keys, quarantined_keys)``.
        Corrupt entries are quarantined as a side effect, exactly as a
        :meth:`get` would have."""
        ok, bad = [], []
        for key in self.keys():
            (ok if self.get(key) is not None else bad).append(key)
        return ok, bad

    def rebuild(self, journal: str | os.PathLike | RunJournal) -> int:
        """Repopulate from a journal's successful cell records; returns
        the number of entries written.  Existing healthy entries keep
        their bytes (the journal record is identical content)."""
        if not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        written = 0
        for key, record in journal.load().items():
            if record.get("status") != "ok" or record.get("result") is None:
                continue
            if key in self and self.get(key) is not None:
                continue
            self.put(key, record)
            written += 1
        return written
