"""Stdlib HTTP client for a running ``repro serve`` instance.

Used by the ``repro submit`` / ``repro jobs`` CLI subcommands, the test
suite and the CI smoke job.  Backpressure is first-class: a 429 surfaces
as :class:`ServeClientError` carrying the server's ``Retry-After`` hint,
and :meth:`ServeClient.submit` can optionally honour it in a bounded
retry loop instead of failing the caller.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator


class ServeClientError(RuntimeError):
    """An HTTP-level refusal or failure from the serving endpoint."""

    def __init__(self, status: int, message: str,
                 retry_after_s: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after_s = retry_after_s


class ServeClient:
    """Thin JSON-over-HTTP client bound to one server base URL."""

    def __init__(self, base_url: str, client_id: str | None = None,
                 timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> tuple[int, bytes]:
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode(errors="replace")
            retry_after = exc.headers.get("Retry-After")
            raise ServeClientError(
                exc.code, message,
                float(retry_after) if retry_after else None) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict[str, Any]:
        _status, raw = self._request(method, path, payload)
        return json.loads(raw)

    # -- endpoints ----------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._json("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``/metrics``."""
        _status, raw = self._request("GET", "/metrics?format=prometheus")
        return raw.decode("utf-8")

    def history(self, last: int = 0) -> list[dict[str, Any]]:
        """Recent periodic samples from the server's metrics ring."""
        path = "/metrics/history" + (f"?last={last}" if last else "")
        return self._json("GET", path)["samples"]

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str, wait_s: float | None = None,
            version: int | None = None) -> dict[str, Any]:
        """Fetch one job; ``wait_s`` long-polls until its version
        exceeds *version* (or any change when *version* is omitted),
        returning the current state on timeout."""
        path = f"/jobs/{job_id}"
        if wait_s is not None:
            path += f"?wait={wait_s:g}"
            if version is not None:
                path += f"&version={version}"
        return self._json("GET", path)

    def events(self, limit: int = 0, replay: int = 0,
               heartbeats: bool = False) -> Iterator[dict[str, Any]]:
        """Stream ``/events`` as parsed ndjson dicts.

        ``limit`` bounds the stream server-side (it closes after that
        many real events); heartbeat keepalives are filtered out unless
        *heartbeats* is set.  urllib undoes the chunked transfer
        encoding, so each iterated line is one event.
        """
        query = []
        if limit:
            query.append(f"limit={limit}")
        if replay:
            query.append(f"replay={replay}")
        path = "/events" + ("?" + "&".join(query) if query else "")
        headers = {"Accept": "application/x-ndjson"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        request = urllib.request.Request(self.base_url + path,
                                         headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                for line in resp:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if (event.get("event") == "heartbeat"
                            and not heartbeats):
                        continue
                    yield event
        except urllib.error.URLError as exc:
            raise ServeClientError(
                0, f"cannot stream {self.base_url}{path}: "
                   f"{getattr(exc, 'reason', exc)}") from None

    def spans(self) -> list[dict[str, Any]]:
        return self._json("GET", "/admin/spans")["spans"]

    def result_bytes(self, key: str) -> bytes:
        """Raw store-entry bytes for *key* (byte-identity checks)."""
        _status, raw = self._request("GET", f"/results/{key}")
        return raw

    def drain(self) -> dict[str, Any]:
        return self._json("POST", "/admin/drain")

    def submit(self, workload: str, technique: str, *,
               scale: str = "bench", warmup: int | None = None,
               measure: int | None = None,
               backpressure_timeout_s: float = 0.0) -> dict[str, Any]:
        """Submit one cell; returns the job dict (state may already be
        terminal for cache hits and quarantined configs).

        ``backpressure_timeout_s > 0`` retries 429 refusals, sleeping
        the server's Retry-After hint, until the deadline.
        """
        payload: dict[str, Any] = {"workload": workload,
                                   "technique": technique, "scale": scale}
        if warmup is not None:
            payload["warmup"] = warmup
        if measure is not None:
            payload["measure"] = measure
        deadline = time.monotonic() + backpressure_timeout_s
        while True:
            try:
                return self._json("POST", "/jobs", payload)["job"]
            except ServeClientError as exc:
                if exc.status != 429 or time.monotonic() >= deadline:
                    raise
                time.sleep(min(exc.retry_after_s or 0.5,
                               max(0.0, deadline - time.monotonic())))

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> dict[str, Any]:
        """Block until the job reaches a terminal state; returns the
        final ``{"job": ..., "result": ...}`` payload.

        Long-polls ``GET /jobs/<id>?wait=...`` so state flips surface
        immediately; *poll_s* only paces the loop when the server
        answers without blocking (old servers, instant changes).
        """
        deadline = time.monotonic() + timeout_s
        version: int | None = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    0, f"job {job_id} not terminal after {timeout_s:g}s")
            chunk = min(remaining, 15.0, max(self.timeout_s - 5.0, 1.0))
            payload = self.job(job_id, wait_s=chunk, version=version)
            job = payload["job"]
            if job["state"] in ("ok", "failed", "quarantined"):
                return payload
            new_version = job.get("version")
            if new_version is not None and new_version == version:
                time.sleep(poll_s)     # nothing changed; don't spin
            version = new_version
