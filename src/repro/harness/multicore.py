"""Multicore extension (paper Section VI-E, future work).

Fig 18 shows a single SVR core does not saturate memory bandwidth, and the
paper concludes that "SVR across multiple cores simultaneously would give
significant benefit".  This module tests that hypothesis: N cores, each
with a private cache hierarchy and TLB, share one DRAM model (bandwidth
and queueing), and are co-simulated by always stepping the core whose
local clock is furthest behind, so contention is temporally meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cores.base import CoreStats
from repro.cores.inorder import InOrderCore
from repro.cores.ooo import OutOfOrderCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.svr.unit import ScalarVectorUnit
from repro.harness.runner import TechniqueConfig, technique
from repro.workloads.registry import build_workload


@dataclass
class MulticoreResult:
    """Outcome of one shared-memory multicore run."""

    technique: str
    workloads: tuple[str, ...]
    per_core: list[CoreStats] = field(default_factory=list)
    dram_lines: int = 0
    dram_utilisation: float = 0.0

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    @property
    def aggregate_ipc(self) -> float:
        """Total committed instructions per (wall-clock) cycle."""
        span = max((s.cycles for s in self.per_core), default=0.0)
        if span <= 0:
            return 0.0
        return sum(s.instructions for s in self.per_core) / span

    @property
    def mean_cpi(self) -> float:
        cpis = [s.cpi for s in self.per_core if s.instructions]
        return sum(cpis) / len(cpis) if cpis else 0.0


def run_multicore(workloads, tech: TechniqueConfig | str,
                  scale: str = "bench", warmup: int = 5_000,
                  measure: int = 15_000) -> MulticoreResult:
    """Co-simulate one core per workload over a shared DRAM channel."""
    if isinstance(tech, str):
        tech = technique(tech)
    workloads = tuple(workloads)
    cores = []
    shared_dram = None
    for name in workloads:
        workload = build_workload(name, scale)
        hierarchy = MemoryHierarchy(workload.memory, tech.memory)
        if shared_dram is None:
            shared_dram = hierarchy.dram
        else:
            # All hierarchies and page-table walkers share one channel.
            hierarchy.dram = shared_dram
            hierarchy.tlb._dram = shared_dram
        if tech.core == "inorder":
            svr = ScalarVectorUnit(tech.svr) if tech.svr is not None else None
            core = InOrderCore(workload.program, workload.memory, hierarchy,
                               tech.core_config, svr=svr)
        elif tech.core == "ooo":
            core = OutOfOrderCore(workload.program, workload.memory,
                                  hierarchy, tech.core_config)
        else:
            raise ValueError(f"unknown core kind: {tech.core!r}")
        cores.append(core)

    def co_run(budget_per_core: int) -> None:
        """Step the laggard core until every core has spent its budget."""
        executed = [0] * len(cores)
        active = set(range(len(cores)))
        while active:
            lagger = min(active, key=lambda i: cores[i].now())
            if not cores[lagger].step() or executed[lagger] + 1 >= budget_per_core:
                active.discard(lagger)
            executed[lagger] += 1

    co_run(warmup)
    for core in cores:
        core.reset_stats()
        core.hierarchy.reset_stats()
    co_run(measure)

    result = MulticoreResult(tech.name, workloads)
    span = 0.0
    for core in cores:
        result.per_core.append(core.stats)
        span = max(span, core.stats.cycles)
    result.dram_lines = shared_dram.accesses
    result.dram_utilisation = shared_dram.utilisation(span)
    return result


def scaling_study(workload: str, techniques=("inorder", "svr16"),
                  core_counts=(1, 2, 4), scale: str = "bench",
                  measure: int = 12_000) -> dict[str, dict[int, float]]:
    """Aggregate-IPC scaling per technique and core count.

    Every core runs its own instance of *workload* (rate-mode, like
    SPECrate) against the shared channel.
    """
    out: dict[str, dict[int, float]] = {}
    for tech in techniques:
        series: dict[int, float] = {}
        for count in core_counts:
            result = run_multicore([workload] * count, tech, scale=scale,
                                   measure=measure)
            series[count] = result.aggregate_ipc
        out[tech] = series
    return out
