"""One function per figure/table of the paper's evaluation (Section VI).

Every function returns plain dict structures (rows of the table / series of
the figure) so benchmarks and tests can assert on shapes, and accepts a
workload subset so the pytest-benchmark harness can trade coverage for
runtime.  The full-suite defaults regenerate the complete figures.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.report import harmonic_mean
from repro.harness.runner import MAIN_TECHNIQUES, SimResult, run, technique
from repro.svr.config import LoopBoundPolicy, RecyclingPolicy
from repro.svr.overhead import overhead_bits, overhead_kib
from repro.workloads.registry import (
    HPC_WORKLOADS,
    IRREGULAR_WORKLOADS,
    SPEC_WORKLOADS,
)

# Workload groups used by the grouped figures (3, 13, 15).
GROUPS: dict[str, tuple[str, ...]] = {
    "BC": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("BC_")),
    "BFS": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("BFS_")),
    "CC": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("CC_")),
    "PR": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("PR_")),
    "SSSP": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("SSSP_")),
    "HPC-DB": HPC_WORKLOADS,
}

# Compact default subsets so a full figure regeneration stays tractable in
# pure Python; pass workloads=IRREGULAR_WORKLOADS for the complete sweep.
REPRESENTATIVE = ("BC_UR", "BFS_KR", "CC_UR", "PR_KR", "SSSP_UR",
                  "Camel", "HJ2", "Kangr", "Randacc")


def _run_matrix(workloads: Sequence[str], techniques: Sequence,
                scale: str) -> dict[str, dict[str, SimResult]]:
    """{workload: {technique_name: SimResult}}."""
    results: dict[str, dict[str, SimResult]] = {}
    for name in workloads:
        row: dict[str, SimResult] = {}
        for tech in techniques:
            cfg = technique(tech) if isinstance(tech, str) else tech
            row[cfg.name] = run(name, cfg, scale=scale)
        results[name] = row
    return results


# ---------------------------------------------------------------------------
# Fig 1 — headline: harmonic-mean speedup and normalised energy.
# ---------------------------------------------------------------------------

def fig1(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
         techniques: Sequence[str] = MAIN_TECHNIQUES) -> dict[str, dict[str, float]]:
    """Fig 1: per-technique harmonic-mean normalised IPC and mean energy."""
    matrix = _run_matrix(workloads, techniques, scale)
    out: dict[str, dict[str, float]] = {}
    for tech in techniques:
        speedups = []
        energy_ratios = []
        for name in workloads:
            base = matrix[name]["inorder"]
            res = matrix[name][tech]
            speedups.append(res.ipc / base.ipc if base.ipc else 1.0)
            base_e = base.energy_per_instruction_nj
            energy_ratios.append(res.energy_per_instruction_nj / base_e
                                 if base_e else 1.0)
        out[tech] = {
            "norm_ipc": harmonic_mean(speedups),
            "norm_energy": sum(energy_ratios) / len(energy_ratios),
        }
    return out


# ---------------------------------------------------------------------------
# Fig 3 — CPI stacks for in-order vs out-of-order.
# ---------------------------------------------------------------------------

def fig3(scale: str = "bench",
         groups: dict[str, tuple[str, ...]] | None = None,
         per_group: int = 1) -> dict[str, dict[str, dict[str, float]]]:
    """Fig 3: {group: {core: cpi_stack}} with mem-dram separated out."""
    groups = groups or GROUPS
    out: dict[str, dict[str, dict[str, float]]] = {}
    for group, members in groups.items():
        chosen = members[:per_group]
        for core_name in ("inorder", "ooo"):
            stacks = [run(w, core_name, scale=scale).cpi_stack()
                      for w in chosen]
            merged = {key: sum(s[key] for s in stacks) / len(stacks)
                      for key in stacks[0]}
            out.setdefault(group, {})[core_name] = merged
    # Average row.
    avg: dict[str, dict[str, float]] = {}
    for core_name in ("inorder", "ooo"):
        keys = next(iter(out.values()))[core_name].keys()
        avg[core_name] = {
            key: sum(out[g][core_name][key] for g in groups) / len(groups)
            for key in keys}
    out["Avg"] = avg
    return out


# ---------------------------------------------------------------------------
# Figs 11 and 12 — per-workload CPI and energy for all techniques.
# ---------------------------------------------------------------------------

def fig11(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
          techniques: Sequence[str] = MAIN_TECHNIQUES) -> dict[str, dict[str, float]]:
    """Fig 11: {workload: {technique: CPI}} (lower is better)."""
    matrix = _run_matrix(workloads, techniques, scale)
    return {w: {t: matrix[w][t].cpi for t in techniques} for w in workloads}


def fig12(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
          techniques: Sequence[str] = MAIN_TECHNIQUES) -> dict[str, dict[str, float]]:
    """Fig 12: {workload: {technique: nJ per instruction}}."""
    matrix = _run_matrix(workloads, techniques, scale)
    return {w: {t: matrix[w][t].energy_per_instruction_nj
                for t in techniques} for w in workloads}


# ---------------------------------------------------------------------------
# Fig 13 — prefetch accuracy and coverage.
# ---------------------------------------------------------------------------

def _maxlength(name: str):
    cfg = technique(name, policy=LoopBoundPolicy.MAXLENGTH)
    return cfg


def fig13a(groups: dict[str, tuple[str, ...]] | None = None,
           scale: str = "bench", per_group: int = 1) -> dict[str, dict[str, float]]:
    """Fig 13a: prefetch accuracy per workload group.

    Techniques: IMP, SVR16-Maxlength, SVR16, SVR64-Maxlength, SVR64.
    Accuracy = prefetched lines touched before LLC eviction / all resolved
    prefetched lines.
    """
    groups = groups or GROUPS
    techs = [
        ("imp", technique("imp")),
        ("svr16-maxlength", _maxlength("svr16")),
        ("svr16", technique("svr16")),
        ("svr64-maxlength", _maxlength("svr64")),
        ("svr64", technique("svr64")),
    ]
    out: dict[str, dict[str, float]] = {}
    for group, members in groups.items():
        row: dict[str, float] = {}
        for label, cfg in techs:
            origin = "imp" if label == "imp" else "svr"
            accs = []
            for w in members[:per_group]:
                res = run(w, cfg, scale=scale)
                accs.append(res.hierarchy.accuracy(origin))
            row[label] = sum(accs) / len(accs)
        out[group] = row
    return out


def fig13b(groups: dict[str, tuple[str, ...]] | None = None,
           scale: str = "bench", per_group: int = 1) -> dict[str, dict[str, float]]:
    """Fig 13b: DRAM-traffic origin, normalised to the in-order baseline.

    Returns, per group and technique, the fraction of baseline DRAM line
    fetches issued as demand traffic vs prefetch traffic; totals above 1.0
    are over-coverage from inaccurate prefetches.
    """
    groups = groups or GROUPS
    techs = [("inorder", technique("inorder")), ("imp", technique("imp")),
             ("svr16", technique("svr16")), ("svr64", technique("svr64"))]
    out: dict[str, dict[str, float]] = {}
    for group, members in groups.items():
        chosen = members[:per_group]
        base_lines = 0
        rows: dict[str, dict[str, float]] = {}
        for label, cfg in techs:
            demand = prefetch = 0
            for w in chosen:
                res = run(w, cfg, scale=scale)
                fetches = res.hierarchy.dram_fetches
                demand += fetches["demand"]
                prefetch += fetches["stride"] + fetches["imp"] + fetches["svr"]
            if label == "inorder":
                base_lines = max(1, demand + prefetch)
            rows[label] = {"demand": demand / base_lines,
                           "prefetch": prefetch / base_lines,
                           "total": (demand + prefetch) / base_lines}
        flat = {}
        for label, vals in rows.items():
            for key, value in vals.items():
                flat[f"{label}.{key}"] = value
        out[group] = flat
    return out


# ---------------------------------------------------------------------------
# Fig 14 — SPEC 2017 overhead.
# ---------------------------------------------------------------------------

def fig14(workloads: Sequence[str] = SPEC_WORKLOADS,
          scale: str = "bench") -> dict[str, float]:
    """Fig 14: SVR-16 IPC normalised to in-order per SPEC surrogate."""
    out: dict[str, float] = {}
    ratios = []
    for name in workloads:
        base = run(name, "inorder", scale=scale)
        svr = run(name, "svr16", scale=scale)
        ratio = svr.ipc / base.ipc if base.ipc else 1.0
        out[name] = ratio
        ratios.append(ratio)
    out["H-mean"] = harmonic_mean(ratios)
    return out


# ---------------------------------------------------------------------------
# Fig 15 — loop-bound prediction policies.
# ---------------------------------------------------------------------------

FIG15_GROUPS = {
    "BC+BFS+SSSP": ("BC_UR", "BFS_KR", "SSSP_UR"),
    "CC+PR": ("CC_UR", "PR_KR"),
    "HPC-DB": ("Camel", "Kangr", "Randacc"),
}

FIG15_POLICIES = (
    LoopBoundPolicy.LBD_WAIT,
    LoopBoundPolicy.MAXLENGTH,
    LoopBoundPolicy.LBD_MAXLENGTH,
    LoopBoundPolicy.LBD_CV,
    LoopBoundPolicy.EWMA,
    LoopBoundPolicy.TOURNAMENT,
)


def fig15(length: int = 16, scale: str = "bench",
          groups: dict[str, tuple[str, ...]] | None = None
          ) -> dict[str, dict[str, float]]:
    """Fig 15: normalised IPC per loop-bound policy, grouped workloads."""
    groups = groups or FIG15_GROUPS
    baselines = {w: run(w, "inorder", scale=scale)
                 for ws in groups.values() for w in ws}
    out: dict[str, dict[str, float]] = {}
    for policy in FIG15_POLICIES:
        cfg = technique(f"svr{length}", policy=policy)
        row: dict[str, float] = {}
        all_speedups = []
        for group, members in groups.items():
            speedups = []
            for w in members:
                res = run(w, cfg, scale=scale)
                speedups.append(res.ipc / baselines[w].ipc)
            row[group] = harmonic_mean(speedups)
            all_speedups.extend(speedups)
        row["H-mean"] = harmonic_mean(all_speedups)
        out[policy.value] = row
    return out


# ---------------------------------------------------------------------------
# Section VI-D — DVR-comparison ablations.
# ---------------------------------------------------------------------------

def dvr_recycling(workloads: Sequence[str] = REPRESENTATIVE,
                  scale: str = "bench") -> dict[str, float]:
    """SVR LRU recycling vs DVR renaming with 2 speculative registers."""
    out: dict[str, float] = {}
    variants = {
        "svr16-lru-k8": technique("svr16"),
        "svr16-lru-k2": technique("svr16", srf_entries=2),
        "svr16-dvr-k2": technique("svr16", srf_entries=2,
                                  recycling=RecyclingPolicy.DVR),
        "svr64-lru-k8": technique("svr64"),
        "svr64-dvr-k2": technique("svr64", srf_entries=2,
                                  recycling=RecyclingPolicy.DVR),
    }
    baselines = {w: run(w, "inorder", scale=scale) for w in workloads}
    for label, cfg in variants.items():
        speedups = [run(w, cfg, scale=scale).ipc / baselines[w].ipc
                    for w in workloads]
        out[label] = harmonic_mean(speedups)
    return out


def dvr_waiting_mode(workloads: Sequence[str] = REPRESENTATIVE,
                     scale: str = "bench") -> dict[str, float]:
    """Waiting mode on/off (paper: SVR-16 3.2x -> 1.14x, SVR-64 -> 0.56x)."""
    out: dict[str, float] = {}
    variants = {
        "svr16": technique("svr16"),
        "svr16-no-waiting": technique("svr16", waiting_mode=False),
        "svr64": technique("svr64"),
        "svr64-no-waiting": technique("svr64", waiting_mode=False),
    }
    baselines = {w: run(w, "inorder", scale=scale) for w in workloads}
    for label, cfg in variants.items():
        speedups = [run(w, cfg, scale=scale).ipc / baselines[w].ipc
                    for w in workloads]
        out[label] = harmonic_mean(speedups)
    return out


def register_copy_cost(workloads: Sequence[str] = REPRESENTATIVE,
                       scale: str = "bench",
                       cost_cycles: float = 16.0) -> dict[str, float]:
    """Lockstep-coupling cost model (paper: 3.21x -> 3.16x).

    Also reports the *decoupled-context* upper bound: SVIs issued from a
    free second context (DVR-style), quantifying what sharing the main
    thread's issue slots costs.
    """
    baselines = {w: run(w, "inorder", scale=scale) for w in workloads}
    out: dict[str, float] = {}
    for label, cfg in (
            ("svr16", technique("svr16")),
            ("svr16-regcopy", technique(
                "svr16", register_copy_cost_cycles=cost_cycles)),
            ("svr16-decoupled", technique(
                "svr16", decoupled_context=True))):
        speedups = [run(w, cfg, scale=scale).ipc / baselines[w].ipc
                    for w in workloads]
        out[label] = harmonic_mean(speedups)
    return out


# ---------------------------------------------------------------------------
# Fig 16 — scalars per vector unit.
# ---------------------------------------------------------------------------

def fig16(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
          widths: Sequence[int] = (1, 2, 4, 8),
          lengths: Sequence[int] = (16, 64)) -> dict[str, dict[int, float]]:
    """Fig 16: normalised IPC vs lanes-per-execute-slot (should be flat)."""
    baselines = {w: run(w, "inorder", scale=scale) for w in workloads}
    out: dict[str, dict[int, float]] = {}
    for length in lengths:
        series: dict[int, float] = {}
        for width in widths:
            cfg = technique(f"svr{length}", scalars_per_unit=width)
            speedups = [run(w, cfg, scale=scale).ipc / baselines[w].ipc
                        for w in workloads]
            series[width] = harmonic_mean(speedups)
        out[f"svr{length}"] = series
    return out


# ---------------------------------------------------------------------------
# Fig 17 — MSHR / page-table-walker sensitivity.
# ---------------------------------------------------------------------------

def fig17(workloads: Sequence[str] = ("PR_KR", "Randacc", "Camel"),
          scale: str = "bench",
          mshrs: Sequence[int] = (1, 2, 4, 8, 16, 24, 32),
          ptws: Sequence[int] = (2, 4, 6),
          lengths: Sequence[int] = (16, 64)) -> dict[str, dict[int, float]]:
    """Fig 17: speedup over the *matching* in-order baseline per MSHR/PTW."""
    out: dict[str, dict[int, float]] = {}
    for length in lengths:
        for ptw in ptws:
            series: dict[int, float] = {}
            for mshr in mshrs:
                base_cfg = technique("inorder").with_memory(
                    l1_mshrs=mshr, page_table_walkers=ptw)
                svr_cfg = technique(f"svr{length}").with_memory(
                    l1_mshrs=mshr, page_table_walkers=ptw)
                speedups = []
                for w in workloads:
                    base = run(w, base_cfg, scale=scale)
                    res = run(w, svr_cfg, scale=scale)
                    speedups.append(res.ipc / base.ipc)
                series[mshr] = harmonic_mean(speedups)
            out[f"svr{length}-ptw{ptw}"] = series
    return out


# ---------------------------------------------------------------------------
# Fig 18 — memory-bandwidth sensitivity.
# ---------------------------------------------------------------------------

def fig18(workloads: Sequence[str] = ("PR_KR", "Camel", "Kangr"),
          scale: str = "bench",
          bandwidths: Sequence[float] = (12.5, 25.0, 50.0, 100.0),
          lengths: Sequence[int] = (16, 64)) -> dict[str, dict[float, float]]:
    """Fig 18: speedup vs in-order at the *same* bandwidth."""
    out: dict[str, dict[float, float]] = {}
    for length in lengths:
        series: dict[float, float] = {}
        for bw in bandwidths:
            base_cfg = technique("inorder").with_memory(
                dram_bandwidth_gbps=bw)
            svr_cfg = technique(f"svr{length}").with_memory(
                dram_bandwidth_gbps=bw)
            speedups = []
            for w in workloads:
                base = run(w, base_cfg, scale=scale)
                res = run(w, svr_cfg, scale=scale)
                speedups.append(res.ipc / base.ipc)
            series[bw] = harmonic_mean(speedups)
        out[f"svr{length}"] = series
    return out


# ---------------------------------------------------------------------------
# Table I quantified — VR on the big core vs SVR on the little core.
# ---------------------------------------------------------------------------

def table1_quantified(workloads: Sequence[str] = REPRESENTATIVE,
                      scale: str = "bench") -> dict[str, dict[str, float]]:
    """Quantify Table I's qualitative comparison (extension experiment).

    Runs the plain OoO core, Vector Runahead on the OoO core (the paper's
    big-core state of the art, modelled in :mod:`repro.svr.vr`) and SVR-16
    on the in-order core, reporting harmonic-mean speedup over the
    in-order baseline and mean energy per instruction.
    """
    techs = ("inorder", "ooo", "vr64", "svr16")
    out: dict[str, dict[str, float]] = {}
    baselines = {w: run(w, "inorder", scale=scale) for w in workloads}
    for tech in techs:
        speedups = []
        energies = []
        for w in workloads:
            res = baselines[w] if tech == "inorder" else run(w, tech,
                                                             scale=scale)
            speedups.append(res.ipc / baselines[w].ipc)
            energies.append(res.energy_per_instruction_nj)
        out[tech] = {
            "norm_ipc": harmonic_mean(speedups),
            "nj_per_instr": sum(energies) / len(energies),
        }
    return out


# ---------------------------------------------------------------------------
# Table II — hardware overhead.
# ---------------------------------------------------------------------------

def table2(lengths: Sequence[int] = (8, 16, 32, 64, 128)) -> dict[str, dict[str, float]]:
    """Table II: SVR state (bits / KiB) as the vector length grows."""
    return {f"svr{n}": {"bits": float(overhead_bits(n)),
                        "kib": overhead_kib(n)} for n in lengths}
