"""One function per figure/table of the paper's evaluation (Section VI).

Every function returns plain dict structures (rows of the table / series of
the figure) so benchmarks and tests can assert on shapes, and accepts a
workload subset so the pytest-benchmark harness can trade coverage for
runtime.  The full-suite defaults regenerate the complete figures.

All simulation cells route through the resilient executor
(:func:`repro.exec.run_cells`).  Pass an
:class:`~repro.exec.ExecConfig` as ``exec_config`` to run cells in
parallel isolated workers, bound them with wall-clock timeouts, retry
transient failures, and resume a half-finished figure from its journal.
Under the default (salvaging) executor a failed cell does not kill the
figure: entries that cannot be computed come back as ``None`` — rendered
as ``-`` by :func:`repro.harness.report.format_table` — and aggregate
rows are taken over the cells that did complete.
"""

from __future__ import annotations

from typing import Sequence

from repro.exec import ExecConfig, ResultView, RunFailure, RunSpec, run_cells
from repro.harness.report import harmonic_mean
from repro.harness.runner import MAIN_TECHNIQUES, TechniqueConfig, technique
from repro.svr.config import LoopBoundPolicy, RecyclingPolicy
from repro.svr.overhead import overhead_bits, overhead_kib
from repro.workloads.registry import (
    HPC_WORKLOADS,
    IRREGULAR_WORKLOADS,
    SPEC_WORKLOADS,
)

# Workload groups used by the grouped figures (3, 13, 15).
GROUPS: dict[str, tuple[str, ...]] = {
    "BC": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("BC_")),
    "BFS": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("BFS_")),
    "CC": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("CC_")),
    "PR": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("PR_")),
    "SSSP": tuple(w for w in IRREGULAR_WORKLOADS if w.startswith("SSSP_")),
    "HPC-DB": HPC_WORKLOADS,
}

# Compact default subsets so a full figure regeneration stays tractable in
# pure Python; pass workloads=IRREGULAR_WORKLOADS for the complete sweep.
REPRESENTATIVE = ("BC_UR", "BFS_KR", "CC_UR", "PR_KR", "SSSP_UR",
                  "Camel", "HJ2", "Kangr", "Randacc")


class _Cells:
    """All of one figure's cells, executed resiliently in one batch.

    ``get(workload, tech)`` returns the cell's :class:`ResultView`, or
    ``None`` if that cell failed (lookup is by deterministic config hash,
    so two differently-tuned configs sharing a technique *name* cannot
    collide).
    """

    def __init__(self, pairs: Sequence[tuple], scale: str,
                 exec_config: ExecConfig | None) -> None:
        self.scale = scale
        specs = [RunSpec.make(w, tech, scale=scale) for w, tech in pairs]
        self.report = run_cells(specs, exec_config or ExecConfig())
        self.failures: list[RunFailure] = self.report.failures

    def get(self, workload: str,
            tech: TechniqueConfig | str) -> ResultView | None:
        return self.report.result_for(
            RunSpec.make(workload, tech, scale=self.scale))


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def _hmean(values: list[float]) -> float | None:
    return harmonic_mean(values) if values else None


def _run_matrix(workloads: Sequence[str], techniques: Sequence,
                scale: str, exec_config: ExecConfig | None = None,
                ) -> dict[str, dict[str, ResultView | None]]:
    """{workload: {technique_name: ResultView | None}} (None = failed)."""
    cfgs = [technique(t) if isinstance(t, str) else t for t in techniques]
    pairs = [(w, cfg) for w in workloads for cfg in cfgs]
    cells = _Cells(pairs, scale, exec_config)
    return {w: {cfg.name: cells.get(w, cfg) for cfg in cfgs}
            for w in workloads}


# ---------------------------------------------------------------------------
# Fig 1 — headline: harmonic-mean speedup and normalised energy.
# ---------------------------------------------------------------------------

def fig1(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
         techniques: Sequence[str] = MAIN_TECHNIQUES,
         exec_config: ExecConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig 1: per-technique harmonic-mean normalised IPC and mean energy."""
    all_techs = list(techniques)
    if "inorder" not in all_techs:
        all_techs.append("inorder")
    matrix = _run_matrix(workloads, all_techs, scale, exec_config)
    out: dict[str, dict[str, float]] = {}
    for tech in techniques:
        speedups = []
        energy_ratios = []
        for name in workloads:
            base = matrix[name]["inorder"]
            res = matrix[name][tech]
            if base is None or res is None:
                continue
            speedups.append(res.ipc / base.ipc if base.ipc else 1.0)
            base_e = base.energy_per_instruction_nj
            energy_ratios.append(res.energy_per_instruction_nj / base_e
                                 if base_e else 1.0)
        out[tech] = {
            "norm_ipc": _hmean(speedups),
            "norm_energy": _mean(energy_ratios),
        }
    return out


# ---------------------------------------------------------------------------
# Fig 3 — CPI stacks for in-order vs out-of-order.
# ---------------------------------------------------------------------------

def fig3(scale: str = "bench",
         groups: dict[str, tuple[str, ...]] | None = None,
         per_group: int = 1,
         exec_config: ExecConfig | None = None,
         ) -> dict[str, dict[str, dict[str, float]]]:
    """Fig 3: {group: {core: cpi_stack}} with mem-dram separated out."""
    groups = groups or GROUPS
    pairs = [(w, core_name)
             for members in groups.values() for w in members[:per_group]
             for core_name in ("inorder", "ooo")]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, dict[str, dict[str, float]]] = {}
    for group, members in groups.items():
        chosen = members[:per_group]
        for core_name in ("inorder", "ooo"):
            stacks = [view.cpi_stack() for w in chosen
                      if (view := cells.get(w, core_name)) is not None]
            if not stacks:
                continue
            merged = {key: sum(s[key] for s in stacks) / len(stacks)
                      for key in stacks[0]}
            out.setdefault(group, {})[core_name] = merged
    # Average row over the groups that produced both stacks.
    complete = [g for g in groups
                if "inorder" in out.get(g, {}) and "ooo" in out.get(g, {})]
    if complete:
        avg: dict[str, dict[str, float]] = {}
        for core_name in ("inorder", "ooo"):
            keys = out[complete[0]][core_name].keys()
            avg[core_name] = {
                key: sum(out[g][core_name][key] for g in complete)
                / len(complete)
                for key in keys}
        out["Avg"] = avg
    return out


# ---------------------------------------------------------------------------
# Figs 11 and 12 — per-workload CPI and energy for all techniques.
# ---------------------------------------------------------------------------

def fig11(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
          techniques: Sequence[str] = MAIN_TECHNIQUES,
          exec_config: ExecConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig 11: {workload: {technique: CPI}} (lower is better)."""
    matrix = _run_matrix(workloads, techniques, scale, exec_config)
    return {w: {t: (view.cpi if (view := matrix[w][t]) is not None
                    else None)
                for t in techniques} for w in workloads}


def fig12(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
          techniques: Sequence[str] = MAIN_TECHNIQUES,
          exec_config: ExecConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig 12: {workload: {technique: nJ per instruction}}."""
    matrix = _run_matrix(workloads, techniques, scale, exec_config)
    return {w: {t: (view.energy_per_instruction_nj
                    if (view := matrix[w][t]) is not None else None)
                for t in techniques} for w in workloads}


# ---------------------------------------------------------------------------
# Fig 13 — prefetch accuracy and coverage.
# ---------------------------------------------------------------------------

def _maxlength(name: str):
    cfg = technique(name, policy=LoopBoundPolicy.MAXLENGTH)
    return cfg


def fig13a(groups: dict[str, tuple[str, ...]] | None = None,
           scale: str = "bench", per_group: int = 1,
           exec_config: ExecConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig 13a: prefetch accuracy per workload group.

    Techniques: IMP, SVR16-Maxlength, SVR16, SVR64-Maxlength, SVR64.
    Accuracy = prefetched lines touched before LLC eviction / all resolved
    prefetched lines.
    """
    groups = groups or GROUPS
    techs = [
        ("imp", technique("imp")),
        ("svr16-maxlength", _maxlength("svr16")),
        ("svr16", technique("svr16")),
        ("svr64-maxlength", _maxlength("svr64")),
        ("svr64", technique("svr64")),
    ]
    pairs = [(w, cfg)
             for members in groups.values() for w in members[:per_group]
             for _, cfg in techs]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, dict[str, float]] = {}
    for group, members in groups.items():
        row: dict[str, float] = {}
        for label, cfg in techs:
            origin = "imp" if label == "imp" else "svr"
            accs = [view.hierarchy.accuracy(origin)
                    for w in members[:per_group]
                    if (view := cells.get(w, cfg)) is not None]
            row[label] = _mean(accs)
        out[group] = row
    return out


def fig13b(groups: dict[str, tuple[str, ...]] | None = None,
           scale: str = "bench", per_group: int = 1,
           exec_config: ExecConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig 13b: DRAM-traffic origin, normalised to the in-order baseline.

    Returns, per group and technique, the fraction of baseline DRAM line
    fetches issued as demand traffic vs prefetch traffic; totals above 1.0
    are over-coverage from inaccurate prefetches.
    """
    groups = groups or GROUPS
    techs = [("inorder", technique("inorder")), ("imp", technique("imp")),
             ("svr16", technique("svr16")), ("svr64", technique("svr64"))]
    pairs = [(w, cfg)
             for members in groups.values() for w in members[:per_group]
             for _, cfg in techs]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, dict[str, float]] = {}
    for group, members in groups.items():
        chosen = members[:per_group]
        base_lines = 0
        rows: dict[str, dict[str, float] | None] = {}
        for label, cfg in techs:
            views = [cells.get(w, cfg) for w in chosen]
            if any(view is None for view in views):
                rows[label] = None      # partial sums would be dishonest
                continue
            demand = prefetch = 0
            for view in views:
                fetches = view.hierarchy.dram_fetches
                demand += fetches["demand"]
                prefetch += (fetches["stride"] + fetches["imp"]
                             + fetches["svr"])
            if label == "inorder":
                base_lines = max(1, demand + prefetch)
            if base_lines == 0:         # baseline row itself failed
                rows[label] = None
                continue
            rows[label] = {"demand": demand / base_lines,
                           "prefetch": prefetch / base_lines,
                           "total": (demand + prefetch) / base_lines}
        flat = {}
        for label, vals in rows.items():
            for key in ("demand", "prefetch", "total"):
                flat[f"{label}.{key}"] = (vals[key] if vals is not None
                                          else None)
        out[group] = flat
    return out


# ---------------------------------------------------------------------------
# Fig 14 — SPEC 2017 overhead.
# ---------------------------------------------------------------------------

def fig14(workloads: Sequence[str] = SPEC_WORKLOADS,
          scale: str = "bench",
          exec_config: ExecConfig | None = None) -> dict[str, float]:
    """Fig 14: SVR-16 IPC normalised to in-order per SPEC surrogate."""
    pairs = [(w, t) for w in workloads for t in ("inorder", "svr16")]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, float] = {}
    ratios = []
    for name in workloads:
        base = cells.get(name, "inorder")
        svr = cells.get(name, "svr16")
        if base is None or svr is None:
            out[name] = None
            continue
        ratio = svr.ipc / base.ipc if base.ipc else 1.0
        out[name] = ratio
        ratios.append(ratio)
    out["H-mean"] = _hmean(ratios)
    return out


# ---------------------------------------------------------------------------
# Fig 15 — loop-bound prediction policies.
# ---------------------------------------------------------------------------

FIG15_GROUPS = {
    "BC+BFS+SSSP": ("BC_UR", "BFS_KR", "SSSP_UR"),
    "CC+PR": ("CC_UR", "PR_KR"),
    "HPC-DB": ("Camel", "Kangr", "Randacc"),
}

FIG15_POLICIES = (
    LoopBoundPolicy.LBD_WAIT,
    LoopBoundPolicy.MAXLENGTH,
    LoopBoundPolicy.LBD_MAXLENGTH,
    LoopBoundPolicy.LBD_CV,
    LoopBoundPolicy.EWMA,
    LoopBoundPolicy.TOURNAMENT,
)


def fig15(length: int = 16, scale: str = "bench",
          groups: dict[str, tuple[str, ...]] | None = None,
          exec_config: ExecConfig | None = None
          ) -> dict[str, dict[str, float]]:
    """Fig 15: normalised IPC per loop-bound policy, grouped workloads."""
    groups = groups or FIG15_GROUPS
    members_all = [w for ws in groups.values() for w in ws]
    policy_cfgs = {policy: technique(f"svr{length}", policy=policy)
                   for policy in FIG15_POLICIES}
    pairs = [(w, "inorder") for w in members_all]
    pairs += [(w, cfg) for w in members_all
              for cfg in policy_cfgs.values()]
    cells = _Cells(pairs, scale, exec_config)
    baselines = {w: cells.get(w, "inorder") for w in members_all}
    out: dict[str, dict[str, float]] = {}
    for policy, cfg in policy_cfgs.items():
        row: dict[str, float] = {}
        all_speedups = []
        for group, members in groups.items():
            speedups = [view.ipc / baselines[w].ipc for w in members
                        if (view := cells.get(w, cfg)) is not None
                        and baselines[w] is not None]
            row[group] = _hmean(speedups)
            all_speedups.extend(speedups)
        row["H-mean"] = _hmean(all_speedups)
        out[policy.value] = row
    return out


# ---------------------------------------------------------------------------
# Section VI-D — DVR-comparison ablations.
# ---------------------------------------------------------------------------

def _labelled_speedups(variants: dict[str, TechniqueConfig],
                       workloads: Sequence[str], scale: str,
                       exec_config: ExecConfig | None) -> dict[str, float]:
    """Harmonic-mean speedup over the in-order baseline per variant."""
    pairs = [(w, "inorder") for w in workloads]
    pairs += [(w, cfg) for w in workloads for cfg in variants.values()]
    cells = _Cells(pairs, scale, exec_config)
    baselines = {w: cells.get(w, "inorder") for w in workloads}
    out: dict[str, float] = {}
    for label, cfg in variants.items():
        speedups = [view.ipc / baselines[w].ipc for w in workloads
                    if (view := cells.get(w, cfg)) is not None
                    and baselines[w] is not None]
        out[label] = _hmean(speedups)
    return out


def dvr_recycling(workloads: Sequence[str] = REPRESENTATIVE,
                  scale: str = "bench",
                  exec_config: ExecConfig | None = None) -> dict[str, float]:
    """SVR LRU recycling vs DVR renaming with 2 speculative registers."""
    variants = {
        "svr16-lru-k8": technique("svr16"),
        "svr16-lru-k2": technique("svr16", srf_entries=2),
        "svr16-dvr-k2": technique("svr16", srf_entries=2,
                                  recycling=RecyclingPolicy.DVR),
        "svr64-lru-k8": technique("svr64"),
        "svr64-dvr-k2": technique("svr64", srf_entries=2,
                                  recycling=RecyclingPolicy.DVR),
    }
    return _labelled_speedups(variants, workloads, scale, exec_config)


def dvr_waiting_mode(workloads: Sequence[str] = REPRESENTATIVE,
                     scale: str = "bench",
                     exec_config: ExecConfig | None = None) -> dict[str, float]:
    """Waiting mode on/off (paper: SVR-16 3.2x -> 1.14x, SVR-64 -> 0.56x)."""
    variants = {
        "svr16": technique("svr16"),
        "svr16-no-waiting": technique("svr16", waiting_mode=False),
        "svr64": technique("svr64"),
        "svr64-no-waiting": technique("svr64", waiting_mode=False),
    }
    return _labelled_speedups(variants, workloads, scale, exec_config)


def register_copy_cost(workloads: Sequence[str] = REPRESENTATIVE,
                       scale: str = "bench",
                       cost_cycles: float = 16.0,
                       exec_config: ExecConfig | None = None) -> dict[str, float]:
    """Lockstep-coupling cost model (paper: 3.21x -> 3.16x).

    Also reports the *decoupled-context* upper bound: SVIs issued from a
    free second context (DVR-style), quantifying what sharing the main
    thread's issue slots costs.
    """
    variants = {
        "svr16": technique("svr16"),
        "svr16-regcopy": technique(
            "svr16", register_copy_cost_cycles=cost_cycles),
        "svr16-decoupled": technique("svr16", decoupled_context=True),
    }
    return _labelled_speedups(variants, workloads, scale, exec_config)


# ---------------------------------------------------------------------------
# Fig 16 — scalars per vector unit.
# ---------------------------------------------------------------------------

def fig16(workloads: Sequence[str] = REPRESENTATIVE, scale: str = "bench",
          widths: Sequence[int] = (1, 2, 4, 8),
          lengths: Sequence[int] = (16, 64),
          exec_config: ExecConfig | None = None) -> dict[str, dict[int, float]]:
    """Fig 16: normalised IPC vs lanes-per-execute-slot (should be flat)."""
    cfgs = {(length, width): technique(f"svr{length}",
                                       scalars_per_unit=width)
            for length in lengths for width in widths}
    pairs = [(w, "inorder") for w in workloads]
    pairs += [(w, cfg) for w in workloads for cfg in cfgs.values()]
    cells = _Cells(pairs, scale, exec_config)
    baselines = {w: cells.get(w, "inorder") for w in workloads}
    out: dict[str, dict[int, float]] = {}
    for length in lengths:
        series: dict[int, float] = {}
        for width in widths:
            cfg = cfgs[(length, width)]
            speedups = [view.ipc / baselines[w].ipc for w in workloads
                        if (view := cells.get(w, cfg)) is not None
                        and baselines[w] is not None]
            series[width] = _hmean(speedups)
        out[f"svr{length}"] = series
    return out


# ---------------------------------------------------------------------------
# Fig 17 — MSHR / page-table-walker sensitivity.
# ---------------------------------------------------------------------------

def fig17(workloads: Sequence[str] = ("PR_KR", "Randacc", "Camel"),
          scale: str = "bench",
          mshrs: Sequence[int] = (1, 2, 4, 8, 16, 24, 32),
          ptws: Sequence[int] = (2, 4, 6),
          lengths: Sequence[int] = (16, 64),
          exec_config: ExecConfig | None = None) -> dict[str, dict[int, float]]:
    """Fig 17: speedup over the *matching* in-order baseline per MSHR/PTW."""
    grid = [(length, ptw, mshr)
            for length in lengths for ptw in ptws for mshr in mshrs]
    base_cfgs = {(ptw, mshr): technique("inorder").with_memory(
        l1_mshrs=mshr, page_table_walkers=ptw)
        for _, ptw, mshr in grid}
    svr_cfgs = {(length, ptw, mshr): technique(f"svr{length}").with_memory(
        l1_mshrs=mshr, page_table_walkers=ptw)
        for length, ptw, mshr in grid}
    pairs = [(w, cfg) for w in workloads for cfg in base_cfgs.values()]
    pairs += [(w, cfg) for w in workloads for cfg in svr_cfgs.values()]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, dict[int, float]] = {}
    for length in lengths:
        for ptw in ptws:
            series: dict[int, float] = {}
            for mshr in mshrs:
                speedups = []
                for w in workloads:
                    base = cells.get(w, base_cfgs[(ptw, mshr)])
                    res = cells.get(w, svr_cfgs[(length, ptw, mshr)])
                    if base is None or res is None:
                        continue
                    speedups.append(res.ipc / base.ipc)
                series[mshr] = _hmean(speedups)
            out[f"svr{length}-ptw{ptw}"] = series
    return out


# ---------------------------------------------------------------------------
# Fig 18 — memory-bandwidth sensitivity.
# ---------------------------------------------------------------------------

def fig18(workloads: Sequence[str] = ("PR_KR", "Camel", "Kangr"),
          scale: str = "bench",
          bandwidths: Sequence[float] = (12.5, 25.0, 50.0, 100.0),
          lengths: Sequence[int] = (16, 64),
          exec_config: ExecConfig | None = None) -> dict[str, dict[float, float]]:
    """Fig 18: speedup vs in-order at the *same* bandwidth."""
    base_cfgs = {bw: technique("inorder").with_memory(
        dram_bandwidth_gbps=bw) for bw in bandwidths}
    svr_cfgs = {(length, bw): technique(f"svr{length}").with_memory(
        dram_bandwidth_gbps=bw)
        for length in lengths for bw in bandwidths}
    pairs = [(w, cfg) for w in workloads for cfg in base_cfgs.values()]
    pairs += [(w, cfg) for w in workloads for cfg in svr_cfgs.values()]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, dict[float, float]] = {}
    for length in lengths:
        series: dict[float, float] = {}
        for bw in bandwidths:
            speedups = []
            for w in workloads:
                base = cells.get(w, base_cfgs[bw])
                res = cells.get(w, svr_cfgs[(length, bw)])
                if base is None or res is None:
                    continue
                speedups.append(res.ipc / base.ipc)
            series[bw] = _hmean(speedups)
        out[f"svr{length}"] = series
    return out


# ---------------------------------------------------------------------------
# Table I quantified — VR on the big core vs SVR on the little core.
# ---------------------------------------------------------------------------

def table1_quantified(workloads: Sequence[str] = REPRESENTATIVE,
                      scale: str = "bench",
                      exec_config: ExecConfig | None = None
                      ) -> dict[str, dict[str, float]]:
    """Quantify Table I's qualitative comparison (extension experiment).

    Runs the plain OoO core, Vector Runahead on the OoO core (the paper's
    big-core state of the art, modelled in :mod:`repro.svr.vr`) and SVR-16
    on the in-order core, reporting harmonic-mean speedup over the
    in-order baseline and mean energy per instruction.
    """
    techs = ("inorder", "ooo", "vr64", "svr16")
    pairs = [(w, t) for w in workloads for t in techs]
    cells = _Cells(pairs, scale, exec_config)
    out: dict[str, dict[str, float]] = {}
    for tech in techs:
        speedups = []
        energies = []
        for w in workloads:
            base = cells.get(w, "inorder")
            res = cells.get(w, tech)
            if base is None or res is None:
                continue
            speedups.append(res.ipc / base.ipc)
            energies.append(res.energy_per_instruction_nj)
        out[tech] = {
            "norm_ipc": _hmean(speedups),
            "nj_per_instr": _mean(energies),
        }
    return out


# ---------------------------------------------------------------------------
# Table II — hardware overhead.
# ---------------------------------------------------------------------------

def table2(lengths: Sequence[int] = (8, 16, 32, 64, 128)) -> dict[str, dict[str, float]]:
    """Table II: SVR state (bits / KiB) as the vector length grows."""
    return {f"svr{n}": {"bits": float(overhead_bits(n)),
                        "kib": overhead_kib(n)} for n in lengths}
