"""``repro report``: a self-contained HTML dashboard from telemetry.

Input is whatever artifacts a run left behind — resume journals (cell
records carrying the telemetry payloads of :mod:`repro.exec.telemetry`),
JSONL run logs, and ``BENCH_*.json`` trajectory files.
:func:`build_report_data` folds them into one JSON-ready dict;
:func:`render_html` turns that into a single static HTML file with no
external dependencies (inline CSS, inline SVG, light/dark via
``prefers-color-scheme``).  Every chart has a plain-table fallback right
next to it, so the numbers survive printing, forced-colors modes and
screen readers.

Sections: stat tiles (cells / failures / CPU / RSS), a per-worker sweep
timeline, per-cell wall/CPU/RSS bars, the retry/failure taxonomy,
aggregated metric tables, and the bench throughput trajectory as
single-hue sparklines (one per benchmark — more series than a
categorical palette holds, so identity comes from position, not hue).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import merge_typed_snapshots

# Chart palette (see docs/observability.md): one accent hue for
# magnitude, status colors reserved for ok/failed, text never in series
# color.  Light/dark pairs resolve via CSS custom properties.
_CSS = """
:root {
  --surface: #fcfcfb; --panel: #ffffff; --text: #0b0b0b;
  --secondary: #52514e; --muted: #898781; --grid: #e1e0d9;
  --accent: #2a78d6; --accent-soft: #9dc4ee;
  --good: #0ca30c; --critical: #d03b3b; --warn: #b58419;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #222221; --text: #ffffff;
    --secondary: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --accent: #3987e5; --accent-soft: #2a4a6e;
    --good: #3fae3f; --critical: #e06262; --warn: #cfa040;
  }
}
* { box-sizing: border-box; }
body { background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; max-width: 1080px; margin-inline: auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--secondary); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--panel); border: 1px solid var(--grid);
  border-radius: 8px; padding: 10px 16px; min-width: 120px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .l { color: var(--secondary); font-size: 12px; }
.tile.bad .v { color: var(--critical); }
table { border-collapse: collapse; width: 100%; margin: 8px 0;
  font-variant-numeric: tabular-nums; }
th { text-align: left; color: var(--secondary); font-weight: 500;
  font-size: 12px; border-bottom: 1px solid var(--grid);
  padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
td.num, th.num { text-align: right; }
.status-ok { color: var(--good); }
.status-failed { color: var(--critical); }
svg { display: block; }
svg text { fill: var(--secondary); font-size: 11px; }
.bar { fill: var(--accent); }
.bar-failed { fill: var(--critical); }
.spark { stroke: var(--accent); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.lane-label { fill: var(--muted); }
details > summary { cursor: pointer; color: var(--secondary);
  font-size: 12px; margin: 4px 0; }
code { color: var(--secondary); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _read_jsonl(path: Path) -> list[dict[str, Any]]:
    """Tolerant JSONL load: skips blank and torn lines."""
    records: list[dict[str, Any]] = []
    if not path.is_file():
        return records
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# ---------------------------------------------------------------------------
# Data assembly.
# ---------------------------------------------------------------------------

def build_report_data(journals: Sequence[str | Path] = (),
                      runlogs: Sequence[str | Path] = (),
                      bench_dir: str | Path | None = None,
                      ) -> dict[str, Any]:
    """Fold journals, run logs and bench trajectory files into the one
    dict :func:`render_html` renders (and ``--json`` dumps)."""
    cells: dict[str, dict[str, Any]] = {}
    events: list[dict[str, Any]] = []
    serve_events: list[dict[str, Any]] = []
    for path in journals:
        for record in _read_jsonl(Path(path)):
            kind = record.get("event")
            if kind == "cell" and "key" in record:
                cells[record["key"]] = record   # latest record wins
            elif kind in ("retry", "timeout"):
                events.append(record)
            elif isinstance(kind, str) and kind.startswith("serve."):
                serve_events.append(record)

    cell_rows = []
    for record in sorted(cells.values(), key=lambda r: r["key"]):
        telemetry = record.get("telemetry") or {}
        spans = telemetry.get("spans") or []
        cell_span = next((s for s in spans if s.get("name") == "cell"),
                         None)
        row = {
            "key": record["key"],
            "workload": record.get("workload", "?"),
            "technique": record.get("technique", "?"),
            "status": record.get("status", "?"),
            "attempts": record.get("attempts", 1),
            "elapsed_s": record.get("elapsed_s", 0.0),
            "pid": telemetry.get("pid"),
            "cpu_s": telemetry.get("cpu_s"),
            "max_rss_kib": telemetry.get("max_rss_kib"),
            "failure_kind": (record.get("failure") or {}).get("kind"),
        }
        if cell_span and cell_span.get("end") is not None:
            row["t0"] = cell_span["start"]
            row["t1"] = cell_span["end"]
        cell_rows.append(row)

    failure_taxonomy: dict[str, int] = {}
    for row in cell_rows:
        if row["status"] == "failed":
            kind = row["failure_kind"] or "unknown"
            failure_taxonomy[kind] = failure_taxonomy.get(kind, 0) + 1
    retry_count = sum(1 for e in events if e.get("event") == "retry")
    timeout_count = sum(1 for e in events if e.get("event") == "timeout")

    metric_snapshots = [
        record["telemetry"]["metrics"]
        for record in cells.values()
        if (record.get("telemetry") or {}).get("metrics")]
    merged_metrics = merge_typed_snapshots(metric_snapshots)

    telem = [record["telemetry"] for record in cells.values()
             if record.get("telemetry")]
    resources = {
        "cells": len(telem),
        "cpu_s": round(sum(t.get("cpu_s", 0.0) for t in telem), 3),
        "max_rss_kib": max((t.get("max_rss_kib", 0) for t in telem),
                           default=0),
        "pids": sorted({t["pid"] for t in telem if "pid" in t}),
    }

    runlog_rows = []
    lint_rows: dict[str, dict[str, Any]] = {}
    plan_rows: dict[str, dict[str, Any]] = {}
    for path in runlogs:
        for record in _read_jsonl(Path(path)):
            kind = record.get("kind")
            if kind == "lint":
                # Latest lint record per target wins.
                for report in record.get("reports") or []:
                    name = report.get("name", "?")
                    lint_rows[name] = {
                        "name": name,
                        "ok": bool(report.get("ok")),
                        "errors": report.get("errors", 0),
                        "warnings": report.get("warnings", 0),
                    }
                continue
            if kind == "analyze":
                for report in record.get("reports") or []:
                    name = report.get("name", "?")
                    oracle = report.get("oracle")
                    plan_rows[name] = {
                        "name": name,
                        "loops": [
                            {"header": s[0], "verdict": s[1],
                             "guards": list(s[2]), "reasons": list(s[3])}
                            for s in report.get("summary") or []
                            if isinstance(s, (list, tuple)) and len(s) == 4],
                        "oracle_ok": (None if oracle is None
                                      else bool(oracle.get("ok"))),
                        "violations": (0 if oracle is None
                                       else len(oracle.get("violations")
                                                or [])),
                    }
                continue
            if kind != "run":
                continue
            profile = record.get("profile") or {}
            runlog_rows.append({
                "timestamp": record.get("timestamp", ""),
                "pid": record.get("pid"),
                "seq": record.get("seq"),
                "workload": record.get("workload", "?"),
                "technique": record.get("technique", "?"),
                "measure_s": profile.get("measure"),
            })
    runlog_rows.sort(key=lambda r: (r["timestamp"], r.get("pid") or 0,
                                    r.get("seq") or 0))

    return {
        "cells": cell_rows,
        "events": events,
        "failure_taxonomy": failure_taxonomy,
        "retries": retry_count,
        "timeouts": timeout_count,
        "metrics": merged_metrics,
        "resources": resources,
        "runlogs": runlog_rows,
        "lints": sorted(lint_rows.values(), key=lambda r: r["name"]),
        "plans": sorted(plan_rows.values(), key=lambda r: r["name"]),
        "bench": _load_bench_trajectory(bench_dir),
        "service": _build_service_data(serve_events),
    }


def _build_service_data(serve_events: list[dict[str, Any]],
                        ) -> dict[str, Any]:
    """Fold a serve ledger's ``serve.*`` marker records into the
    dashboard's service section (empty dict when nothing served)."""
    jobs = [e for e in serve_events if e.get("event") == "serve.job"]
    breakers = [e for e in serve_events
                if e.get("event") == "serve.breaker"]
    drains = [e for e in serve_events if e.get("event") == "serve.drain"]
    samples = [e for e in serve_events
               if e.get("event") == "serve.sample"][-240:]
    if not jobs and not breakers and not drains and not samples:
        return {}
    by_state: dict[str, int] = {}
    waits = [e["wait_s"] for e in jobs
             if isinstance(e.get("wait_s"), (int, float))]
    runs = [e["run_s"] for e in jobs
            if isinstance(e.get("run_s"), (int, float))]
    for event in jobs:
        state = event.get("state", "?")
        by_state[state] = by_state.get(state, 0) + 1
    return {
        "jobs": len(jobs),
        "by_state": by_state,
        "cache_hits": sum(1 for e in jobs if e.get("cached")),
        "coalesced": sum(1 for e in jobs if e.get("coalesced")),
        "wait_s_mean": (round(sum(waits) / len(waits), 6)
                        if waits else None),
        "wait_s_max": round(max(waits), 6) if waits else None,
        "run_s_mean": (round(sum(runs) / len(runs), 6)
                       if runs else None),
        "breaker_opens": len(breakers),
        "breaker_keys": sorted({e.get("key", "?") for e in breakers}),
        "drains": [{"reason": e.get("reason", "?"),
                    "restarts": e.get("restarts", 0)} for e in drains],
        "samples": [{k: s.get(k, 0) for k in
                     ("queue_depth", "inflight", "busy_workers",
                      "jobs_ok", "jobs_failed", "progress_frames")}
                    for s in samples],
    }


def _load_bench_trajectory(bench_dir: str | Path | None,
                           ) -> list[dict[str, Any]]:
    """``BENCH_*.json`` snapshots in timestamp order, reduced to the
    median throughput per benchmark."""
    if bench_dir is None:
        return []
    root = Path(bench_dir)
    snapshots = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        benches = data.get("benchmarks")
        if not isinstance(benches, dict):
            continue
        point = {"file": path.name,
                 "timestamp": data.get("timestamp", ""),
                 "throughput": {}}
        for name, bench in benches.items():
            median = (bench.get("throughput") or {}).get("median")
            if isinstance(median, (int, float)):
                point["throughput"][name] = median
        snapshots.append(point)
    snapshots.sort(key=lambda p: (p["timestamp"], p["file"]))
    return snapshots


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------

def _fmt(value: Any, digits: int = 3) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _fmt_rss(kib: Any) -> str:
    if not isinstance(kib, (int, float)) or kib <= 0:
        return "—"
    return f"{kib / 1024:.1f} MiB"


def _tile(label: str, value: str, bad: bool = False) -> str:
    cls = "tile bad" if bad else "tile"
    return (f'<div class="{cls}"><div class="v">{_esc(value)}</div>'
            f'<div class="l">{_esc(label)}</div></div>')


def _timeline_svg(cells: list[dict[str, Any]]) -> str:
    """Per-worker gantt: one row per cell, grouped by pid, bar spanning
    the cell's wall-clock window.  Magnitude rides the shared x scale;
    status is the only color split (accent = ok, critical = failed)."""
    timed = [c for c in cells if "t0" in c and "t1" in c]
    if not timed:
        return '<p class="sub">No span data in the journals.</p>'
    t_min = min(c["t0"] for c in timed)
    t_max = max(c["t1"] for c in timed)
    span = max(t_max - t_min, 1e-9)
    timed.sort(key=lambda c: (c.get("pid") or 0, c["t0"]))
    row_h, left, width = 22, 230, 720
    height = len(timed) * row_h + 26
    parts = [f'<svg viewBox="0 0 {left + width + 60} {height}" '
             f'role="img" aria-label="sweep timeline">']
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = left + frac * width
        parts.append(f'<line class="gridline" x1="{x:.1f}" y1="0" '
                     f'x2="{x:.1f}" y2="{height - 18}"/>')
        parts.append(f'<text x="{x:.1f}" y="{height - 4}" '
                     f'text-anchor="middle">{frac * span:.2f}s</text>')
    last_pid = None
    for i, cell in enumerate(timed):
        y = i * row_h
        x0 = left + (cell["t0"] - t_min) / span * width
        bw = max((cell["t1"] - cell["t0"]) / span * width, 2.0)
        cls = "bar" if cell["status"] == "ok" else "bar-failed"
        label = f'{cell["workload"]}/{cell["technique"]}'
        pid = cell.get("pid")
        pid_text = (f"pid {pid}" if pid is not None and pid != last_pid
                    else "")
        last_pid = pid
        title = (f'{label} — {cell["status"]}, '
                 f'{cell["t1"] - cell["t0"]:.3f}s wall, '
                 f'cpu {_fmt(cell.get("cpu_s"))}s, '
                 f'rss {_fmt_rss(cell.get("max_rss_kib"))}')
        parts.append(f'<text class="lane-label" x="0" y="{y + 15}">'
                     f'{_esc(pid_text)}</text>')
        parts.append(f'<text x="56" y="{y + 15}">{_esc(label)}</text>')
        parts.append(
            f'<rect class="{cls}" x="{x0:.1f}" y="{y + 4}" '
            f'width="{bw:.1f}" height="{row_h - 9}" rx="4">'
            f'<title>{_esc(title)}</title></rect>')
    parts.append("</svg>")
    return "".join(parts)


def _cell_table(cells: list[dict[str, Any]]) -> str:
    rows = []
    for cell in cells:
        status_cls = ("status-ok" if cell["status"] == "ok"
                      else "status-failed")
        rows.append(
            "<tr>"
            f'<td>{_esc(cell["workload"])}</td>'
            f'<td>{_esc(cell["technique"])}</td>'
            f'<td class="{status_cls}">{_esc(cell["status"])}</td>'
            f'<td class="num">{_esc(cell["attempts"])}</td>'
            f'<td class="num">{_fmt(cell["elapsed_s"])}</td>'
            f'<td class="num">{_fmt(cell.get("cpu_s"))}</td>'
            f'<td class="num">{_esc(_fmt_rss(cell.get("max_rss_kib")))}'
            "</td>"
            f'<td class="num">{_esc(cell.get("pid") or "—")}</td>'
            "</tr>")
    return ("<table><thead><tr><th>workload</th><th>technique</th>"
            '<th>status</th><th class="num">attempts</th>'
            '<th class="num">wall s</th><th class="num">cpu s</th>'
            '<th class="num">max rss</th><th class="num">pid</th>'
            "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>")


def _failure_section(data: dict[str, Any]) -> str:
    taxonomy = data["failure_taxonomy"]
    if not taxonomy and not data["retries"] and not data["timeouts"]:
        return '<p class="sub">No failures, retries or timeouts.</p>'
    rows = "".join(
        f'<tr><td>{_esc(kind)}</td><td class="num">{count}</td></tr>'
        for kind, count in sorted(taxonomy.items()))
    extra = (f'<p class="sub">{data["retries"]} retry event(s), '
             f'{data["timeouts"]} timeout event(s).</p>')
    if not rows:
        return extra
    return ("<table><thead><tr><th>failure kind</th>"
            '<th class="num">cells</th></tr></thead>'
            f"<tbody>{rows}</tbody></table>{extra}")


def _metrics_section(metrics: dict[str, Any]) -> str:
    if not metrics:
        return ('<p class="sub">No metric snapshots in the journals '
                "(telemetry off?).</p>")
    counters, gauges, hists = [], [], []
    for name, snap in metrics.items():
        kind = snap.get("kind")
        if kind == "counter":
            counters.append((name, snap["value"]))
        elif kind == "gauge":
            gauges.append((name, snap["value"]))
        elif kind == "histogram":
            hists.append((name, snap))
    parts = []
    if counters:
        rows = "".join(
            f'<tr><td><code>{_esc(n)}</code></td>'
            f'<td class="num">{_fmt(v)}</td></tr>' for n, v in counters)
        parts.append("<h2>Counters (summed across workers)</h2>"
                     "<table><thead><tr><th>metric</th>"
                     '<th class="num">value</th></tr></thead>'
                     f"<tbody>{rows}</tbody></table>")
    if gauges:
        rows = "".join(
            f'<tr><td><code>{_esc(n)}</code></td>'
            f'<td class="num">{_fmt(v)}</td></tr>' for n, v in gauges)
        parts.append("<h2>Gauges (last write, key order)</h2>"
                     "<table><thead><tr><th>metric</th>"
                     '<th class="num">value</th></tr></thead>'
                     f"<tbody>{rows}</tbody></table>")
    if hists:
        rows = []
        for name, snap in hists:
            buckets = snap.get("buckets") or {}
            top = sorted(buckets.items(),
                         key=lambda kv: kv[1], reverse=True)[:3]
            top_text = ", ".join(f"{label}: {count}"
                                 for label, count in top) or "—"
            rows.append(
                f'<tr><td><code>{_esc(name)}</code></td>'
                f'<td class="num">{snap.get("count", 0)}</td>'
                f'<td class="num">{_fmt(snap.get("mean"))}</td>'
                f'<td class="num">{_fmt(snap.get("min"))}</td>'
                f'<td class="num">{_fmt(snap.get("max"))}</td>'
                f'<td>{_esc(top_text)}</td></tr>')
        parts.append(
            "<h2>Histograms (merged bucket-wise)</h2>"
            "<table><thead><tr><th>metric</th>"
            '<th class="num">count</th><th class="num">mean</th>'
            '<th class="num">min</th><th class="num">max</th>'
            "<th>top buckets</th></tr></thead>"
            f'<tbody>{"".join(rows)}</tbody></table>')
    return "".join(parts)


def _sparkline(values: list[float], width: int = 220,
               height: int = 36) -> str:
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    spread = (hi - lo) or 1.0
    pts = []
    for i, value in enumerate(values):
        x = 4 + i * (width - 8) / (len(values) - 1)
        y = height - 6 - (value - lo) / spread * (height - 12)
        pts.append(f"{x:.1f},{y:.1f}")
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}"><polyline class="spark" '
            f'points="{" ".join(pts)}"/></svg>')


def _bench_section(bench: list[dict[str, Any]]) -> str:
    if not bench:
        return ('<p class="sub">No BENCH_*.json trajectory files '
                "found.</p>")
    names: list[str] = []
    for point in bench:
        for name in point["throughput"]:
            if name not in names:
                names.append(name)
    rows = []
    for name in sorted(names):
        series = [point["throughput"][name] for point in bench
                  if name in point["throughput"]]
        if not series:
            continue
        latest = series[-1]
        delta = ((latest / series[0] - 1.0) * 100.0
                 if len(series) > 1 and series[0] else 0.0)
        rows.append(
            f'<tr><td><code>{_esc(name)}</code></td>'
            f"<td>{_sparkline(series)}</td>"
            f'<td class="num">{latest:,.0f}</td>'
            f'<td class="num">{delta:+.1f}%</td></tr>')
    head = (f'<p class="sub">{len(bench)} snapshot(s): '
            f'{_esc(bench[0]["file"])} … {_esc(bench[-1]["file"])}. '
            "One sparkline per benchmark (single hue — identity by "
            "row, not color).</p>")
    return (head + "<table><thead><tr><th>benchmark</th>"
            '<th>median throughput / snapshot</th>'
            '<th class="num">latest (units/s)</th>'
            '<th class="num">vs first</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>')


def _lint_section(lints: list[dict[str, Any]]) -> str:
    if not lints:
        return ""
    rows = []
    for r in lints:
        cls = "status-ok" if r["ok"] else "status-failed"
        verdict = ("clean" if r["ok"] and not r["warnings"] else
                   "ok" if r["ok"] else "FAILED")
        rows.append(
            "<tr>"
            f'<td>{_esc(r["name"])}</td>'
            f'<td class="{cls}">{_esc(verdict)}</td>'
            f'<td class="num">{_esc(r["errors"])}</td>'
            f'<td class="num">{_esc(r["warnings"])}</td>'
            "</tr>")
    return ("<h2>Lint</h2>"
            "<table><thead><tr><th>target</th><th>verdict</th>"
            '<th class="num">errors</th><th class="num">warnings</th>'
            f'</tr></thead><tbody>{"".join(rows)}</tbody></table>')


def _plan_section(plans: list[dict[str, Any]]) -> str:
    """Per-workload vectorization-plan verdicts next to the lint table,
    one row per loop, with the oracle's cross-validation verdict."""
    if not plans:
        return ""
    rows = []
    for r in plans:
        if r["oracle_ok"] is None:
            oracle = "—"
            cls = ""
        elif r["oracle_ok"]:
            oracle, cls = "validated", "status-ok"
        else:
            oracle = f'UNSOUND ({r["violations"]} violation(s))'
            cls = "status-failed"
        for i, loop in enumerate(r["loops"]):
            rows.append(
                "<tr>"
                f'<td>{_esc(r["name"]) if i == 0 else ""}</td>'
                f'<td class="num">{_esc(loop["header"])}</td>'
                f'<td>{_esc(loop["verdict"])}</td>'
                f'<td>{_esc(", ".join(loop["guards"]) or "—")}</td>'
                f'<td>{_esc(", ".join(loop["reasons"]) or "—")}</td>'
                f'<td class="{cls}">{_esc(oracle) if i == 0 else ""}</td>'
                "</tr>")
    return ("<h2>Vectorization plans (lane-batching legality)</h2>"
            "<table><thead><tr><th>workload</th>"
            '<th class="num">loop</th><th>verdict</th><th>guards</th>'
            "<th>reasons</th><th>oracle</th></tr></thead>"
            f'<tbody>{"".join(rows)}</tbody></table>')


def _service_section(service: dict[str, Any]) -> str:
    """The ``repro serve`` slice of a ledger: job verdicts, cache and
    coalescing effectiveness, breaker opens, drains."""
    if not service:
        return ""
    states = ", ".join(f"{state}: {count}" for state, count in
                       sorted(service["by_state"].items())) or "—"
    rows = [
        ("jobs settled", str(service["jobs"])),
        ("by state", states),
        ("cache hits", str(service["cache_hits"])),
        ("coalesced submissions", str(service["coalesced"])),
        ("mean / max queue wait", f'{_fmt(service["wait_s_mean"])}s / '
                                  f'{_fmt(service["wait_s_max"])}s'),
        ("mean run time", f'{_fmt(service["run_s_mean"])}s'),
        ("breaker opens", str(service["breaker_opens"])),
    ]
    if service["breaker_keys"]:
        rows.append(("quarantined config hashes",
                     ", ".join(service["breaker_keys"])))
    for drain in service["drains"]:
        rows.append(("drain", f'{drain["reason"]} '
                              f'({drain["restarts"]} worker restart(s))'))
    body = "".join(
        f"<tr><td>{_esc(label)}</td><td>{_esc(value)}</td></tr>"
        for label, value in rows)
    bad = service["breaker_opens"] > 0
    cls = ' class="status-failed"' if bad else ""
    return ("<h2>Service (repro serve)</h2>"
            f"<p class=\"sub\"{cls}>"
            + ("Breaker opened — at least one config hash was "
               "quarantined." if bad else
               "All served jobs ran without opening a breaker.")
            + "</p><table><tbody>" + body + "</tbody></table>"
            + _service_history(service.get("samples") or []))


def _service_history(samples: list[dict[str, Any]]) -> str:
    """Live history: the server's periodic gauge samples, one sparkline
    per signal over the observed window."""
    if len(samples) < 2:
        return ""
    signals = (("busy workers", "busy_workers"),
               ("queue depth", "queue_depth"),
               ("cells in flight", "inflight"),
               ("jobs ok (cumulative)", "jobs_ok"),
               ("progress frames (cumulative)", "progress_frames"))
    rows = []
    for label, key in signals:
        series = [float(s.get(key, 0) or 0) for s in samples]
        rows.append(f"<tr><td>{_esc(label)}</td>"
                    f"<td>{_sparkline(series)}</td>"
                    f'<td class="num">{series[-1]:,.0f}</td></tr>')
    return ("<h3>Live history</h3>"
            f'<p class="sub">{len(samples)} periodic sample(s) from the '
            "server's metrics ring (latest value on the right).</p>"
            "<table><thead><tr><th>signal</th><th>history</th>"
            '<th class="num">latest</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>')


def _runlog_section(runlogs: list[dict[str, Any]]) -> str:
    if not runlogs:
        return ""
    rows = "".join(
        "<tr>"
        f'<td>{_esc(r["timestamp"])}</td>'
        f'<td class="num">{_esc(r.get("pid") or "—")}</td>'
        f'<td>{_esc(r["workload"])}</td>'
        f'<td>{_esc(r["technique"])}</td>'
        f'<td class="num">{_fmt(r.get("measure_s"))}</td>'
        "</tr>" for r in runlogs[:200])
    return ("<h2>Run log records</h2>"
            "<details><summary>"
            f"{len(runlogs)} run record(s) — expand</summary>"
            "<table><thead><tr><th>timestamp (UTC)</th>"
            '<th class="num">pid</th><th>workload</th><th>technique</th>'
            '<th class="num">measure s</th></tr></thead>'
            f"<tbody>{rows}</tbody></table></details>")


def render_html(data: dict[str, Any], title: str = "repro report") -> str:
    """The full dashboard page as one self-contained HTML string."""
    cells = data["cells"]
    ok = sum(1 for c in cells if c["status"] == "ok")
    failed = len(cells) - ok
    res = data["resources"]
    tiles = [
        _tile("cells", str(len(cells))),
        _tile("ok", str(ok)),
        _tile("failed", str(failed), bad=failed > 0),
        _tile("retries", str(data["retries"]), bad=data["retries"] > 0),
        _tile("cpu total", f'{res["cpu_s"]:.2f}s'),
        _tile("max rss", _fmt_rss(res["max_rss_kib"])),
        _tile("workers", str(len(res["pids"]))),
    ]
    body = [
        f"<h1>{_esc(title)}</h1>",
        '<p class="sub">Static dashboard generated from exec journals, '
        "run logs and bench trajectory files. Dark mode follows the "
        "system preference.</p>",
        f'<div class="tiles">{"".join(tiles)}</div>',
        "<h2>Sweep timeline (one lane per cell, grouped by worker pid)"
        "</h2>",
        _timeline_svg(cells),
        "<h2>Per-cell wall / CPU / RSS</h2>",
        (_cell_table(cells) if cells
         else '<p class="sub">No cell records found.</p>'),
        "<h2>Failures and retries</h2>",
        _failure_section(data),
        _service_section(data.get("service") or {}),
        _metrics_section(data["metrics"]),
        _lint_section(data.get("lints") or []),
        _plan_section(data.get("plans") or []),
        "<h2>Bench trajectory</h2>",
        _bench_section(data["bench"]),
        _runlog_section(data["runlogs"]),
    ]
    return ("<!doctype html><html lang=\"en\"><head>"
            '<meta charset="utf-8">'
            '<meta name="viewport" '
            'content="width=device-width, initial-scale=1">'
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            + "".join(body) + "</body></html>")


def generate_report(journals: Iterable[str | Path] = (),
                    runlogs: Iterable[str | Path] = (),
                    bench_dir: str | Path | None = None,
                    out_path: str | Path = "results/report.html",
                    ) -> tuple[Path, dict[str, Any]]:
    """Build the data, render the page, write it; returns (path, data)."""
    data = build_report_data(list(journals), list(runlogs), bench_dir)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_html(data), encoding="utf-8")
    return out, data
