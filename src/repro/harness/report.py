"""Small text-report helpers shared by experiments and benchmarks."""

from __future__ import annotations

from typing import Iterable, Mapping


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the paper's aggregate for IPC speedups)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def format_table(rows: Mapping[str, Mapping[str, float]],
                 columns: list[str] | None = None,
                 title: str = "", precision: int = 2) -> str:
    """Render {row: {column: value}} as an aligned text table."""
    if not rows:
        return title
    if columns is None:
        columns = list(next(iter(rows.values())).keys())
    width = max(len(str(r)) for r in rows) + 2
    col_width = max(max((len(c) for c in columns), default=8) + 2,
                    precision + 6)
    lines = []
    if title:
        lines.append(title)
    header = " " * width + "".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    for name, values in rows.items():
        cells = []
        for col in columns:
            value = values.get(col)
            if value is None:
                cells.append(f"{'-':>{col_width}}")
            else:
                cells.append(f"{value:>{col_width}.{precision}f}")
        lines.append(f"{str(name):<{width}}" + "".join(cells))
    return "\n".join(lines)


def format_series(series: Mapping[str, float], title: str = "",
                  precision: int = 3) -> str:
    """Render a flat {label: value} mapping."""
    lines = [title] if title else []
    width = max((len(str(k)) for k in series), default=4) + 2
    for key, value in series.items():
        if value is None:       # failed/skipped cell
            lines.append(f"{str(key):<{width}}-")
        else:
            lines.append(f"{str(key):<{width}}{value:.{precision}f}")
    return "\n".join(lines)
