"""Instruction-level trace capture — a debugging microscope for the model.

``capture`` runs a workload on an in-order core (with or without SVR) and
records one :class:`TraceRecord` per committed instruction: issue time,
completion time, the memory level that served it, and the SVR activity it
triggered.  ``render`` turns a window of records into a readable timeline,
which is how the examples and docs illustrate where SVR's overlap comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cores.inorder import InOrderCore
from repro.harness.runner import TechniqueConfig, technique
from repro.memory.hierarchy import MemoryHierarchy
from repro.svr.unit import ScalarVectorUnit
from repro.workloads.registry import build_workload


@dataclass(slots=True)
class TraceRecord:
    """Timing of one committed instruction."""

    index: int
    pc: int
    op: str
    issue: float
    completion: float
    level: str | None          # 'l1' | 'l2' | 'dram' for memory ops
    svi_lanes: int             # transient lanes generated at this instr
    in_prm: bool

    @property
    def latency(self) -> float:
        return self.completion - self.issue


def capture(workload_name: str, tech: TechniqueConfig | str = "svr16",
            scale: str = "tiny", warmup: int = 500,
            count: int = 200) -> list[TraceRecord]:
    """Run *workload_name* and capture *count* post-warmup records."""
    if isinstance(tech, str):
        tech = technique(tech)
    if tech.core != "inorder":
        raise ValueError("tracing supports the in-order core only")
    workload = build_workload(workload_name, scale)
    hierarchy = MemoryHierarchy(workload.memory, tech.memory)
    svr = ScalarVectorUnit(tech.svr) if tech.svr is not None else None
    core = InOrderCore(workload.program, workload.memory, hierarchy,
                       tech.core_config, svr=svr)
    core.run(warmup)

    records: list[TraceRecord] = []
    lanes_before = [svr.stats.svi_lanes if svr else 0]

    def observer(pc, inst, issue, completion, outcome):
        lanes_now = svr.stats.svi_lanes if svr else 0
        records.append(TraceRecord(
            index=len(records),
            pc=pc,
            op=inst.op.value,
            issue=issue,
            completion=completion,
            level=outcome.level if outcome is not None else None,
            svi_lanes=lanes_now - lanes_before[0],
            in_prm=bool(svr.in_prm) if svr else False,
        ))
        lanes_before[0] = lanes_now

    core.trace = observer
    core.run(count)
    return records


def render(records: list[TraceRecord], width: int = 60) -> str:
    """ASCII timeline: one row per instruction, '#' spans issue..completion."""
    if not records:
        return "(empty trace)"
    start = min(r.issue for r in records)
    end = max(r.completion for r in records)
    span = max(1.0, end - start)
    lines = [f"cycles {start:.0f}..{end:.0f} "
             f"({span:.0f} cycles, {len(records)} instructions)"]
    for r in records:
        left = int((r.issue - start) / span * width)
        right = max(left + 1, int((r.completion - start) / span * width))
        bar = " " * left + "#" * (right - left)
        level = r.level or ""
        svr_mark = f" +{r.svi_lanes}sv" if r.svi_lanes else ""
        prm = "R" if r.in_prm else " "
        lines.append(f"{r.index:>4} {prm} {r.op:<7} {level:<5} "
                     f"|{bar:<{width}}|{svr_mark}")
    return "\n".join(lines)


def summarize(records: list[TraceRecord]) -> dict[str, float]:
    """Aggregate a trace window: latency by level, SVI density, PRM share."""
    if not records:
        return {}
    loads = [r for r in records if r.level is not None]
    dram = [r for r in loads if r.level == "dram"]
    out = {
        "instructions": float(len(records)),
        "span_cycles": max(r.completion for r in records)
        - min(r.issue for r in records),
        "memory_ops": float(len(loads)),
        "dram_ops": float(len(dram)),
        "svi_lanes": float(sum(r.svi_lanes for r in records)),
        "prm_share": sum(1 for r in records if r.in_prm) / len(records),
    }
    if dram:
        out["mean_dram_latency"] = (sum(r.latency for r in dram)
                                    / len(dram))
    return out
