"""Instruction-level trace capture — a debugging microscope for the model.

``capture`` runs a workload on an in-order core (with or without SVR) and
records one :class:`TraceRecord` per committed instruction: issue time,
completion time, the memory level that served it, and the SVR activity it
triggered.  ``render`` turns a window of records into a readable timeline,
which is how the examples and docs illustrate where SVR's overlap comes
from.

Since the observability layer landed this module is a thin renderer over
the probe bus (:mod:`repro.obs.probes`): records are assembled from
``core.commit`` / ``svr.svi`` / ``svr.prm_enter`` / ``svr.prm_exit``
events on a private bus rather than from a core-specific callback.  For
timeline views beyond ASCII — any core, every component, zoomable — use
the Chrome-trace exporter (:mod:`repro.obs.export`) instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cores.inorder import InOrderCore
from repro.harness.runner import TechniqueConfig, technique
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.probes import ProbeBus
from repro.svr.unit import ScalarVectorUnit
from repro.workloads.registry import build_workload


@dataclass(slots=True)
class TraceRecord:
    """Timing of one committed instruction."""

    index: int
    pc: int
    op: str
    issue: float
    completion: float
    level: str | None          # 'l1' | 'l2' | 'dram' for memory ops
    svi_lanes: int             # transient lanes generated at this instr
    in_prm: bool

    @property
    def latency(self) -> float:
        return self.completion - self.issue


def capture(workload_name: str, tech: TechniqueConfig | str = "svr16",
            scale: str = "tiny", warmup: int = 500,
            count: int = 200) -> list[TraceRecord]:
    """Run *workload_name* and capture *count* post-warmup records."""
    if isinstance(tech, str):
        tech = technique(tech)
    if tech.core != "inorder":
        raise ValueError("tracing supports the in-order core only")
    workload = build_workload(workload_name, scale)
    bus = ProbeBus()
    hierarchy = MemoryHierarchy(workload.memory, tech.memory, bus=bus)
    svr = (ScalarVectorUnit(tech.svr, bus=bus)
           if tech.svr is not None else None)
    core = InOrderCore(workload.program, workload.memory, hierarchy,
                       tech.core_config, svr=svr, bus=bus)
    core.run(warmup)

    records: list[TraceRecord] = []
    # SVI / PRM state accumulated between commits; the SVR unit emits its
    # events *before* the core's commit event for the same instruction.
    state = {"lanes": 0, "in_prm": False}

    def on_svi(_name, ev):
        state["lanes"] += ev["lanes"]

    def on_prm_enter(_name, _ev):
        state["in_prm"] = True

    def on_prm_exit(_name, _ev):
        state["in_prm"] = False

    def on_commit(_name, ev):
        records.append(TraceRecord(
            index=len(records),
            pc=ev["pc"],
            op=ev["op"],
            issue=ev["issue"],
            completion=ev["completion"],
            level=ev["level"],
            svi_lanes=state["lanes"],
            in_prm=state["in_prm"],
        ))
        state["lanes"] = 0

    subs = [bus.subscribe("svr.svi", on_svi),
            bus.subscribe("svr.prm_enter", on_prm_enter),
            bus.subscribe("svr.prm_exit", on_prm_exit),
            bus.subscribe("core.commit", on_commit)]
    core.run(count)
    for sub in subs:
        sub.cancel()
    return records


def render(records: list[TraceRecord], width: int = 60) -> str:
    """ASCII timeline: one row per instruction, '#' spans issue..completion."""
    if not records:
        return "(empty trace)"
    start = min(r.issue for r in records)
    end = max(r.completion for r in records)
    span = max(1.0, end - start)
    lines = [f"cycles {start:.0f}..{end:.0f} "
             f"({span:.0f} cycles, {len(records)} instructions)"]
    for r in records:
        left = min(int((r.issue - start) / span * width), width - 1)
        right = max(left + 1,
                    min(int((r.completion - start) / span * width), width))
        bar = " " * left + "#" * (right - left)
        level = r.level or ""
        svr_mark = f" +{r.svi_lanes}sv" if r.svi_lanes else ""
        prm = "R" if r.in_prm else " "
        lines.append(f"{r.index:>4} {prm} {r.op:<7} {level:<5} "
                     f"|{bar:<{width}}|{svr_mark}")
    return "\n".join(lines)


def summarize(records: list[TraceRecord]) -> dict[str, float]:
    """Aggregate a trace window: latency by level, SVI density, PRM share."""
    if not records:
        return {}
    loads = [r for r in records if r.level is not None]
    dram = [r for r in loads if r.level == "dram"]
    out = {
        "instructions": float(len(records)),
        "span_cycles": max(r.completion for r in records)
        - min(r.issue for r in records),
        "memory_ops": float(len(loads)),
        "dram_ops": float(len(dram)),
        "svi_lanes": float(sum(r.svi_lanes for r in records)),
        "prm_share": sum(1 for r in records if r.in_prm) / len(records),
    }
    if dram:
        out["mean_dram_latency"] = (sum(r.latency for r in dram)
                                    / len(dram))
    return out
