"""Phase-behaviour sampling: per-window metrics over a long run.

`run_phases` samples IPC, DRAM traffic and SVR activity in fixed
instruction windows, exposing time-varying behaviour that single-number
results hide — most usefully the accuracy monitor's ban/retry cycle
(Section IV-A7) and BFS-style frontier phases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cores.inorder import InOrderCore
from repro.harness.runner import TechniqueConfig, technique
from repro.memory.hierarchy import MemoryHierarchy
from repro.svr.unit import ScalarVectorUnit
from repro.workloads.registry import build_workload


@dataclass(slots=True)
class PhaseSample:
    """Metrics for one instruction window."""

    index: int
    instructions: int
    ipc: float
    dram_lines: int
    svr_rounds: int
    svr_lanes: int
    svr_banned: bool

    @property
    def cpi(self) -> float:
        return 1.0 / self.ipc if self.ipc else 0.0


def run_phases(workload_name: str, tech: TechniqueConfig | str = "svr16",
               scale: str = "bench", warmup: int = 2_000,
               windows: int = 20, window: int = 2_000) -> list[PhaseSample]:
    """Sample *windows* consecutive windows of *window* instructions."""
    if isinstance(tech, str):
        tech = technique(tech)
    if tech.core != "inorder":
        raise ValueError("phase sampling supports the in-order core only")
    wl = build_workload(workload_name, scale)
    hierarchy = MemoryHierarchy(wl.memory, tech.memory)
    svr = ScalarVectorUnit(tech.svr) if tech.svr is not None else None
    core = InOrderCore(wl.program, wl.memory, hierarchy, tech.core_config,
                       svr=svr)
    core.run(warmup)

    samples: list[PhaseSample] = []
    for index in range(windows):
        core.reset_stats()
        hierarchy.reset_stats()
        if svr is not None:
            svr.reset_stats()
        stats = core.run(window)
        if stats.instructions == 0:
            break
        samples.append(PhaseSample(
            index=index,
            instructions=stats.instructions,
            ipc=stats.ipc,
            dram_lines=hierarchy.dram.accesses,
            svr_rounds=svr.stats.prm_rounds if svr else 0,
            svr_lanes=svr.stats.svi_lanes if svr else 0,
            svr_banned=svr.monitor.banned if svr else False,
        ))
        if core.halted:
            break
    return samples


def render_phases(samples: list[PhaseSample]) -> str:
    """Text table plus an IPC sparkline."""
    from repro.harness.charts import sparkline

    if not samples:
        return "(no samples)"
    lines = [f"{'win':>4} {'IPC':>7} {'DRAM':>6} {'rounds':>7} "
             f"{'lanes':>7} {'banned':>7}"]
    for s in samples:
        lines.append(f"{s.index:>4} {s.ipc:7.3f} {s.dram_lines:>6} "
                     f"{s.svr_rounds:>7} {s.svr_lanes:>7} "
                     f"{'yes' if s.svr_banned else '':>7}")
    lines.append("IPC trend: " + sparkline([s.ipc for s in samples]))
    return "\n".join(lines)
