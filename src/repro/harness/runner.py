"""Technique presets and the single-run driver.

A *technique* is a named bundle of core type, memory-system knobs and (for
SVR) an :class:`~repro.svr.config.SVRConfig` — the columns of Figs 1/11/12.
``run`` builds a fresh workload, executes a warmup region (the paper skips
initialisation and simulates a region of interest), then measures a window
and returns a :class:`SimResult` with timing, memory, prefetching and
energy numbers.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.cores.base import CoreConfig, CoreStats, SimulationError
from repro.cores.inorder import InOrderCore
from repro.cores.ooo import OutOfOrderCore
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.memory.hierarchy import HierarchyStats, MemoryConfig, MemoryHierarchy
from repro.svr.config import LoopBoundPolicy, SVRConfig
from repro.svr.unit import ScalarVectorUnit, SvrStats
from repro.svr.vr import VectorRunaheadUnit, VrStats
from repro.workloads.base import Workload
from repro.workloads.registry import build_workload

# The eight columns of Figs 1, 11 and 12.
MAIN_TECHNIQUES = ("inorder", "imp", "ooo", "svr8", "svr16", "svr32",
                   "svr64", "svr128")

CORE_KINDS = ("inorder", "ooo")

# Watchdog fence installed by :func:`run` when the technique does not pin
# its own: generous enough that no legitimate configuration trips it (the
# worst DRAM-bound in-order CPI in this model is ~200), tight enough that
# a runaway timing bug raises instead of spinning forever.
WATCHDOG_CPI_CEILING = 4096.0
WATCHDOG_SLACK_CYCLES = 100_000.0


@dataclass
class TechniqueConfig:
    """One evaluated configuration.

    Invalid combinations are rejected at construction (with the offending
    field named) rather than deep inside :func:`run`, so a bad sweep cell
    is classified as ``invalid-config`` before any simulation starts.
    """

    name: str
    core: str = "inorder"                 # 'inorder' | 'ooo'
    svr: SVRConfig | None = None
    vr_length: int | None = None          # Vector Runahead on the OoO core
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    core_config: CoreConfig = field(default_factory=CoreConfig)

    def __post_init__(self) -> None:
        if self.core not in CORE_KINDS:
            raise ValueError(
                f"TechniqueConfig.core must be one of {CORE_KINDS}, "
                f"got {self.core!r} (technique {self.name!r})")
        if self.svr is not None and self.core != "inorder":
            raise ValueError(
                f"TechniqueConfig.svr requires core='inorder', got "
                f"core={self.core!r} (technique {self.name!r})")
        if self.vr_length is not None:
            if self.core != "ooo":
                raise ValueError(
                    f"TechniqueConfig.vr_length requires core='ooo', got "
                    f"core={self.core!r} (technique {self.name!r})")
            if self.vr_length < 1:
                raise ValueError(
                    f"TechniqueConfig.vr_length must be >= 1, got "
                    f"{self.vr_length} (technique {self.name!r})")

    def with_memory(self, **overrides: Any) -> "TechniqueConfig":
        return replace(self, memory=replace(self.memory, **overrides))

    def with_svr(self, **overrides: Any) -> "TechniqueConfig":
        if self.svr is None:
            raise ValueError(f"{self.name} has no SVR to override")
        return replace(self, svr=replace(self.svr, **overrides))

    def to_dict(self) -> dict:
        """JSON-ready export of the full configuration (run-log records)."""
        out = asdict(self)
        if self.svr is not None:
            out["svr"]["policy"] = self.svr.policy.name
            out["svr"]["recycling"] = self.svr.recycling.name
        return out


def technique(name: str, **svr_overrides: Any) -> TechniqueConfig:
    """Build a preset: 'inorder', 'imp', 'ooo', or 'svrN' (N = 8..128).

    Keyword overrides apply to the SVR config (e.g.
    ``technique('svr16', policy=LoopBoundPolicy.MAXLENGTH)``).
    """
    if name == "inorder":
        return TechniqueConfig("inorder", core="inorder")
    if name == "ooo":
        return TechniqueConfig("ooo", core="ooo")
    if name == "vr" or name.startswith("vr"):
        length = int(name[2:]) if len(name) > 2 else 64
        return TechniqueConfig(name, core="ooo", vr_length=length)
    if name == "imp":
        return TechniqueConfig("imp", core="inorder",
                               memory=MemoryConfig(imp_prefetcher=True))
    if name.startswith("svr"):
        length = int(name[3:])
        svr = SVRConfig(vector_length=length, **svr_overrides)
        return TechniqueConfig(name, core="inorder", svr=svr)
    raise ValueError(f"unknown technique: {name!r}")


@dataclass
class SimResult:
    """Everything a figure needs from one run."""

    workload: str
    technique: str
    core: CoreStats
    hierarchy: HierarchyStats
    svr: SvrStats | None
    vr: VrStats | None
    energy: EnergyBreakdown
    branch_accuracy: float
    dram_lines: int
    svr_accuracy: float | None = None

    @property
    def cpi(self) -> float:
        return self.core.cpi

    @property
    def ipc(self) -> float:
        return self.core.ipc

    @property
    def energy_per_instruction_nj(self) -> float:
        return self.energy.per_instruction_nj(self.core.instructions)

    def cpi_stack(self) -> dict[str, float]:
        return self.core.cpi_stack()

    def to_dict(self) -> dict:
        """Structured export (JSON-ready) of every measured quantity."""
        out = {
            "workload": self.workload,
            "technique": self.technique,
            "instructions": self.core.instructions,
            "cycles": self.core.cycles,
            "cpi": self.cpi,
            "ipc": self.ipc,
            "cpi_stack": self.cpi_stack(),
            "energy_nj_per_instr": self.energy_per_instruction_nj,
            "energy_breakdown_j": self.energy.as_dict(),
            "dram_lines": self.dram_lines,
            "branch_accuracy": self.branch_accuracy,
            "loads": self.core.loads,
            "stores": self.core.stores,
            "branches": self.core.branches,
            "mispredicts": self.core.mispredicts,
            "l1_load_hits": self.hierarchy.l1_load_hits,
            "l2_load_hits": self.hierarchy.l2_load_hits,
            "dram_loads": self.hierarchy.dram_loads,
            "prefetches_issued": dict(self.hierarchy.prefetches_issued),
            "prefetch_useful": dict(self.hierarchy.prefetch_useful),
            "prefetch_useless": dict(self.hierarchy.prefetch_useless),
            "dram_fetches": dict(self.hierarchy.dram_fetches),
        }
        if self.svr is not None:
            out["svr"] = {
                "prm_rounds": self.svr.prm_rounds,
                "svi_lanes": self.svr.svi_lanes,
                "svi_load_lanes": self.svr.svi_load_lanes,
                "masked_lanes": self.svr.masked_lanes,
                "retargets": self.svr.retargets,
                "terminations": dict(self.svr.terminations),
                "accuracy": self.svr_accuracy,
            }
        if self.vr is not None:
            out["vr"] = {
                "episodes": self.vr.episodes,
                "transient_instructions": self.vr.transient_instructions,
                "prefetches": self.vr.prefetches,
            }
        return out

    def summary(self) -> str:
        """Multi-line human-readable summary of this run."""
        lines = [
            f"{self.workload} on {self.technique}:",
            f"  instructions {self.core.instructions}, "
            f"cycles {self.core.cycles:.0f}",
            f"  CPI {self.cpi:.3f}, IPC {self.ipc:.3f}",
            f"  energy {self.energy_per_instruction_nj:.3f} nJ/instr",
            f"  DRAM lines {self.dram_lines}, "
            f"branch accuracy {self.branch_accuracy:.1%}",
        ]
        if self.svr is not None:
            accuracy = ("n/a" if self.svr_accuracy is None
                        else f"{self.svr_accuracy:.1%}")
            lines.append(
                f"  SVR: {self.svr.prm_rounds} rounds, "
                f"{self.svr.svi_lanes} SVI lanes, "
                f"accuracy {accuracy}")
        stack = ", ".join(f"{k}={v:.2f}" for k, v in self.cpi_stack().items()
                          if v > 0.005)
        lines.append(f"  CPI stack: {stack}")
        return "\n".join(lines)


# Default measurement windows per scale: (warmup, measure) instructions.
_WINDOWS = {"tiny": (1_000, 4_000), "bench": (8_000, 25_000),
            "default": (15_000, 60_000)}


def run(workload: str | Workload, tech: TechniqueConfig | str,
        scale: str = "bench", warmup: int | None = None,
        measure: int | None = None, obs=None, progress=None) -> SimResult:
    """Simulate one (workload, technique) pair and return its result.

    Pass a :class:`repro.obs.RunObservation` as *obs* to instrument the
    run: components emit on the observation's private probe bus, metric /
    trace collectors attach when the measured window starts (warmup stays
    unobserved, matching the stats), and the observation's JSONL record /
    Chrome trace are finalised before returning.

    Pass a :class:`repro.obs.ProgressReporter` as *progress* to stream
    in-flight frames (cycle, instructions, IPC-so-far, phase, episode
    count) while the core runs; ``None`` (the default) keeps the core
    run loops on their original, uninstrumented path.

    Unless the technique pins its own watchdog, a window-scaled
    ``watchdog_max_cycles`` fence is installed so a runaway simulation
    raises :class:`~repro.cores.base.SimulationError` (with workload /
    technique context) instead of hanging.
    """
    if isinstance(tech, str):
        tech = technique(tech)

    def _section(name: str):
        return obs.section(name) if obs is not None else nullcontext()

    bus = obs.bus if obs is not None else None
    with _section("build"):
        if isinstance(workload, str):
            workload = build_workload(workload, scale)
        default_warmup, default_measure = _WINDOWS.get(scale,
                                                       _WINDOWS["bench"])
        warmup = default_warmup if warmup is None else warmup
        measure = default_measure if measure is None else measure

        if (tech.core_config.watchdog_max_cycles is None
                and tech.core_config.watchdog_max_instructions is None):
            fence = (WATCHDOG_CPI_CEILING * (warmup + measure)
                     + WATCHDOG_SLACK_CYCLES)
            tech = replace(tech, core_config=replace(
                tech.core_config, watchdog_max_cycles=fence))

        hierarchy = MemoryHierarchy(workload.memory, tech.memory, bus=bus)
        svr_unit = None
        if tech.core == "inorder":
            if tech.svr is not None:
                svr_unit = ScalarVectorUnit(tech.svr, bus=bus)
            core = InOrderCore(workload.program, workload.memory, hierarchy,
                               tech.core_config, svr=svr_unit, bus=bus)
        elif tech.core == "ooo":
            vr_unit = (VectorRunaheadUnit(tech.vr_length)
                       if tech.vr_length is not None else None)
            core = OutOfOrderCore(workload.program, workload.memory,
                                  hierarchy, tech.core_config, vr=vr_unit,
                                  bus=bus)
        else:
            raise ValueError(f"unknown core kind: {tech.core!r}")

    vr_unit = getattr(core, "vr", None)
    if progress is not None:
        progress.annotate(workload=workload.name, technique=tech.name,
                          target_instructions=warmup + measure)
    try:
        with _section("warmup"):
            if warmup > 0:
                if progress is not None:
                    progress.set_phase("warmup")
                core.run(warmup, progress)
        core.reset_stats()
        hierarchy.reset_stats()
        if svr_unit is not None:
            svr_unit.reset_stats()
        if vr_unit is not None:
            vr_unit.reset_stats()
        if obs is not None:
            obs.begin_measure()
        with _section("measure"):
            if progress is not None:
                progress.set_phase("measure")
                progress.sample(core, force=True)
            core.run(measure, progress)
    except SimulationError as exc:
        if exc.workload is None:
            exc.workload = workload.name
        if exc.technique is None:
            exc.technique = tech.name
        raise

    if progress is not None:
        progress.finish(core)
    stats = core.stats
    hstats = hierarchy.stats
    svr_stats = svr_unit.stats if svr_unit is not None else None
    l1_accesses = (hstats.loads + hstats.stores
                   + sum(hstats.prefetches_issued.values()))
    l2_accesses = hierarchy.l2.hits + hierarchy.l2.misses
    model = EnergyModel()
    energy = model.evaluate(
        core_kind=core.kind,
        cycles=stats.cycles,
        frequency_ghz=tech.core_config.frequency_ghz,
        instructions=stats.instructions,
        alu_ops=stats.alu_ops,
        fp_ops=stats.fp_ops,
        branches=stats.branches,
        l1_accesses=l1_accesses,
        l2_accesses=l2_accesses,
        dram_lines=hierarchy.dram.accesses,
        svi_ops=(svr_stats.svi_lanes if svr_stats
                 else (vr_unit.stats.transient_instructions
                       if vr_unit is not None else 0)),
        svr_table_accesses=svr_stats.table_accesses if svr_stats else 0,
        svr_state_kib=svr_unit.state_kib if svr_unit else 0.0,
        imp_prefetches=hstats.prefetches_issued["imp"],
        imp_enabled=tech.memory.imp_prefetcher,
    )
    result = SimResult(
        workload=workload.name,
        technique=tech.name,
        core=stats,
        hierarchy=hstats,
        svr=svr_stats,
        vr=vr_unit.stats if vr_unit is not None else None,
        energy=energy,
        branch_accuracy=core.predictor.accuracy,
        dram_lines=hierarchy.dram.accesses,
        svr_accuracy=hstats.accuracy("svr") if svr_unit is not None else None,
    )
    if obs is not None:
        obs.end_measure()
        obs.finalize(
            {"workload": workload.name, "technique": tech.name,
             "scale": scale, "warmup": warmup, "measure": measure,
             "config": tech.to_dict()},
            result=result)
    return result
