"""Model calibration microbenchmarks.

The standard way to validate a timing model: measure its primitive
latencies and bandwidths with targeted microkernels and check them
against the configuration.  These are also the numbers a user needs when
porting the model to a different machine configuration.

* ``measure_dram_latency`` — dependent pointer chase over a cold region:
  cycles per hop ≈ DRAM latency + TLB/cache probe overheads;
* ``measure_l1_latency`` / ``measure_l2_latency`` — pointer chases sized
  to each level;
* ``measure_bandwidth`` — independent streaming reads: achieved
  GiB/s ≈ the configured channel bandwidth;
* ``measure_issue_width`` — independent ALU ops per cycle.
"""

from __future__ import annotations

import numpy as np

from repro.cores.inorder import InOrderCore
from repro.isa.program import ProgramBuilder
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.main_memory import MainMemory


def _run(program, memory, mem_cfg=None, max_instructions=200_000):
    hierarchy = MemoryHierarchy(
        memory, mem_cfg or MemoryConfig(stride_prefetcher=False))
    core = InOrderCore(program, memory, hierarchy)
    stats = core.run(max_instructions)
    return stats, hierarchy


def _pointer_chase(region_bytes: int, hops: int, seed: int = 5):
    """Build a random cyclic pointer chain covering *region_bytes*."""
    memory = MainMemory(capacity_bytes=max(region_bytes * 2, 1 << 22))
    lines = region_bytes // 64
    base = memory.alloc(region_bytes, name="chain")
    rng = np.random.default_rng(seed)
    order = rng.permutation(lines)
    for i in range(lines):
        src = base + int(order[i]) * 64
        dst = base + int(order[(i + 1) % lines]) * 64
        memory.write_word(src, dst)
    b = ProgramBuilder()
    b.li("t0", base + int(order[0]) * 64)
    b.li("t1", hops)
    b.label("loop")
    b.ld("t0", "t0", 0)
    b.addi("t1", "t1", -1)
    b.bnez("t1", "loop")
    b.halt()
    return b.build(), memory


def measure_latency(region_bytes: int, hops: int = 2000,
                    mem_cfg: MemoryConfig | None = None) -> float:
    """Steady-state cycles per dependent load over a working set.

    The chase covers the region at least once as warmup (filling caches
    and TLBs), then a fresh measurement window counts only steady-state
    hops — the lat_mem_rd methodology.
    """
    lines = region_bytes // 64
    warm_hops = lines + 64
    program, memory = _pointer_chase(region_bytes, warm_hops + hops)
    hierarchy = MemoryHierarchy(
        memory, mem_cfg or MemoryConfig(stride_prefetcher=False))
    core = InOrderCore(program, memory, hierarchy)
    core.run(2 + warm_hops * 3)       # li/li + warm hops
    core.reset_stats()
    stats = core.run(hops * 3)
    return stats.cycles / hops


def measure_l1_latency(**kwargs) -> float:
    """Chase latency inside the L1 (16 KiB working set)."""
    return measure_latency(16 << 10, **kwargs)


def measure_l2_latency(**kwargs) -> float:
    """Chase latency inside the L2 (256 KiB working set)."""
    return measure_latency(256 << 10, **kwargs)


def measure_dram_latency(**kwargs) -> float:
    """Chase latency from DRAM (4 MiB working set — larger than the L2,
    within S-TLB reach so page walks stay off the critical path)."""
    return measure_latency(4 << 20, **kwargs)


def measure_bandwidth(mem_cfg: MemoryConfig | None = None,
                      lines: int = 4096,
                      frequency_ghz: float = 2.0) -> float:
    """Achieved streaming read bandwidth in GiB/s.

    Independent line-stride loads with no uses, so the only limiter is
    the memory system (MSHRs + channel).
    """
    memory = MainMemory(capacity_bytes=1 << 24)
    base = memory.alloc(lines * 64, name="stream")
    b = ProgramBuilder()
    b.li("a0", base)
    b.li("t1", lines)
    b.label("loop")
    b.ld("t0", "a0", 0)          # never used: no stall-on-use
    b.addi("a0", "a0", 64)
    b.addi("t1", "t1", -1)
    b.bnez("t1", "loop")
    b.halt()
    stats, hierarchy = _run(b.build(), memory, mem_cfg,
                            max_instructions=lines * 4 + 100)
    bytes_moved = hierarchy.dram.accesses * 64
    seconds = stats.cycles / (frequency_ghz * 1e9)
    return bytes_moved / seconds / (1 << 30)


def measure_issue_width(ops: int = 3000) -> float:
    """Independent ALU instructions retired per cycle."""
    memory = MainMemory(capacity_bytes=1 << 20)
    b = ProgramBuilder()
    # Fully independent ops across 8 registers.
    reps = ops // 8
    b.li("t8", reps)
    b.label("loop")
    for i in range(8):
        b.addi(f"t{i}", "x0", i)
    b.addi("t8", "t8", -1)
    b.bnez("t8", "loop")
    b.halt()
    stats, _ = _run(b.build(), memory, max_instructions=ops * 2 + 100)
    return stats.instructions / stats.cycles


def calibration_report(mem_cfg: MemoryConfig | None = None) -> dict[str, float]:
    """All calibration numbers plus their configured expectations."""
    cfg = mem_cfg or MemoryConfig(stride_prefetcher=False)
    return {
        "l1_latency_cycles": measure_l1_latency(mem_cfg=cfg),
        "l1_configured": cfg.l1_latency,
        "l2_latency_cycles": measure_l2_latency(mem_cfg=cfg),
        "l2_configured": cfg.l1_latency + cfg.l2_latency,
        "dram_latency_cycles": measure_dram_latency(mem_cfg=cfg),
        "dram_configured": cfg.dram_latency_ns * cfg.frequency_ghz,
        "bandwidth_gibps": measure_bandwidth(mem_cfg=cfg),
        "bandwidth_configured": cfg.dram_bandwidth_gbps,
        "issue_width": measure_issue_width(),
    }
