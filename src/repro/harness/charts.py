"""Plain-text bar charts for the regenerated figures.

The paper's figures are bar charts and line plots; with no plotting stack
available offline, these helpers render the same data as aligned unicode
bars so `results/*.txt` and the examples stay human-readable.
"""

from __future__ import annotations

from typing import Mapping

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, peak: float, width: int) -> str:
    if peak <= 0:
        return ""
    cells = value / peak * width
    full = int(cells)
    frac = int((cells - full) * 8)
    bar = "█" * full
    if frac and full < width:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(series: Mapping[str, float], title: str = "",
              width: int = 40, precision: int = 2,
              baseline: str | None = None) -> str:
    """Horizontal bar chart of {label: value}.

    With ``baseline`` set, values are annotated relative to that label
    (the in-order-normalised style of Figs 1 and 14).
    """
    if not series:
        return title
    peak = max(series.values())
    label_width = max(len(str(k)) for k in series) + 1
    base_value = series.get(baseline) if baseline else None
    lines = [title] if title else []
    for label, value in series.items():
        suffix = ""
        if base_value:
            suffix = f"  ({value / base_value:.2f}x)"
        lines.append(f"{str(label):<{label_width}}"
                     f"{_bar(value, peak, width):<{width}} "
                     f"{value:.{precision}f}{suffix}")
    return "\n".join(lines)


def grouped_bar_chart(rows: Mapping[str, Mapping[str, float]],
                      title: str = "", width: int = 30,
                      precision: int = 2) -> str:
    """Grouped bars: one block per row, one bar per column (Fig 11 style)."""
    if not rows:
        return title
    peak = max(v for cols in rows.values() for v in cols.values())
    lines = [title] if title else []
    col_width = max(len(c) for cols in rows.values() for c in cols) + 1
    for row, cols in rows.items():
        lines.append(f"{row}:")
        for col, value in cols.items():
            lines.append(f"  {col:<{col_width}}"
                         f"{_bar(value, peak, width):<{width}} "
                         f"{value:.{precision}f}")
    return "\n".join(lines)


def sparkline(values, width: int = None) -> str:
    """One-line trend (the Fig 17/18 saturation curves at a glance)."""
    values = list(values)
    if not values:
        return ""
    peak = max(values)
    low = min(values)
    span = peak - low
    marks = "▁▂▃▄▅▆▇█"
    out = []
    for v in values:
        idx = 0 if span == 0 else int((v - low) / span * (len(marks) - 1))
        out.append(marks[idx])
    return "".join(out)
