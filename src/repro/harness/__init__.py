"""Experiment harness: technique presets, the runner, and one function per
figure/table of the paper's evaluation."""

from repro.harness.runner import (
    SimResult,
    TechniqueConfig,
    MAIN_TECHNIQUES,
    run,
    technique,
)
from repro.harness.report import format_series, format_table, harmonic_mean
from repro.harness.multicore import MulticoreResult, run_multicore, scaling_study
from repro.harness.sweeps import (
    SweepAxis,
    SweepReport,
    render_sweep,
    sweep,
    sweep_report,
)
from repro.harness.trace import capture, render, summarize
from repro.harness.charts import bar_chart, grouped_bar_chart, sparkline

__all__ = [
    "MAIN_TECHNIQUES",
    "MulticoreResult",
    "SweepAxis",
    "SweepReport",
    "sweep_report",
    "bar_chart",
    "capture",
    "grouped_bar_chart",
    "render",
    "render_sweep",
    "run_multicore",
    "scaling_study",
    "sparkline",
    "summarize",
    "sweep",
    "SimResult",
    "TechniqueConfig",
    "format_series",
    "format_table",
    "harmonic_mean",
    "run",
    "technique",
]
