"""Generic parameter-sweep utility over techniques and memory knobs.

The per-figure functions in :mod:`repro.harness.experiments` hard-code the
paper's sweeps; this module offers the general tool a user extending the
study would reach for::

    from repro.harness.sweeps import sweep, SweepAxis

    grid = sweep(
        workloads=("PR_KR", "Camel"),
        base="svr16",
        axes=[SweepAxis("memory.l1_mshrs", (4, 8, 16)),
              SweepAxis("svr.vector_length", (8, 32))],
        metric="ipc",
    )

Axis paths address the :class:`TechniqueConfig` tree: ``memory.<field>``,
``svr.<field>``, ``core_config.<field>`` or a top-level field.  The result
maps each axis-value combination to the harmonic-mean metric over the
workloads, normalised to the in-order baseline when ``normalise=True``.

Every cell routes through the resilient executor
(:func:`repro.exec.run_cells`): pass an
:class:`~repro.exec.ExecConfig` to fan cells out over isolated worker
processes, bound each with a wall-clock timeout, retry transient
failures, journal completed cells for ``--resume``, and inject seeded
faults.  A cell that still fails is *salvaged*: the sweep completes, the
combo's value becomes ``None`` (rendered as ``FAILED``), and the
structured :class:`~repro.exec.RunFailure` records ride along on the
:class:`SweepReport`.

With ``ExecConfig(telemetry=TelemetryConfig())`` every cell additionally
ships spans, metric snapshots and resource samples back to the parent;
the :class:`SweepReport` then exposes the merged view —
``merged_metrics()``, ``resources()``, and ``trace()`` (one Perfetto
process track per worker pid).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.exec import ExecConfig, ExecReport, RunFailure, RunSpec, run_cells
from repro.exec.failures import INVALID_CONFIG
from repro.harness.report import harmonic_mean
from repro.harness.runner import TechniqueConfig, technique


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a dotted config path and its values."""

    path: str
    values: tuple

    def __init__(self, path: str, values: Sequence) -> None:
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "values", tuple(values))


def _apply(config: TechniqueConfig, path: str, value) -> TechniqueConfig:
    """Return a copy of *config* with the dotted *path* set to *value*."""
    head, _, rest = path.partition(".")
    if not rest:
        if not hasattr(config, head):
            raise ValueError(f"unknown config field: {path!r}")
        return replace(config, **{head: value})
    sub = getattr(config, head, None)
    if sub is None:
        raise ValueError(f"{config.name} has no {head!r} to sweep "
                         f"(path {path!r})")
    if not hasattr(sub, rest):
        raise ValueError(f"unknown config field: {path!r}")
    return replace(config, **{head: replace(sub, **{rest: value})})


@dataclass
class SweepReport:
    """Full outcome of one sweep: values plus structured failures.

    ``values`` maps each axis combination to its aggregate metric, or
    ``None`` when every contributing cell failed (the explicit
    missing-cell marker rendered by :func:`render_sweep`).
    """

    values: dict[tuple, float | None]
    axes: tuple[SweepAxis, ...]
    metric: str
    failures: list[RunFailure] = field(default_factory=list)
    exec_report: ExecReport | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_combos(self) -> list[tuple]:
        return [combo for combo, value in self.values.items()
                if value is None]

    # -- telemetry passthrough (ExecConfig.telemetry must be set) -----------

    def telemetry_records(self) -> list[dict]:
        """Per-cell telemetry payloads, sorted by cell key."""
        if self.exec_report is None:
            return []
        return self.exec_report.telemetry_records()

    def merged_metrics(self) -> dict:
        """Deterministically merged worker metric snapshots."""
        if self.exec_report is None:
            return {}
        return self.exec_report.merged_metrics()

    def resources(self) -> dict:
        """CPU/RSS totals over all cells that carried a sample."""
        if self.exec_report is None:
            return {}
        return self.exec_report.resources()

    def trace(self) -> dict:
        """Merged multi-process Chrome/Perfetto trace of the sweep."""
        if self.exec_report is None:
            return {"traceEvents": []}
        return self.exec_report.trace()


def _combo_name(base: TechniqueConfig, axes: Sequence[SweepAxis],
                combo: tuple) -> str:
    return f"{base.name}@" + ",".join(
        f"{a.path}={v}" for a, v in zip(axes, combo))


def sweep_report(workloads: Sequence[str], base: TechniqueConfig | str,
                 axes: Sequence[SweepAxis], metric: str = "ipc",
                 scale: str = "bench", normalise: bool = True,
                 exec_config: ExecConfig | None = None) -> SweepReport:
    """Run the full cross product of *axes* through the resilient
    executor and aggregate *metric*; see :func:`sweep` for the simple
    wrapper returning just the value grid."""
    if isinstance(base, str):
        base = technique(base)
    if not axes:
        raise ValueError("need at least one sweep axis")
    axes = tuple(axes)
    exec_config = exec_config or ExecConfig()

    # Build every cell spec up front.  A combo whose configuration is
    # rejected at construction (negative vector length, ...) becomes a
    # structured invalid-config failure rather than killing the sweep —
    # unless the executor is strict (salvage=False).
    combos = list(itertools.product(*(axis.values for axis in axes)))
    combo_cfgs: dict[tuple, TechniqueConfig] = {}
    invalid: dict[tuple, RunFailure] = {}
    for combo in combos:
        name = _combo_name(base, axes, combo)
        try:
            config = base
            for axis, value in zip(axes, combo):
                config = _apply(config, axis.path, value)
            combo_cfgs[combo] = replace(config, name=name)
        except ValueError as exc:
            if "unknown config field" in str(exc) or "to sweep" in str(exc):
                raise     # a mistyped axis path poisons every combo
            if not exec_config.salvage:
                raise
            invalid[combo] = RunFailure(
                key="", workload="*", technique=name,
                kind=INVALID_CONFIG, message=str(exc))

    baseline_specs: dict[str, RunSpec] = {}
    if normalise:
        baseline_specs = {w: RunSpec.make(w, "inorder", scale=scale)
                          for w in workloads}
    cell_specs: dict[tuple, dict[str, RunSpec]] = {
        combo: {w: RunSpec(workload=w, tech=cfg, scale=scale)
                for w in workloads}
        for combo, cfg in combo_cfgs.items()}

    all_specs = list(baseline_specs.values())
    for per_workload in cell_specs.values():
        all_specs.extend(per_workload.values())
    report = run_cells(all_specs, exec_config)

    baselines = {w: report.result_for(s)
                 for w, s in baseline_specs.items()}
    values: dict[tuple, float | None] = {}
    for combo in combos:
        if combo in invalid:
            values[combo] = None
            continue
        samples = []
        for w in workloads:
            view = report.result_for(cell_specs[combo][w])
            if view is None:
                continue
            value = view.metric(metric)
            if normalise:
                base_view = baselines.get(w)
                if base_view is None:
                    continue      # baseline itself failed
                base_value = base_view.metric(metric)
                value = value / base_value if base_value else 0.0
            samples.append(value)
        if not samples:
            values[combo] = None
        elif all(s > 0 for s in samples):
            values[combo] = harmonic_mean(samples)
        else:
            values[combo] = sum(samples) / len(samples)

    failures = list(invalid.values()) + report.failures
    return SweepReport(values=values, axes=axes, metric=metric,
                       failures=failures, exec_report=report)


def sweep(workloads: Sequence[str], base: TechniqueConfig | str,
          axes: Sequence[SweepAxis], metric: str = "ipc",
          scale: str = "bench", normalise: bool = True,
          exec_config: ExecConfig | None = None) -> dict[tuple, float]:
    """Run the full cross product of *axes* and aggregate *metric*.

    ``metric`` is any exported scalar of
    :class:`~repro.harness.runner.SimResult` (``ipc``, ``cpi``,
    ``energy_per_instruction_nj``, ``dram_lines``).  Returns
    ``{(v1, v2, ...): value}`` keyed in axis order; a combination whose
    cells all failed under a salvaging :class:`~repro.exec.ExecConfig`
    maps to ``None``.
    """
    return sweep_report(workloads, base, axes, metric=metric, scale=scale,
                        normalise=normalise,
                        exec_config=exec_config).values


def render_sweep(result: dict[tuple, float | None],
                 axes: Sequence[SweepAxis], precision: int = 3,
                 failures: Sequence[RunFailure] | None = None) -> str:
    """Aligned text rendering of a sweep result.

    Failed combinations (value ``None``) render as ``FAILED``; pass the
    sweep's *failures* to append the structured failure records.
    """
    header = "  ".join(f"{axis.path:>20}" for axis in axes)
    lines = [header + f"  {'value':>10}"]
    for combo, value in result.items():
        cells = "  ".join(f"{str(v):>20}" for v in combo)
        if value is None:
            lines.append(cells + f"  {'FAILED':>10}")
        else:
            lines.append(cells + f"  {value:>10.{precision}f}")
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} failed cell(s):")
        for failure in failures:
            lines.append(f"  - {failure}")
    return "\n".join(lines)
