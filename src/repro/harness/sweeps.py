"""Generic parameter-sweep utility over techniques and memory knobs.

The per-figure functions in :mod:`repro.harness.experiments` hard-code the
paper's sweeps; this module offers the general tool a user extending the
study would reach for::

    from repro.harness.sweeps import sweep, SweepAxis

    grid = sweep(
        workloads=("PR_KR", "Camel"),
        base="svr16",
        axes=[SweepAxis("memory.l1_mshrs", (4, 8, 16)),
              SweepAxis("svr.vector_length", (8, 32))],
        metric="ipc",
    )

Axis paths address the :class:`TechniqueConfig` tree: ``memory.<field>``,
``svr.<field>``, ``core_config.<field>`` or a top-level field.  The result
maps each axis-value combination to the harmonic-mean metric over the
workloads, normalised to the in-order baseline when ``normalise=True``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Sequence

from repro.harness.report import harmonic_mean
from repro.harness.runner import TechniqueConfig, run, technique


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a dotted config path and its values."""

    path: str
    values: tuple

    def __init__(self, path: str, values: Sequence) -> None:
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "values", tuple(values))


def _apply(config: TechniqueConfig, path: str, value) -> TechniqueConfig:
    """Return a copy of *config* with the dotted *path* set to *value*."""
    head, _, rest = path.partition(".")
    if not rest:
        if not hasattr(config, head):
            raise ValueError(f"unknown config field: {path!r}")
        return replace(config, **{head: value})
    sub = getattr(config, head, None)
    if sub is None:
        raise ValueError(f"{config.name} has no {head!r} to sweep "
                         f"(path {path!r})")
    if not hasattr(sub, rest):
        raise ValueError(f"unknown config field: {path!r}")
    return replace(config, **{head: replace(sub, **{rest: value})})


def sweep(workloads: Sequence[str], base: TechniqueConfig | str,
          axes: Sequence[SweepAxis], metric: str = "ipc",
          scale: str = "bench", normalise: bool = True,
          ) -> dict[tuple, float]:
    """Run the full cross product of *axes* and aggregate *metric*.

    ``metric`` is any float attribute/property of
    :class:`~repro.harness.runner.SimResult` (``ipc``, ``cpi``,
    ``energy_per_instruction_nj``, ``dram_lines``).  Returns
    ``{(v1, v2, ...): value}`` keyed in axis order.
    """
    if isinstance(base, str):
        base = technique(base)
    if not axes:
        raise ValueError("need at least one sweep axis")
    baselines = {}
    if normalise:
        for w in workloads:
            baselines[w] = run(w, "inorder", scale=scale)

    out: dict[tuple, float] = {}
    for combo in itertools.product(*(axis.values for axis in axes)):
        config = base
        for axis, value in zip(axes, combo):
            config = _apply(config, axis.path, value)
        config = replace(config, name=f"{base.name}@" + ",".join(
            f"{a.path}={v}" for a, v in zip(axes, combo)))
        samples = []
        for w in workloads:
            result = run(w, config, scale=scale)
            value = float(getattr(result, metric))
            if normalise:
                base_value = float(getattr(baselines[w], metric))
                value = value / base_value if base_value else 0.0
            samples.append(value)
        if all(s > 0 for s in samples):
            out[combo] = harmonic_mean(samples)
        else:
            out[combo] = sum(samples) / len(samples)
    return out


def render_sweep(result: dict[tuple, float], axes: Sequence[SweepAxis],
                 precision: int = 3) -> str:
    """Aligned text rendering of a sweep result."""
    header = "  ".join(f"{axis.path:>20}" for axis in axes)
    lines = [header + f"  {'value':>10}"]
    for combo, value in result.items():
        cells = "  ".join(f"{str(v):>20}" for v in combo)
        lines.append(cells + f"  {value:>10.{precision}f}")
    return "\n".join(lines)
