"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                          show workloads, techniques and figures
``run WORKLOAD TECH [options]``   simulate one pair and print the result
``stats WORKLOAD [TECH]``         run fully instrumented; print the metric
                                  registry and the wall-clock self-profile
``figure NAME [options]``         regenerate one paper figure
``sweep BASE [options]``          generic parameter sweep over config axes
``trace WORKLOAD [TECH]``         instruction-level ASCII timeline
``overhead [N] [K]``              print the Table II budget
``lint TARGET... | --all``        static analysis: diagnostics, load
                                  classes and SVR chain estimates for
                                  workloads or ``.s`` files
``bench [options]``               self-benchmark the simulator's hot
                                  paths; write a ``BENCH_*.json``
                                  trajectory artifact and optionally
                                  compare/gate against the latest prior
                                  one
``report [options]``              self-contained HTML dashboard from
                                  exec journals, run logs and
                                  ``BENCH_*.json`` trajectory files
``serve [options]``               long-lived simulation service: warm
                                  worker pool, admission control,
                                  circuit breakers and a crash-safe
                                  content-addressed result cache
``submit WORKLOAD TECH [opts]``   submit one cell to a running server
                                  (``--wait`` polls to the verdict)
``jobs [options]``                list a running server's jobs / health
                                  (queue wait + live progress per job)
``top [options]``                 self-refreshing terminal view of a
                                  server (or a local journal): workers,
                                  queue depth, per-job progress bars

``run`` and ``stats`` accept ``--json`` (print ``SimResult.to_dict()`` as
JSON), ``--jsonl PATH`` (append a structured run record) and
``--chrome-trace PATH`` (export a Perfetto-viewable trace); ``figure``
accepts ``--jsonl PATH``.

``figure`` and ``sweep`` route every simulation cell through the
resilient executor (:mod:`repro.exec`) and share its flags: ``--jobs N``
(parallel fault-isolated workers), ``--timeout SECONDS`` (wall-clock kill
fence per cell), ``--retries N``, ``--journal PATH`` +  ``--resume``
(checkpoint cells and re-run only what failed), and
``--inject WORKLOAD/TECH:KIND[:TIMES]`` + ``--fault-seed`` (deterministic
fault injection for drills).  Failed cells render as ``-``/``FAILED``
with a structured failure summary on stderr and exit status 1.

CLI exec runs capture per-cell telemetry by default — spans, a metric
snapshot, CPU time and max RSS per worker, shipped back over the result
pipe and into the journal (``--no-telemetry`` opts out).  ``sweep
--trace PATH`` writes the merged Perfetto trace with one process track
per worker pid; ``report`` renders journals / run logs / bench
trajectories into one static HTML dashboard.

Examples::

    python -m repro run PR_KR svr16 --scale bench
    python -m repro run PR_KR svr16 --chrome-trace /tmp/t.json
    python -m repro stats Camel svr16 --scale tiny
    python -m repro figure fig1 --workloads PR_KR,Camel --scale bench
    python -m repro figure fig11 --jobs 4 --timeout 600 \\
        --journal results/fig11.jsonl --resume
    python -m repro sweep svr16 --workloads PR_KR,Camel \\
        --axis memory.l1_mshrs=4,8,16 --axis svr.vector_length=8,32
    python -m repro sweep svr16 --workloads Camel --axis svr.srf_entries=2,8 \\
        --inject 'Camel/*:flaky' --retries 2
    python -m repro overhead 128 8
    python -m repro lint PR_KR kernel.s
    python -m repro lint --all --json
    python -m repro bench --quick
    python -m repro bench --compare --gate --profile
    python -m repro bench --only 'mem.*' --reps 7 --json
    python -m repro sweep svr16 --workloads Camel --axis svr.srf_entries=2,8 \\
        --jobs 2 --journal results/sweep.jsonl --trace results/sweep-trace.json
    python -m repro report --journal results/sweep.jsonl --bench-dir . \\
        -o results/report.html
    python -m repro serve --port 8177 --workers 4 --timeout 300
    python -m repro submit PR_KR svr16 --scale tiny --wait
    python -m repro jobs --url http://127.0.0.1:8177
    python -m repro top --url http://127.0.0.1:8177 --interval 1
    python -m repro top --journal results/sweep.jsonl --once
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness import experiments
from repro.harness.report import format_series, format_table
from repro.harness.runner import MAIN_TECHNIQUES, run, technique
from repro.svr.overhead import overhead_breakdown
from repro.workloads.registry import IRREGULAR_WORKLOADS, SPEC_WORKLOADS

FIGURES = {
    "fig1": experiments.fig1,
    "fig3": experiments.fig3,
    "fig11": experiments.fig11,
    "fig12": experiments.fig12,
    "fig13a": experiments.fig13a,
    "fig13b": experiments.fig13b,
    "fig14": experiments.fig14,
    "fig15": experiments.fig15,
    "fig16": experiments.fig16,
    "fig17": experiments.fig17,
    "fig18": experiments.fig18,
    "table1": experiments.table1_quantified,
    "table2": experiments.table2,
}


def _cmd_list(_args) -> int:
    print("Techniques:", ", ".join(MAIN_TECHNIQUES))
    print("\nIrregular workloads (paper suite, 33):")
    print("  " + ", ".join(IRREGULAR_WORKLOADS))
    print("\nSPEC surrogates (Fig 14, 23):")
    print("  " + ", ".join(SPEC_WORKLOADS))
    print("\nFigures:", ", ".join(sorted(FIGURES)))
    return 0


def _make_obs(args):
    """Build a RunObservation when any obs flag is set; else None."""
    jsonl = getattr(args, "jsonl", None)
    chrome = getattr(args, "chrome_trace", None)
    if not (jsonl or chrome):
        return None
    from repro.obs import RunObservation

    return RunObservation(jsonl=jsonl or None, chrome_trace=chrome or None)


def _cmd_run(args) -> int:
    obs = _make_obs(args)
    result = run(args.workload, technique(args.technique), scale=args.scale,
                 obs=obs)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True,
                         default=str))
        _report_obs_outputs(args)
        return 0
    print(f"workload   {result.workload}")
    print(f"technique  {result.technique}")
    print(f"instructions {result.core.instructions}")
    print(f"cycles     {result.core.cycles:.0f}")
    print(f"CPI        {result.cpi:.3f}")
    print(f"IPC        {result.ipc:.3f}")
    print(f"energy     {result.energy_per_instruction_nj:.3f} nJ/instr")
    print(f"DRAM lines {result.dram_lines}")
    print(f"branch acc {result.branch_accuracy:.1%}")
    if result.svr_accuracy is not None:
        print(f"SVR acc    {result.svr_accuracy:.1%}")
        print(f"PRM rounds {result.svr.prm_rounds}")
        print(f"SVI lanes  {result.svr.svi_lanes}")
    print("\nCPI stack:")
    for bucket, value in sorted(result.cpi_stack().items(),
                                key=lambda kv: -kv[1]):
        if value > 0.001:
            print(f"  {bucket:<10} {value:6.3f}")
    _report_obs_outputs(args)
    return 0


def _report_obs_outputs(args) -> None:
    if getattr(args, "chrome_trace", None):
        print(f"chrome trace written to {args.chrome_trace} "
              "(open in https://ui.perfetto.dev)", file=sys.stderr)
    if getattr(args, "jsonl", None):
        print(f"run record appended to {args.jsonl}", file=sys.stderr)


def _render_histogram(name: str, hist: dict, indent: str = "  ") -> str:
    lines = [f"{name}  count={hist['count']} mean={hist['mean']:.2f} "
             f"min={hist['min']} max={hist['max']}"]
    buckets = hist["buckets"]
    peak = max(buckets.values(), default=1)
    for label, count in buckets.items():
        bar = "#" * max(1, round(24 * count / peak))
        lines.append(f"{indent}{label:<16} {count:>8} {bar}")
    return "\n".join(lines)


def _cmd_stats(args) -> int:
    from repro.obs import RunObservation

    obs = RunObservation(jsonl=args.jsonl or None,
                         chrome_trace=args.chrome_trace or None)
    result = run(args.workload, technique(args.technique), scale=args.scale,
                 obs=obs)
    if args.json:
        print(json.dumps(obs.record, indent=2, sort_keys=True, default=str))
        _report_obs_outputs(args)
        return 0
    print(result.summary())
    snapshot = obs.metrics_snapshot()
    counters = {k: v for k, v in snapshot.items() if not isinstance(v, dict)}
    histograms = {k: v for k, v in snapshot.items() if isinstance(v, dict)}
    print("\ncounters:")
    for name, value in counters.items():
        print(f"  {name:<36} {value}")
    print("\nhistograms (log2 buckets):")
    for name, hist in histograms.items():
        print("  " + _render_histogram(name, hist, indent="    "))
    print("\nwall-clock self-profile (seconds):")
    for section, seconds in obs.profile.snapshot().items():
        print(f"  {section:<12} {seconds:.3f}")
    _report_obs_outputs(args)
    return 0


def _build_exec_config(args):
    """Translate the shared resilience flags into an ExecConfig.

    Raises ValueError (from the ExecConfig/FaultSpec validators) on bad
    combinations, e.g. ``--resume`` without ``--journal``.
    """
    from repro.exec import ExecConfig, FaultPlan, parse_fault

    faults = None
    if args.inject:
        faults = FaultPlan(specs=tuple(parse_fault(t) for t in args.inject),
                           seed=args.fault_seed)
    # CLI runs default to telemetry ON (the journald/report pipeline
    # feeds on it); library users opt in via ExecConfig directly, and
    # the bench harness never sets it — keeping the hot path clean.
    from repro.exec import TelemetryConfig

    telemetry = (None if getattr(args, "no_telemetry", False)
                 else TelemetryConfig())
    return ExecConfig(jobs=args.jobs, timeout_s=args.timeout or None,
                      retries=args.retries, journal=args.journal or None,
                      resume=args.resume, faults=faults,
                      telemetry=telemetry)


def _print_failures(failures, command: str) -> None:
    print(f"\n{command}: {len(failures)} failed cell(s):", file=sys.stderr)
    for failure in failures:
        print(f"  - {failure}", file=sys.stderr)


def _cmd_figure(args) -> int:
    fn = FIGURES.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.name not in ("table2",):
        kwargs["scale"] = args.scale
    if args.workloads and args.name in ("fig1", "fig11", "fig12", "fig14",
                                        "fig16", "fig17", "fig18",
                                        "table1"):
        kwargs["workloads"] = tuple(args.workloads.split(","))
    log_kwargs = dict(kwargs)
    try:
        exec_config = _build_exec_config(args)
    except ValueError as exc:
        print(f"figure: {exc}", file=sys.stderr)
        return 2
    # Only thread the ExecConfig through when a resilience flag was used;
    # with all defaults the figure functions build an equivalent one.
    flags_used = (args.jobs != 1 or args.timeout or args.retries != 1
                  or args.journal or args.resume or args.inject)
    if flags_used and args.name not in ("table2",):
        kwargs["exec_config"] = exec_config
    # The figure functions report failures on the probe bus; collect the
    # structured records here for the end-of-run summary.
    from repro.exec import RunFailure
    from repro.obs.probes import default_bus

    failures: list[RunFailure] = []
    sub = default_bus().subscribe(
        "exec.failure",
        lambda _name, ev: failures.append(RunFailure(
            key=ev["key"], workload=ev["workload"],
            technique=ev["technique"], kind=ev["kind"],
            message=ev["message"], attempts=ev["attempts"])))
    start = time.perf_counter()
    try:
        out = fn(**kwargs)
    finally:
        sub.cancel()
    elapsed = time.perf_counter() - start
    if args.jsonl:
        from repro.obs import RunLog, make_record

        RunLog(args.jsonl).append(make_record(
            "figure", name=args.name, arguments=log_kwargs, output=out,
            failures=[f.to_dict() for f in failures],
            profile={"figure": round(elapsed, 6)}))
    first = next(iter(out.values()))
    if isinstance(first, dict):
        inner = next(iter(first.values()))
        if isinstance(inner, dict):   # fig3-style nesting
            flat = {}
            for group, sub in out.items():
                for key, stack in sub.items():
                    flat[f"{group}/{key}"] = stack
            out = flat
        out = {row: {str(k): v for k, v in cols.items()}
               for row, cols in out.items()}
        print(format_table(out, title=args.name))
    else:
        print(format_series(out, title=args.name))
    if failures:
        _print_failures(failures, "figure")
        return 1
    return 0


def _parse_axis(text: str):
    """Parse ``--axis PATH=V1,V2,...`` (values parsed as JSON scalars,
    falling back to bare strings)."""
    from repro.harness.sweeps import SweepAxis

    path, sep, values_text = text.partition("=")
    if not sep or not path or not values_text:
        raise ValueError(
            f"--axis expects PATH=V1,V2,... got {text!r}")
    values = []
    for token in values_text.split(","):
        token = token.strip()
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)
    return SweepAxis(path, values)


def _cmd_sweep(args) -> int:
    from repro.harness.sweeps import render_sweep, sweep_report

    try:
        axes = [_parse_axis(a) for a in args.axis]
        exec_config = _build_exec_config(args)
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    workloads = tuple(w for w in args.workloads.split(",") if w)
    if not workloads:
        print("sweep: --workloads needs at least one workload name",
              file=sys.stderr)
        return 2
    try:
        report = sweep_report(
            workloads, args.base, axes, metric=args.metric,
            scale=args.scale, normalise=not args.no_normalise,
            exec_config=exec_config)
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    if args.jsonl:
        from repro.obs import RunLog, make_record

        RunLog(args.jsonl).append(make_record(
            "sweep", base=args.base, metric=args.metric, scale=args.scale,
            normalise=not args.no_normalise, workloads=list(workloads),
            axes=[{"path": a.path, "values": list(a.values)} for a in axes],
            values=[{"combo": list(combo), "value": value}
                    for combo, value in report.values.items()],
            failures=[f.to_dict() for f in report.failures]))
    if args.json:
        print(json.dumps(
            {"base": args.base, "metric": args.metric, "scale": args.scale,
             "normalise": not args.no_normalise,
             "workloads": list(workloads),
             "axes": [{"path": a.path, "values": list(a.values)}
                      for a in axes],
             "values": [{"combo": list(combo), "value": value}
                        for combo, value in report.values.items()],
             "failures": [f.to_dict() for f in report.failures]},
            indent=2, sort_keys=True, default=str))
    else:
        print(render_sweep(report.values, axes, failures=report.failures))
        if report.exec_report is not None:
            print("\n" + report.exec_report.summary().splitlines()[0],
                  file=sys.stderr)
            resources = report.resources()
            if resources.get("cells"):
                print(f"telemetry: {resources['cells']} cell(s), "
                      f"cpu {resources['cpu_s']:.2f}s, "
                      f"max rss {resources['max_rss_kib']} KiB, "
                      f"{len(resources['pids'])} worker pid(s)",
                      file=sys.stderr)
    if args.trace:
        from repro.obs import write_trace

        write_trace(report.trace(), args.trace)
        print(f"merged exec trace written to {args.trace} "
              "(open in https://ui.perfetto.dev)", file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_report(args) -> int:
    from repro.harness.dashboard import generate_report

    if not (args.journal or args.runlog or args.bench_dir):
        print("report: nothing to report on — give --journal, --runlog "
              "and/or --bench-dir", file=sys.stderr)
        return 2
    out, data = generate_report(
        journals=args.journal, runlogs=args.runlog,
        bench_dir=args.bench_dir or None, out_path=args.out)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True, default=str))
    else:
        cells = data["cells"]
        ok = sum(1 for c in cells if c["status"] == "ok")
        print(f"{len(cells)} cell(s): {ok} ok, {len(cells) - ok} failed; "
              f"{data['retries']} retry, {data['timeouts']} timeout "
              "event(s)")
        print(f"{len(data['runlogs'])} run log record(s), "
              f"{len(data['bench'])} bench snapshot(s), "
              f"{len(data['metrics'])} merged metric(s)")
    print(f"report written to {out}", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from repro.harness.trace import capture, render, summarize

    records = capture(args.workload, args.technique, scale=args.scale,
                      warmup=args.warmup, count=args.count)
    print(render(records))
    summary = summarize(records)
    print("\nsummary:")
    for key, value in summary.items():
        print(f"  {key:<18} {value:.2f}")
    return 0


def _cmd_overhead(args) -> int:
    breakdown = overhead_breakdown(args.n, args.k)
    rows = {
        "stride detector": breakdown.stride_detector,
        "taint tracker": breakdown.taint_tracker,
        "HSLR": breakdown.hslr,
        "SRF": breakdown.srf,
        "LC": breakdown.lc,
        "LBD": breakdown.lbd,
        "scoreboard counters": breakdown.scoreboard,
        "L1 prefetch tags": breakdown.l1_prefetch_tags,
    }
    print(f"Table II: SVR hardware overhead (N={args.n}, K={args.k})")
    for name, bits in rows.items():
        print(f"  {name:<20} {bits:>7} bits")
    print(f"  {'total':<20} {breakdown.total_bits:>7} bits "
          f"= {breakdown.total_kib:.2f} KiB")
    return 0


def _lint_one(target: str, scale: str):
    """Lint one CLI target (workload name or ``.s`` file) -> LintReport."""
    import os

    from repro.analysis import Diagnostic, LintReport, Severity, lint_program
    from repro.isa.assembler import AssemblerError, assemble
    from repro.workloads.registry import build_workload

    looks_like_file = (target.endswith(".s") or os.path.sep in target
                       or os.path.isfile(target))
    if looks_like_file:
        name = os.path.basename(target)
        try:
            with open(target, encoding="utf-8") as fh:
                source = fh.read()
            program = assemble(source, name=name)
        except AssemblerError as exc:
            report = LintReport(name=name)
            report.diagnostics.append(Diagnostic(
                Severity.ERROR, "E002", exc.line_no, str(exc)))
            return report
        return lint_program(program, name=name)
    workload = build_workload(target, scale=scale)
    return lint_program(workload.program, name=target)


def _cmd_lint(args) -> int:
    from repro.analysis import format_diagnostics, format_report
    from repro.workloads.registry import workload_names

    targets = list(args.targets)
    if args.all:
        targets += [n for n in
                    workload_names("irregular") + workload_names("spec")
                    if n not in targets]
    if not targets:
        print("lint: no targets (give workload names, .s files or --all)",
              file=sys.stderr)
        return 2
    try:
        reports = [_lint_one(t, args.scale) for t in targets]
    except (OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    ok = all(report.ok for report in reports)
    n_err = sum(len(r.errors) for r in reports)
    n_warn = sum(len(r.warnings) for r in reports)
    if args.jsonl:
        from repro.obs import RunLog, make_record

        RunLog(args.jsonl).append(make_record(
            "lint", ok=ok, errors=n_err, warnings=n_warn,
            reports=[r.to_dict() for r in reports]))
    if args.json:
        print(json.dumps(
            {"ok": ok, "errors": n_err, "warnings": n_warn,
             "reports": [r.to_dict() for r in reports]},
            indent=2, sort_keys=True))
        _report_obs_outputs(args)
        return 0 if ok else 1
    verbose = args.verbose or not args.all
    for report in reports:
        text = (format_report(report, verbose=True) if verbose
                else format_diagnostics(report))
        print(text)
        if verbose:
            print()
    print(f"linted {len(reports)} target(s): "
          f"{n_err} error(s), {n_warn} warning(s)")
    _report_obs_outputs(args)
    return 0 if ok else 1


def _analyze_one(target: str, args) -> dict:
    """Analyze one CLI target; returns a result bundle for rendering.

    ``plan`` is always present; ``oracle`` only with ``--oracle`` on a
    registered workload (assembly files carry no memory image to run);
    ``drift`` lists deviations from the pinned expectation with ``--check``.
    """
    import os

    from repro.analysis import build_plan, oracle_check
    from repro.isa.assembler import assemble
    from repro.workloads.expectations import plan_expectation
    from repro.workloads.registry import build_workload

    looks_like_file = (target.endswith(".s") or os.path.sep in target
                       or os.path.isfile(target))
    memory = None
    if looks_like_file:
        name = os.path.basename(target)
        with open(target, encoding="utf-8") as fh:
            program = assemble(fh.read(), name=name)
    else:
        name = target
        workload = build_workload(target, scale=args.scale)
        program = workload.program
        memory = workload.memory
    plan = build_plan(program, name=name, vector_length=args.vector_length)

    result: dict = {"name": name, "plan": plan, "oracle": None, "drift": []}
    if args.oracle:
        if memory is None:
            result["drift"].append(
                f"{name}: --oracle needs a registered workload "
                "(assembly files have no memory image)")
        else:
            result["oracle"] = oracle_check(
                program, memory, plan, max_steps=args.steps)
    if args.check:
        expect = plan_expectation(name)
        if expect is None:
            result["drift"].append(f"{name}: no pinned plan expectation")
        elif expect != plan.summary:
            result["drift"].append(
                f"{name}: plan drifted from pinned expectation: "
                f"pinned {expect} != computed {plan.summary}")
    return result


def _cmd_analyze(args) -> int:
    from repro.analysis import format_oracle_report, format_plan
    from repro.workloads.registry import workload_names

    targets = list(args.targets)
    if args.all:
        targets += [n for n in
                    workload_names("irregular") + workload_names("spec")
                    if n not in targets]
    if not targets:
        print("analyze: no targets (give workload names, .s files or "
              "--all)", file=sys.stderr)
        return 2
    try:
        results = [_analyze_one(t, args) for t in targets]
    except (OSError, ValueError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    drift = [line for r in results for line in r["drift"]]
    oracle_ok = all(r["oracle"] is None or r["oracle"].ok for r in results)
    ok = oracle_ok and not drift
    payload = {
        "ok": ok,
        "drift": drift,
        "reports": [
            {"name": r["name"],
             "plan": r["plan"].to_dict(),
             "fingerprint": r["plan"].fingerprint(),
             "summary": [[s[0], s[1], list(s[2]), list(s[3])]
                         for s in r["plan"].summary],
             "oracle": None if r["oracle"] is None
             else r["oracle"].to_dict()}
            for r in results
        ],
    }
    if args.jsonl:
        from repro.obs import RunLog, make_record

        RunLog(args.jsonl).append(make_record("analyze", **payload))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if ok else 1
    for r in results:
        print(format_plan(r["plan"]))
        if r["oracle"] is not None:
            print(format_oracle_report(r["oracle"]))
        print()
    for line in drift:
        print(f"analyze: {line}", file=sys.stderr)
    n_oracle = sum(1 for r in results if r["oracle"] is not None)
    print(f"analyzed {len(results)} target(s), "
          f"{n_oracle} oracle-validated: "
          f"{'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


def _render_bench_table(summary: dict) -> str:
    benches = summary["benchmarks"]
    width = max(len(name) for name in benches)
    lines = [f"self-benchmark ({'quick' if summary['quick'] else 'full'}, "
             f"{summary['repetitions']} repetitions each):"]
    for name, entry in benches.items():
        if "error" in entry:
            lines.append(f"  {name:<{width}}  ERROR {entry['error']}")
            continue
        thr = entry["throughput"]
        lines.append(
            f"  {name:<{width}}  {thr['median']:>12.1f} ±{thr['mad']:>10.1f}"
            f" {entry['unit']}/s   wall {entry['wall_s']['median']:.3f}s")
        for spot in entry.get("hotspots", [])[:3]:
            lines.append(f"  {'':<{width}}    hot: {spot['site']} "
                         f"cum {spot['cumtime_s']:.3f}s")
    return "\n".join(lines)


def _cmd_bench(args) -> int:
    from dataclasses import asdict

    from repro.bench import (
        BenchConfig,
        compare,
        environment_mismatch,
        gate,
        latest_artifact,
        load_artifact,
        render_comparison,
        run_benchmarks,
        write_artifact,
    )

    try:
        config = BenchConfig(
            quick=args.quick, repetitions=args.reps or None,
            profile=args.profile, profile_top=args.profile_top,
            only=tuple(args.only), timeout_s=args.timeout or None)
        summary = run_benchmarks(config)
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    path = write_artifact(summary, args.dir)
    errors = [name for name, entry in summary["benchmarks"].items()
              if "error" in entry]

    deltas = None
    baseline_path = None
    note = ""
    if args.compare or args.gate:
        baseline_path = latest_artifact(args.dir, exclude=path)
        if baseline_path is None:
            print("bench: no prior BENCH_*.json to compare against; "
                  f"{path.name} is the first trajectory point",
                  file=sys.stderr)
        else:
            baseline = load_artifact(baseline_path)
            deltas = compare(summary, baseline,
                             rel_tolerance=args.threshold)
            note = environment_mismatch(summary, baseline)

    if args.json:
        payload = {"artifact": str(path), **summary}
        if deltas is not None:
            payload["baseline"] = str(baseline_path)
            payload["comparison"] = [asdict(d) for d in deltas]
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        print(_render_bench_table(summary))
        if deltas is not None:
            print("\n" + render_comparison(deltas, baseline_path,
                                           environment_note=note))
    print(f"bench artifact written to {path}", file=sys.stderr)
    if args.jsonl:
        from repro.obs import RunLog, make_record

        record_fields = {k: summary[k] for k in
                         ("quick", "repetitions", "environment", "profile",
                          "benchmarks")}
        if deltas is not None:
            record_fields["comparison"] = [asdict(d) for d in deltas]
        RunLog(args.jsonl).append(make_record(
            "bench", artifact=str(path), **record_fields))
        print(f"bench record appended to {args.jsonl}", file=sys.stderr)
    if errors:
        print(f"bench: {len(errors)} benchmark(s) failed to run: "
              f"{', '.join(errors)}", file=sys.stderr)
        return 1
    if args.gate and deltas is not None and not gate(deltas):
        print("bench: regression gate FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.exec import FaultPlan, parse_fault
    from repro.serve import ReproServer, ServeConfig

    faults = None
    if args.inject:
        faults = FaultPlan(specs=tuple(parse_fault(t) for t in args.inject),
                           seed=args.fault_seed)
    try:
        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            queue_limit=args.queue_limit, rate=args.rate, burst=args.burst,
            timeout_s=args.timeout or None, retries=args.retries,
            store_dir=args.store, ledger=args.ledger or None,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            drain_timeout_s=args.drain_timeout,
            progress_interval=args.progress_interval,
            sample_interval_s=args.sample_interval, faults=faults)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    server = ReproServer(config)

    def _on_signal(signum, _frame) -> None:
        server.request_drain(signal.Signals(signum).name)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server.start()
    print(f"repro serve listening on http://{config.host}:{server.port} "
          f"({config.workers} warm worker(s), queue limit "
          f"{config.queue_limit})", file=sys.stderr)
    while not server.wait(timeout=0.5):
        pass
    health = server.health()
    print(f"repro serve drained ({server._drain_reason or 'done'}): "
          f"{health['store']['entries']} stored result(s), "
          f"{health['worker_restarts']} worker restart(s)",
          file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    from repro.serve import ServeClient, ServeClientError

    client = ServeClient(args.url, client_id=args.client or None)
    try:
        job = client.submit(
            args.workload, args.technique, scale=args.scale,
            warmup=args.warmup if args.warmup >= 0 else None,
            measure=args.measure if args.measure >= 0 else None,
            backpressure_timeout_s=args.backpressure_timeout)
        payload: dict = {"job": job}
        if args.wait and job["state"] not in ("ok", "failed", "quarantined"):
            payload = client.wait(job["job_id"], timeout_s=args.wait_timeout)
    except ServeClientError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    job = payload["job"]
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        line = (f"{job['job_id']}  {job['workload']}/{job['technique']} "
                f"[{job['scale']}]  {job['state']}")
        if job.get("cached"):
            line += "  (cache hit)"
        print(line)
        if job.get("failure"):
            print(f"  failure: {job['failure']['kind']} — "
                  f"{job['failure']['message']}")
        result = payload.get("result")
        if result:
            print(f"  ipc {result['ipc']:.3f}  cycles "
                  f"{result['cycles']:.0f}  key {job['key']}")
    return 0 if job["state"] in ("ok", "queued", "running") else 1


def _cmd_jobs(args) -> int:
    from repro.serve import ServeClient, ServeClientError

    client = ServeClient(args.url)
    try:
        health = client.health()
        jobs = client.jobs()
    except ServeClientError as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"health": health, "jobs": jobs}, indent=2,
                         sort_keys=True, default=str))
        return 0
    print(f"server {args.url}: {health['status']}, "
          f"uptime {health['uptime_s']:.0f}s, "
          f"queue {health['queue_depth']}, "
          f"inflight {health['inflight']}, "
          f"restarts {health['worker_restarts']}, "
          f"store {health['store']['entries']} entries")
    if health["breaker"]:
        for key, entry in health["breaker"].items():
            print(f"  breaker {key}: {entry['state']} "
                  f"({entry['opens']} open(s))")
    from repro.serve.top import frame_fraction, progress_bar

    for job in jobs:
        flags = "".join(
            f" ({name})" for name, on in
            (("cache hit", job.get("cached")),
             ("coalesced", job.get("coalesced"))) if on)
        line = (f"  {job['job_id']:<8} {job['workload']}/{job['technique']} "
                f"[{job['scale']}]  {job['state']}{flags}")
        if job.get("wait_s") is not None:
            line += f"  wait {job['wait_s']:.2f}s"
        frame = job.get("progress")
        if job["state"] == "running" and frame:
            line += (f"  {progress_bar(frame_fraction(frame), width=12)} "
                     f"cycles {frame.get('cycle', 0):.0f}  "
                     f"ipc {frame.get('ipc', 0):.2f}")
        print(line)
    return 0


def _cmd_top(args) -> int:
    from repro.serve.top import run_top

    if args.journal:
        source: dict = {"journal": args.journal}
    else:
        source = {"url": args.url}
    try:
        return run_top(interval_s=args.interval, once=args.once,
                       out=sys.stdout, **source)
    except ValueError as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scalar Vector Runahead (MICRO 2024) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads, techniques and figures")

    def _obs_flags(p) -> None:
        p.add_argument("--json", action="store_true",
                       help="print machine-readable JSON instead of text")
        p.add_argument("--jsonl", default="", metavar="PATH",
                       help="append a structured run record to PATH")
        p.add_argument("--chrome-trace", default="", metavar="PATH",
                       help="export a Perfetto-viewable Chrome trace")

    run_p = sub.add_parser("run", help="simulate one workload/technique")
    run_p.add_argument("workload")
    run_p.add_argument("technique")
    run_p.add_argument("--scale", default="bench",
                       choices=("tiny", "bench", "default"))
    _obs_flags(run_p)

    stats_p = sub.add_parser(
        "stats", help="instrumented run: metric registry + self-profile")
    stats_p.add_argument("workload")
    stats_p.add_argument("technique", nargs="?", default="svr16")
    stats_p.add_argument("--scale", default="bench",
                         choices=("tiny", "bench", "default"))
    _obs_flags(stats_p)

    def _exec_flags(p) -> None:
        """Resilient-executor flags shared by ``figure`` and ``sweep``."""
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run cells in N fault-isolated worker processes")
        p.add_argument("--timeout", type=float, default=0.0,
                       metavar="SECONDS",
                       help="wall-clock kill fence per cell attempt")
        p.add_argument("--retries", type=int, default=1, metavar="N",
                       help="extra attempts for transient (crash/hang) "
                            "failures")
        p.add_argument("--journal", default="", metavar="PATH",
                       help="JSONL checkpoint of completed cells")
        p.add_argument("--resume", action="store_true",
                       help="serve journaled successes, re-run only the "
                            "rest (requires --journal)")
        p.add_argument("--inject", action="append", default=[],
                       metavar="WORKLOAD/TECH:KIND[:TIMES]",
                       help="inject a deterministic fault (kind: crash, "
                            "hang, flaky); repeatable")
        p.add_argument("--fault-seed", type=int, default=0, metavar="SEED",
                       help="seed for rate-based fault selection")
        p.add_argument("--no-telemetry", action="store_true",
                       help="skip per-cell span/metric/rusage capture "
                            "(on by default for CLI runs)")

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name")
    fig_p.add_argument("--scale", default="bench",
                       choices=("tiny", "bench", "default"))
    fig_p.add_argument("--workloads", default="",
                       help="comma-separated subset")
    fig_p.add_argument("--jsonl", default="", metavar="PATH",
                       help="append the figure output as a JSONL record")
    _exec_flags(fig_p)

    sweep_p = sub.add_parser(
        "sweep", help="generic parameter sweep over config axes")
    sweep_p.add_argument("base",
                         help="base technique (inorder, ooo, imp, svr16, "
                              "svr64, vr64, ...)")
    sweep_p.add_argument("--workloads", required=True,
                         help="comma-separated workload names")
    sweep_p.add_argument("--axis", action="append", default=[],
                         required=True, metavar="PATH=V1,V2,...",
                         help="swept config path (memory.*, svr.*, "
                              "core_config.* or top-level); repeatable")
    sweep_p.add_argument("--metric", default="ipc",
                         help="SimResult scalar to aggregate (default ipc)")
    sweep_p.add_argument("--scale", default="bench",
                         choices=("tiny", "bench", "default"))
    sweep_p.add_argument("--no-normalise", action="store_true",
                         help="report raw values instead of ratios to the "
                              "in-order baseline")
    sweep_p.add_argument("--json", action="store_true",
                         help="print machine-readable JSON instead of text")
    sweep_p.add_argument("--jsonl", default="", metavar="PATH",
                         help="append a structured sweep record to PATH")
    sweep_p.add_argument("--trace", default="", metavar="PATH",
                         help="write the merged multi-process Perfetto "
                              "trace (one track per worker pid)")
    _exec_flags(sweep_p)

    trace_p = sub.add_parser("trace", help="instruction-level timeline")
    trace_p.add_argument("workload")
    trace_p.add_argument("technique", nargs="?", default="svr16")
    trace_p.add_argument("--scale", default="tiny",
                         choices=("tiny", "bench", "default"))
    trace_p.add_argument("--warmup", type=int, default=800)
    trace_p.add_argument("--count", type=int, default=48)

    lint_p = sub.add_parser(
        "lint", help="static analysis: diagnostics + SVR chain estimates")
    lint_p.add_argument("targets", nargs="*", metavar="TARGET",
                        help="workload names or assembly (.s) files")
    lint_p.add_argument("--all", action="store_true",
                        help="lint every registered workload")
    lint_p.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "default"))
    lint_p.add_argument("-v", "--verbose", action="store_true",
                        help="print load/chain tables even with --all")
    lint_p.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of text")
    lint_p.add_argument("--jsonl", default="", metavar="PATH",
                        help="append a structured lint record to PATH")

    ana_p = sub.add_parser(
        "analyze", help="memory-dependence & vectorization-legality plans "
                        "with an optional dynamic oracle gate")
    ana_p.add_argument("targets", nargs="*", metavar="TARGET",
                       help="workload names or assembly (.s) files")
    ana_p.add_argument("--all", action="store_true",
                       help="analyze every registered workload")
    ana_p.add_argument("--scale", default="tiny",
                       choices=("tiny", "bench", "default"))
    ana_p.add_argument("--vector-length", type=int, default=16, metavar="VL",
                       help="lanes assumed by the legality analysis "
                            "(default 16)")
    ana_p.add_argument("--oracle", action="store_true",
                       help="run the workload and cross-validate every "
                            "static claim against observed behaviour")
    ana_p.add_argument("--steps", type=int, default=400_000, metavar="N",
                       help="oracle run step budget (default 400000)")
    ana_p.add_argument("--check", action="store_true",
                       help="fail if a plan drifts from the pinned "
                            "expectation in workloads/expectations.py")
    ana_p.add_argument("--json", action="store_true",
                       help="print machine-readable JSON instead of text")
    ana_p.add_argument("--jsonl", default="", metavar="PATH",
                       help="append a structured analyze record to PATH")

    bench_p = sub.add_parser(
        "bench", help="self-benchmark the simulator; write a BENCH_*.json "
                      "trajectory artifact")
    bench_p.add_argument("--quick", action="store_true",
                         help="CI-friendly sizes and repetition counts")
    bench_p.add_argument("--reps", type=int, default=0, metavar="N",
                         help="repetitions per benchmark (default: 3 "
                              "quick / 5 full; minimum 2)")
    bench_p.add_argument("--only", action="append", default=[],
                         metavar="PATTERN",
                         help="run only benchmarks matching this fnmatch "
                              "pattern (repeatable)")
    bench_p.add_argument("--compare", action="store_true",
                         help="compare against the latest prior "
                              "BENCH_*.json in --dir")
    bench_p.add_argument("--gate", action="store_true",
                         help="with --compare: exit 1 on any MAD-scaled "
                              "regression (implies --compare)")
    bench_p.add_argument("--threshold", type=float, default=0.25,
                         metavar="FRAC",
                         help="relative regression floor for the gate "
                              "(default 0.25)")
    bench_p.add_argument("--profile", action="store_true",
                         help="cProfile one extra repetition per "
                              "benchmark; embed top-N hot spots")
    bench_p.add_argument("--profile-top", type=int, default=15, metavar="N",
                         help="hot-spot entries kept per benchmark")
    bench_p.add_argument("--timeout", type=float, default=0.0,
                         metavar="SECONDS",
                         help="route e2e.* cells through the resilient "
                              "executor with this kill fence")
    bench_p.add_argument("--dir", default=".", metavar="PATH",
                         help="trajectory directory (default: repo root)")
    bench_p.add_argument("--json", action="store_true",
                         help="print machine-readable JSON instead of text")
    bench_p.add_argument("--jsonl", default="", metavar="PATH",
                         help="append a structured bench record to PATH")

    report_p = sub.add_parser(
        "report", help="self-contained HTML dashboard from journals, "
                       "run logs and BENCH_*.json files")
    report_p.add_argument("--journal", action="append", default=[],
                          metavar="PATH",
                          help="exec journal JSONL (repeatable)")
    report_p.add_argument("--runlog", action="append", default=[],
                          metavar="PATH",
                          help="run-log JSONL (repeatable)")
    report_p.add_argument("--bench-dir", default="", metavar="PATH",
                          help="directory holding BENCH_*.json "
                               "trajectory files")
    report_p.add_argument("-o", "--out", default="results/report.html",
                          metavar="PATH",
                          help="output HTML path "
                               "(default results/report.html)")
    report_p.add_argument("--json", action="store_true",
                          help="also print the report data as JSON")

    serve_p = sub.add_parser(
        "serve", help="long-lived simulation service (warm workers, "
                      "admission control, breakers, result cache)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8177,
                         help="listen port (0 = ephemeral; default 8177)")
    serve_p.add_argument("--workers", type=int, default=2, metavar="N",
                         help="warm worker processes (default 2)")
    serve_p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                         help="distinct queued cells before 429 "
                              "(default 32)")
    serve_p.add_argument("--rate", type=float, default=0.0, metavar="R",
                         help="per-client token-bucket refill rate in "
                              "jobs/s (0 = unlimited)")
    serve_p.add_argument("--burst", type=float, default=10.0, metavar="B",
                         help="per-client token-bucket capacity")
    serve_p.add_argument("--timeout", type=float, default=120.0,
                         metavar="SECONDS",
                         help="wall-clock hang fence per cell attempt "
                              "(0 = none)")
    serve_p.add_argument("--retries", type=int, default=1, metavar="N",
                         help="extra attempts for crash/hang verdicts")
    serve_p.add_argument("--store", default="results/store", metavar="DIR",
                         help="content-addressed result store directory")
    serve_p.add_argument("--ledger", default="results/serve-ledger.jsonl",
                         metavar="PATH",
                         help="JSONL service ledger ('' disables)")
    serve_p.add_argument("--breaker-threshold", type=int, default=3,
                         metavar="N",
                         help="consecutive crash/hang verdicts that open "
                              "a config's circuit")
    serve_p.add_argument("--breaker-cooldown", type=float, default=300.0,
                         metavar="SECONDS",
                         help="open-circuit cooldown before one trial job")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="graceful-drain budget on shutdown")
    serve_p.add_argument("--progress-interval", type=int, default=1_000,
                         metavar="N",
                         help="instructions between worker progress "
                              "frames (0 disables live progress)")
    serve_p.add_argument("--sample-interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="cadence of the metrics-history gauge "
                              "samples (/metrics/history)")
    serve_p.add_argument("--inject", action="append", default=[],
                         metavar="WORKLOAD/TECH:KIND[:TIMES]",
                         help="inject deterministic faults into workers "
                              "(drills, tests); repeatable")
    serve_p.add_argument("--fault-seed", type=int, default=0, metavar="SEED")

    submit_p = sub.add_parser(
        "submit", help="submit one cell to a running repro serve")
    submit_p.add_argument("workload")
    submit_p.add_argument("technique")
    submit_p.add_argument("--url", default="http://127.0.0.1:8177",
                          help="server base URL")
    submit_p.add_argument("--scale", default="bench",
                          choices=("tiny", "bench", "default"))
    submit_p.add_argument("--warmup", type=int, default=-1, metavar="N",
                          help="override warmup window (-1 = default)")
    submit_p.add_argument("--measure", type=int, default=-1, metavar="N",
                          help="override measure window (-1 = default)")
    submit_p.add_argument("--client", default="",
                          help="client id for rate limiting "
                               "(default: remote address)")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job reaches a terminal "
                               "verdict")
    submit_p.add_argument("--wait-timeout", type=float, default=300.0,
                          metavar="SECONDS")
    submit_p.add_argument("--backpressure-timeout", type=float, default=0.0,
                          metavar="SECONDS",
                          help="retry 429 refusals (honouring Retry-After) "
                               "up to this long")
    submit_p.add_argument("--json", action="store_true",
                          help="print machine-readable JSON instead of text")

    jobs_p = sub.add_parser(
        "jobs", help="list a running repro serve's jobs and health")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8177",
                        help="server base URL")
    jobs_p.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of text")

    top_p = sub.add_parser(
        "top", help="self-refreshing terminal view of live simulation "
                    "(server workers/queue/progress, or a local journal)")
    top_p.add_argument("--url", default="http://127.0.0.1:8177",
                       help="server base URL")
    top_p.add_argument("--journal", default="", metavar="PATH",
                       help="render a local exec/sweep journal instead "
                            "of a server")
    top_p.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh cadence (default 2s)")
    top_p.add_argument("--once", action="store_true",
                       help="print one frame without ANSI refresh codes "
                            "and exit")

    ovh_p = sub.add_parser("overhead", help="Table II budget")
    ovh_p.add_argument("n", nargs="?", type=int, default=16)
    ovh_p.add_argument("k", nargs="?", type=int, default=8)

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "stats": _cmd_stats,
                "figure": _cmd_figure, "sweep": _cmd_sweep,
                "trace": _cmd_trace, "overhead": _cmd_overhead,
                "lint": _cmd_lint, "analyze": _cmd_analyze,
                "bench": _cmd_bench, "report": _cmd_report,
                "serve": _cmd_serve, "submit": _cmd_submit,
                "jobs": _cmd_jobs, "top": _cmd_top}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
