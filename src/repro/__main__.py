"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                          show workloads, techniques and figures
``run WORKLOAD TECH [options]``   simulate one pair and print the result
``stats WORKLOAD [TECH]``         run fully instrumented; print the metric
                                  registry and the wall-clock self-profile
``figure NAME [options]``         regenerate one paper figure
``trace WORKLOAD [TECH]``         instruction-level ASCII timeline
``overhead [N] [K]``              print the Table II budget
``lint TARGET... | --all``        static analysis: diagnostics, load
                                  classes and SVR chain estimates for
                                  workloads or ``.s`` files

``run`` and ``stats`` accept ``--json`` (print ``SimResult.to_dict()`` as
JSON), ``--jsonl PATH`` (append a structured run record) and
``--chrome-trace PATH`` (export a Perfetto-viewable trace); ``figure``
accepts ``--jsonl PATH``.

Examples::

    python -m repro run PR_KR svr16 --scale bench
    python -m repro run PR_KR svr16 --chrome-trace /tmp/t.json
    python -m repro stats Camel svr16 --scale tiny
    python -m repro figure fig1 --workloads PR_KR,Camel --scale bench
    python -m repro overhead 128 8
    python -m repro lint PR_KR kernel.s
    python -m repro lint --all --json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness import experiments
from repro.harness.report import format_series, format_table
from repro.harness.runner import MAIN_TECHNIQUES, run, technique
from repro.svr.overhead import overhead_breakdown
from repro.workloads.registry import IRREGULAR_WORKLOADS, SPEC_WORKLOADS

FIGURES = {
    "fig1": experiments.fig1,
    "fig3": experiments.fig3,
    "fig11": experiments.fig11,
    "fig12": experiments.fig12,
    "fig13a": experiments.fig13a,
    "fig13b": experiments.fig13b,
    "fig14": experiments.fig14,
    "fig15": experiments.fig15,
    "fig16": experiments.fig16,
    "fig17": experiments.fig17,
    "fig18": experiments.fig18,
    "table1": experiments.table1_quantified,
    "table2": experiments.table2,
}


def _cmd_list(_args) -> int:
    print("Techniques:", ", ".join(MAIN_TECHNIQUES))
    print("\nIrregular workloads (paper suite, 33):")
    print("  " + ", ".join(IRREGULAR_WORKLOADS))
    print("\nSPEC surrogates (Fig 14, 23):")
    print("  " + ", ".join(SPEC_WORKLOADS))
    print("\nFigures:", ", ".join(sorted(FIGURES)))
    return 0


def _make_obs(args):
    """Build a RunObservation when any obs flag is set; else None."""
    jsonl = getattr(args, "jsonl", None)
    chrome = getattr(args, "chrome_trace", None)
    if not (jsonl or chrome):
        return None
    from repro.obs import RunObservation

    return RunObservation(jsonl=jsonl or None, chrome_trace=chrome or None)


def _cmd_run(args) -> int:
    obs = _make_obs(args)
    result = run(args.workload, technique(args.technique), scale=args.scale,
                 obs=obs)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True,
                         default=str))
        _report_obs_outputs(args)
        return 0
    print(f"workload   {result.workload}")
    print(f"technique  {result.technique}")
    print(f"instructions {result.core.instructions}")
    print(f"cycles     {result.core.cycles:.0f}")
    print(f"CPI        {result.cpi:.3f}")
    print(f"IPC        {result.ipc:.3f}")
    print(f"energy     {result.energy_per_instruction_nj:.3f} nJ/instr")
    print(f"DRAM lines {result.dram_lines}")
    print(f"branch acc {result.branch_accuracy:.1%}")
    if result.svr_accuracy is not None:
        print(f"SVR acc    {result.svr_accuracy:.1%}")
        print(f"PRM rounds {result.svr.prm_rounds}")
        print(f"SVI lanes  {result.svr.svi_lanes}")
    print("\nCPI stack:")
    for bucket, value in sorted(result.cpi_stack().items(),
                                key=lambda kv: -kv[1]):
        if value > 0.001:
            print(f"  {bucket:<10} {value:6.3f}")
    _report_obs_outputs(args)
    return 0


def _report_obs_outputs(args) -> None:
    if getattr(args, "chrome_trace", None):
        print(f"chrome trace written to {args.chrome_trace} "
              "(open in https://ui.perfetto.dev)", file=sys.stderr)
    if getattr(args, "jsonl", None):
        print(f"run record appended to {args.jsonl}", file=sys.stderr)


def _render_histogram(name: str, hist: dict, indent: str = "  ") -> str:
    lines = [f"{name}  count={hist['count']} mean={hist['mean']:.2f} "
             f"min={hist['min']} max={hist['max']}"]
    buckets = hist["buckets"]
    peak = max(buckets.values(), default=1)
    for label, count in buckets.items():
        bar = "#" * max(1, round(24 * count / peak))
        lines.append(f"{indent}{label:<16} {count:>8} {bar}")
    return "\n".join(lines)


def _cmd_stats(args) -> int:
    from repro.obs import RunObservation

    obs = RunObservation(jsonl=args.jsonl or None,
                         chrome_trace=args.chrome_trace or None)
    result = run(args.workload, technique(args.technique), scale=args.scale,
                 obs=obs)
    if args.json:
        print(json.dumps(obs.record, indent=2, sort_keys=True, default=str))
        _report_obs_outputs(args)
        return 0
    print(result.summary())
    snapshot = obs.metrics_snapshot()
    counters = {k: v for k, v in snapshot.items() if not isinstance(v, dict)}
    histograms = {k: v for k, v in snapshot.items() if isinstance(v, dict)}
    print("\ncounters:")
    for name, value in counters.items():
        print(f"  {name:<36} {value}")
    print("\nhistograms (log2 buckets):")
    for name, hist in histograms.items():
        print("  " + _render_histogram(name, hist, indent="    "))
    print("\nwall-clock self-profile (seconds):")
    for section, seconds in obs.profile.snapshot().items():
        print(f"  {section:<12} {seconds:.3f}")
    _report_obs_outputs(args)
    return 0


def _cmd_figure(args) -> int:
    fn = FIGURES.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.name not in ("table2",):
        kwargs["scale"] = args.scale
    if args.workloads and args.name in ("fig1", "fig11", "fig12", "fig14",
                                        "fig16", "fig17", "fig18",
                                        "table1"):
        kwargs["workloads"] = tuple(args.workloads.split(","))
    start = time.perf_counter()
    out = fn(**kwargs)
    elapsed = time.perf_counter() - start
    if args.jsonl:
        from repro.obs import RunLog, make_record

        RunLog(args.jsonl).append(make_record(
            "figure", name=args.name, arguments=kwargs, output=out,
            profile={"figure": round(elapsed, 6)}))
    first = next(iter(out.values()))
    if isinstance(first, dict):
        inner = next(iter(first.values()))
        if isinstance(inner, dict):   # fig3-style nesting
            flat = {}
            for group, sub in out.items():
                for key, stack in sub.items():
                    flat[f"{group}/{key}"] = stack
            out = flat
        out = {row: {str(k): v for k, v in cols.items()}
               for row, cols in out.items()}
        print(format_table(out, title=args.name))
    else:
        print(format_series(out, title=args.name))
    return 0


def _cmd_trace(args) -> int:
    from repro.harness.trace import capture, render, summarize

    records = capture(args.workload, args.technique, scale=args.scale,
                      warmup=args.warmup, count=args.count)
    print(render(records))
    summary = summarize(records)
    print("\nsummary:")
    for key, value in summary.items():
        print(f"  {key:<18} {value:.2f}")
    return 0


def _cmd_overhead(args) -> int:
    breakdown = overhead_breakdown(args.n, args.k)
    rows = {
        "stride detector": breakdown.stride_detector,
        "taint tracker": breakdown.taint_tracker,
        "HSLR": breakdown.hslr,
        "SRF": breakdown.srf,
        "LC": breakdown.lc,
        "LBD": breakdown.lbd,
        "scoreboard counters": breakdown.scoreboard,
        "L1 prefetch tags": breakdown.l1_prefetch_tags,
    }
    print(f"Table II: SVR hardware overhead (N={args.n}, K={args.k})")
    for name, bits in rows.items():
        print(f"  {name:<20} {bits:>7} bits")
    print(f"  {'total':<20} {breakdown.total_bits:>7} bits "
          f"= {breakdown.total_kib:.2f} KiB")
    return 0


def _lint_one(target: str, scale: str):
    """Lint one CLI target (workload name or ``.s`` file) -> LintReport."""
    import os

    from repro.analysis import Diagnostic, LintReport, Severity, lint_program
    from repro.isa.assembler import AssemblerError, assemble
    from repro.workloads.registry import build_workload

    looks_like_file = (target.endswith(".s") or os.path.sep in target
                       or os.path.isfile(target))
    if looks_like_file:
        name = os.path.basename(target)
        try:
            with open(target, encoding="utf-8") as fh:
                source = fh.read()
            program = assemble(source, name=name)
        except AssemblerError as exc:
            report = LintReport(name=name)
            report.diagnostics.append(Diagnostic(
                Severity.ERROR, "E002", exc.line_no, str(exc)))
            return report
        return lint_program(program, name=name)
    workload = build_workload(target, scale=scale)
    return lint_program(workload.program, name=target)


def _cmd_lint(args) -> int:
    from repro.analysis import format_diagnostics, format_report
    from repro.workloads.registry import workload_names

    targets = list(args.targets)
    if args.all:
        targets += [n for n in
                    workload_names("irregular") + workload_names("spec")
                    if n not in targets]
    if not targets:
        print("lint: no targets (give workload names, .s files or --all)",
              file=sys.stderr)
        return 2
    try:
        reports = [_lint_one(t, args.scale) for t in targets]
    except (OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    ok = all(report.ok for report in reports)
    n_err = sum(len(r.errors) for r in reports)
    n_warn = sum(len(r.warnings) for r in reports)
    if args.jsonl:
        from repro.obs import RunLog, make_record

        RunLog(args.jsonl).append(make_record(
            "lint", ok=ok, errors=n_err, warnings=n_warn,
            reports=[r.to_dict() for r in reports]))
    if args.json:
        print(json.dumps(
            {"ok": ok, "errors": n_err, "warnings": n_warn,
             "reports": [r.to_dict() for r in reports]},
            indent=2, sort_keys=True))
        _report_obs_outputs(args)
        return 0 if ok else 1
    verbose = args.verbose or not args.all
    for report in reports:
        text = (format_report(report, verbose=True) if verbose
                else format_diagnostics(report))
        print(text)
        if verbose:
            print()
    print(f"linted {len(reports)} target(s): "
          f"{n_err} error(s), {n_warn} warning(s)")
    _report_obs_outputs(args)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scalar Vector Runahead (MICRO 2024) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads, techniques and figures")

    def _obs_flags(p) -> None:
        p.add_argument("--json", action="store_true",
                       help="print machine-readable JSON instead of text")
        p.add_argument("--jsonl", default="", metavar="PATH",
                       help="append a structured run record to PATH")
        p.add_argument("--chrome-trace", default="", metavar="PATH",
                       help="export a Perfetto-viewable Chrome trace")

    run_p = sub.add_parser("run", help="simulate one workload/technique")
    run_p.add_argument("workload")
    run_p.add_argument("technique")
    run_p.add_argument("--scale", default="bench",
                       choices=("tiny", "bench", "default"))
    _obs_flags(run_p)

    stats_p = sub.add_parser(
        "stats", help="instrumented run: metric registry + self-profile")
    stats_p.add_argument("workload")
    stats_p.add_argument("technique", nargs="?", default="svr16")
    stats_p.add_argument("--scale", default="bench",
                         choices=("tiny", "bench", "default"))
    _obs_flags(stats_p)

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name")
    fig_p.add_argument("--scale", default="bench",
                       choices=("tiny", "bench", "default"))
    fig_p.add_argument("--workloads", default="",
                       help="comma-separated subset")
    fig_p.add_argument("--jsonl", default="", metavar="PATH",
                       help="append the figure output as a JSONL record")

    trace_p = sub.add_parser("trace", help="instruction-level timeline")
    trace_p.add_argument("workload")
    trace_p.add_argument("technique", nargs="?", default="svr16")
    trace_p.add_argument("--scale", default="tiny",
                         choices=("tiny", "bench", "default"))
    trace_p.add_argument("--warmup", type=int, default=800)
    trace_p.add_argument("--count", type=int, default=48)

    lint_p = sub.add_parser(
        "lint", help="static analysis: diagnostics + SVR chain estimates")
    lint_p.add_argument("targets", nargs="*", metavar="TARGET",
                        help="workload names or assembly (.s) files")
    lint_p.add_argument("--all", action="store_true",
                        help="lint every registered workload")
    lint_p.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "default"))
    lint_p.add_argument("-v", "--verbose", action="store_true",
                        help="print load/chain tables even with --all")
    lint_p.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of text")
    lint_p.add_argument("--jsonl", default="", metavar="PATH",
                        help="append a structured lint record to PATH")

    ovh_p = sub.add_parser("overhead", help="Table II budget")
    ovh_p.add_argument("n", nargs="?", type=int, default=16)
    ovh_p.add_argument("k", nargs="?", type=int, default=8)

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "stats": _cmd_stats,
                "figure": _cmd_figure, "trace": _cmd_trace,
                "overhead": _cmd_overhead, "lint": _cmd_lint}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
