"""Fault-isolated execution of simulation cells with timeout, retry,
journaling and salvage.

:func:`run_cells` is the one entry point every sweep and figure routes
through.  Given a list of :class:`~repro.exec.spec.RunSpec` cells and an
:class:`ExecConfig`, it:

* deduplicates cells by config hash (shared baselines run once);
* serves already-successful cells from the resume journal when
  ``resume=True``;
* runs the rest either **inline** (in-process, the fast default for
  sequential use) or **isolated** (one worker process per cell, up to
  ``jobs`` concurrently, killed at ``timeout_s`` wall-clock seconds);
* classifies every failure into a structured
  :class:`~repro.exec.failures.RunFailure` (``crash`` / ``hang`` /
  ``invalid-config``) instead of propagating;
* retries transient kinds with bounded exponential backoff;
* journals each completed cell so a re-invocation resumes where the
  previous one died;
* emits ``exec.*`` probe events on the probe bus for the observability
  layer (see ``docs/observability.md``).

With ``salvage=True`` (the default) a failed cell is reported in the
:class:`ExecReport` and the remaining cells still complete — the
partial-but-honest behaviour the figure harness needs.  With
``salvage=False`` the first terminal failure raises (the original
exception inline; :class:`~repro.exec.failures.CellFailedError` across a
process boundary, where the original object is gone).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Sequence

from repro.cores.base import SimulationError
from repro.exec.failures import (
    CRASH,
    DEFAULT_RETRY_KINDS,
    HANG,
    INVALID_CONFIG,
    CellFailedError,
    RunFailure,
)
from repro.exec.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedHang,
    _unit_interval,
    apply_fault,
)
from repro.exec.journal import RunJournal
from repro.exec.spec import ResultView, RunSpec
from repro.exec.telemetry import (
    CellCapture,
    TelemetryConfig,
    aggregate_metrics,
    build_exec_trace,
    resource_summary,
    telemetry_records,
)
from repro.obs.probes import ProbeBus, default_bus
from repro.obs.progress import ProgressConfig, advancing
from repro.obs.spans import SpanTracer


@dataclass
class ExecConfig:
    """Knobs for one :func:`run_cells` invocation."""

    jobs: int = 1                     # concurrent isolated workers
    timeout_s: float | None = None    # wall-clock kill fence per attempt
    retries: int = 1                  # extra attempts for transient kinds
    backoff_s: float = 0.25           # first retry delay ...
    backoff_factor: float = 2.0       # ... growing by this factor ...
    max_backoff_s: float = 5.0        # ... capped here
    backoff_jitter: float = 0.1       # ± fraction of seeded jitter per delay
    jitter_seed: int = 0              # decorrelates whole fleets of runs
    isolate: bool | None = None       # None = auto: jobs > 1 or timeout set
    journal: str | None = None        # JSONL checkpoint path
    resume: bool = False              # serve journaled successes, re-run rest
    faults: FaultPlan | None = None   # seeded fault injection
    salvage: bool = True              # False = strict: raise on failure
    retry_kinds: tuple[str, ...] = DEFAULT_RETRY_KINDS
    bus: ProbeBus | None = None       # probe bus; None = the default bus
    telemetry: TelemetryConfig | None = None   # per-cell capture; None = off
    progress: ProgressConfig | None = None     # in-flight frames; None = off

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"ExecConfig.jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(
                f"ExecConfig.retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"ExecConfig.timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("ExecConfig backoff delays must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"ExecConfig.backoff_jitter must be in [0, 1], "
                f"got {self.backoff_jitter}")
        if self.resume and not self.journal:
            raise ValueError("ExecConfig.resume requires a journal path")
        if self.timeout_s is not None and self.isolate is False:
            raise ValueError(
                "ExecConfig.timeout_s requires process isolation; do not "
                "force isolate=False with a timeout")

    @property
    def effective_isolate(self) -> bool:
        if self.isolate is not None:
            return self.isolate
        return self.jobs > 1 or self.timeout_s is not None

    def backoff_delay(self, failed_attempt: int, key: str = "") -> float:
        """Delay before re-running *key* after its Nth failed attempt.

        Exponential growth capped at ``max_backoff_s``, then spread by a
        deterministic ± ``backoff_jitter`` fraction hashed from
        ``(jitter_seed, key, attempt)`` — every cell backs off at its own
        phase, so a fleet of workers retrying the same transient outage
        cannot re-converge into a synchronized retry storm, yet the same
        run always produces the same delays.  Without a *key* (or with
        jitter 0) the delay is the bare capped exponential.
        """
        delay = self.backoff_s * self.backoff_factor ** (failed_attempt - 1)
        delay = min(delay, self.max_backoff_s)
        if self.backoff_jitter and key:
            u = _unit_interval(self.jitter_seed,
                               f"{key}:a{failed_attempt}")
            delay *= 1.0 + self.backoff_jitter * (2.0 * u - 1.0)
        return min(max(delay, 0.0), self.max_backoff_s)


@dataclass
class CellOutcome:
    """Terminal state of one unique cell."""

    spec: RunSpec
    key: str
    status: str                       # 'ok' | 'failed'
    result: dict | None = None
    failure: RunFailure | None = None
    attempts: int = 1
    elapsed_s: float = 0.0
    cached: bool = False              # served from the resume journal
    telemetry: dict | None = None     # CellCapture.snapshot payload

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def view(self) -> ResultView | None:
        return ResultView(self.result) if self.result is not None else None


class ExecReport:
    """Everything :func:`run_cells` learned, in caller order."""

    def __init__(self, outcomes: list[CellOutcome],
                 parent_spans: list[dict] | None = None) -> None:
        self.outcomes = outcomes
        self.by_key = {o.key: o for o in outcomes}
        # Exec-lifecycle spans recorded by the parent process (empty
        # unless ExecConfig.telemetry enabled spans).
        self.parent_spans = parent_spans or []

    @property
    def failures(self) -> list[RunFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed_count(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def attempted_count(self) -> int:
        """Cells actually executed this invocation (not journal-served)."""
        return sum(1 for o in self.outcomes if not o.cached)

    def telemetry_records(self) -> list[dict]:
        """Per-cell telemetry payloads, sorted by cell key."""
        return telemetry_records(self.outcomes)

    def merged_metrics(self) -> dict:
        """Worker metric snapshots merged into one typed snapshot
        (counters summed, histograms merged bucket-wise, gauges
        last-write in key order) — deterministic regardless of worker
        completion order."""
        return aggregate_metrics(self.outcomes)

    def resources(self) -> dict:
        """CPU-seconds total and max-RSS high-water mark over all cells
        that carried a resource sample."""
        return resource_summary(self.outcomes)

    def trace(self) -> dict:
        """Merged Chrome/Perfetto trace: one process track per worker
        pid plus the parent's lifecycle track."""
        return build_exec_trace(self.outcomes, self.parent_spans)

    def outcome_for(self, spec: RunSpec) -> CellOutcome | None:
        return self.by_key.get(spec.key)

    def result_for(self, spec: RunSpec) -> ResultView | None:
        outcome = self.by_key.get(spec.key)
        return outcome.view if outcome is not None and outcome.ok else None

    def summary(self) -> str:
        head = (f"{len(self.outcomes)} cell(s): {self.ok_count} ok"
                + (f" ({self.cached_count} from journal)"
                   if self.cached_count else "")
                + f", {self.failed_count} failed")
        lines = [head]
        for failure in self.failures:
            lines.append(f"  FAILED {failure}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker side (top-level so it is picklable under spawn too).
# ---------------------------------------------------------------------------

def _worker_main(conn, spec: RunSpec, attempt: int,
                 faults: FaultPlan | None,
                 telemetry: TelemetryConfig | None = None,
                 progress: ProgressConfig | None = None) -> None:
    """Run one cell in an isolated process; report over *conn*.

    Protocol: zero or more ``("progress", frame_dict)`` messages while
    the simulation runs, then exactly one terminal message —
    ``("ok", result_dict, telemetry_dict_or_None)`` or
    ``("fail", kind, message, extra_dict, telemetry_dict_or_None)``.
    Both pipe endpoints always run the same code version, so extending
    the tuple is safe; the harvest side also accepts the pre-telemetry
    3/4-tuples defensively.
    """
    capture = CellCapture(telemetry, spec, attempt)
    reporter = None
    if progress is not None:
        def _ship(frame) -> None:
            # A dead parent must not turn a good cell into a crash: the
            # terminal send will surface the broken pipe if it matters.
            try:
                conn.send(("progress", frame.to_dict()))
            except (BrokenPipeError, OSError):
                pass
        reporter = progress.reporter(_ship, workload=spec.workload,
                                     technique=spec.technique_name)
    try:
        if faults is not None and faults.active:
            kind = faults.decide(spec.key, spec.workload,
                                 spec.technique_name, attempt)
            if kind is not None:
                apply_fault(kind, inline=False, label=spec.label())
        result = capture.run(reporter)
        conn.send(("ok", result, capture.snapshot("ok")))
    except InjectedCrash as exc:
        conn.send(("fail", CRASH, str(exc), {},
                   capture.snapshot("failed")))
    except SimulationError as exc:
        conn.send(("fail", HANG, str(exc),
                   {"cycle": exc.cycle, "pc": exc.pc},
                   capture.snapshot("failed")))
    except (KeyError, ValueError, TypeError) as exc:
        conn.send(("fail", INVALID_CONFIG,
                   f"{type(exc).__name__}: {exc}", {},
                   capture.snapshot("failed")))
    except BaseException as exc:   # noqa: BLE001 — report, then die
        conn.send(("fail", CRASH, f"{type(exc).__name__}: {exc}",
                   {"traceback": traceback_mod.format_exc(limit=20)},
                   capture.snapshot("failed")))
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------

class _Sink:
    """Shared outcome plumbing: probe emissions, journal appends, and
    the parent-side span track of the exec lifecycle."""

    def __init__(self, config: ExecConfig) -> None:
        self.config = config
        bus = config.bus if config.bus is not None else default_bus()
        self.p_cell = bus.probe("exec.cell")
        self.p_failure = bus.probe("exec.failure")
        self.p_retry = bus.probe("exec.retry")
        self.p_timeout = bus.probe("exec.timeout")
        self.p_progress = bus.probe("exec.progress")
        self.journal = (RunJournal(config.journal, bus=bus)
                        if config.journal else None)
        self.tracer = (SpanTracer()
                       if config.telemetry is not None
                       and config.telemetry.spans else None)
        self._root = None

    def begin_run(self, cells: int) -> None:
        if self.tracer is not None:
            self._root = self.tracer.begin(
                "run_cells", cells=cells, jobs=self.config.jobs,
                isolate=self.config.effective_isolate)

    def end_run(self) -> list[dict]:
        if self.tracer is None:
            return []
        if self._root is not None:
            self.tracer.end(self._root)
            self._root = None
        return self.tracer.export()

    def attempt_span(self, spec: RunSpec, attempt: int, started: float,
                     ended: float, status: str, *,
                     spawn_s: float = 0.0, reap_s: float = 0.0) -> None:
        """Record one attempt's lifecycle on the parent track:
        ``attempt`` wrapping ``spawn`` (process launch) and ``reap``
        (worker collection), all on the shared monotonic clock."""
        if self.tracer is None:
            return
        parent = self._root.span_id if self._root is not None else None
        span = self.tracer.add(
            "attempt", started, ended, parent=parent, status=status,
            key=spec.key, workload=spec.workload,
            technique=spec.technique_name, attempt=attempt)
        if spawn_s > 0:
            self.tracer.add("spawn", started, started + spawn_s,
                            parent=span.span_id)
        if reap_s > 0:
            self.tracer.add("reap", ended - reap_s, ended,
                            parent=span.span_id)

    def ok(self, spec: RunSpec, result: dict, attempts: int,
           elapsed_s: float, telemetry: dict | None = None) -> CellOutcome:
        outcome = CellOutcome(spec=spec, key=spec.key, status="ok",
                              result=result, attempts=attempts,
                              elapsed_s=elapsed_s, telemetry=telemetry)
        self._record(outcome)
        return outcome

    def fail(self, spec: RunSpec, failure: RunFailure,
             telemetry: dict | None = None) -> CellOutcome:
        outcome = CellOutcome(spec=spec, key=spec.key, status="failed",
                              failure=failure, attempts=failure.attempts,
                              elapsed_s=failure.elapsed_s,
                              telemetry=telemetry)
        self.p_failure.emit(key=spec.key, workload=spec.workload,
                            technique=spec.technique_name,
                            kind=failure.kind, message=failure.message,
                            attempts=failure.attempts)
        self._record(outcome)
        return outcome

    def cached(self, spec: RunSpec, record: dict) -> CellOutcome:
        outcome = CellOutcome(spec=spec, key=spec.key, status="ok",
                              result=record["result"],
                              attempts=record.get("attempts", 1),
                              elapsed_s=record.get("elapsed_s", 0.0),
                              cached=True,
                              telemetry=record.get("telemetry"))
        self.p_cell.emit(key=spec.key, workload=spec.workload,
                         technique=spec.technique_name, status="ok",
                         cached=True, attempts=outcome.attempts,
                         elapsed_s=outcome.elapsed_s)
        return outcome

    def retry(self, spec: RunSpec, failed_attempt: int, kind: str,
              delay: float) -> None:
        self.p_retry.emit(key=spec.key, workload=spec.workload,
                          technique=spec.technique_name,
                          attempt=failed_attempt, kind=kind, delay_s=delay)
        if self.journal is not None:
            self.journal.append_event(
                "retry", key=spec.key, attempt=failed_attempt, kind=kind,
                delay_s=round(delay, 3))

    def timeout(self, spec: RunSpec, attempt: int) -> None:
        self.p_timeout.emit(key=spec.key, workload=spec.workload,
                            technique=spec.technique_name, attempt=attempt,
                            timeout_s=self.config.timeout_s)
        if self.journal is not None:
            self.journal.append_event(
                "timeout", key=spec.key, attempt=attempt,
                timeout_s=self.config.timeout_s)

    def _record(self, outcome: CellOutcome) -> None:
        spec = outcome.spec
        self.p_cell.emit(key=spec.key, workload=spec.workload,
                         technique=spec.technique_name,
                         status=outcome.status, cached=False,
                         attempts=outcome.attempts,
                         elapsed_s=outcome.elapsed_s)
        if self.journal is not None:
            self.journal.append_cell(
                key=spec.key, workload=spec.workload,
                technique=spec.technique_name, scale=spec.scale,
                status=outcome.status, attempts=outcome.attempts,
                elapsed_s=outcome.elapsed_s, result=outcome.result,
                failure=(outcome.failure.to_dict()
                         if outcome.failure else None),
                spec=spec.config_dict(),
                telemetry=outcome.telemetry)


def _classify_inline(spec: RunSpec, exc: BaseException) -> RunFailure:
    common = {"key": spec.key, "workload": spec.workload,
              "technique": spec.technique_name}
    if isinstance(exc, InjectedCrash):
        return RunFailure(kind=CRASH, message=str(exc), **common)
    if isinstance(exc, SimulationError):   # includes InjectedHang
        return RunFailure(kind=HANG, message=str(exc), cycle=exc.cycle,
                          pc=exc.pc, **common)
    if isinstance(exc, (KeyError, ValueError, TypeError)):
        return RunFailure(kind=INVALID_CONFIG,
                          message=f"{type(exc).__name__}: {exc}", **common)
    return RunFailure(kind=CRASH, message=f"{type(exc).__name__}: {exc}",
                      traceback=traceback_mod.format_exc(limit=20), **common)


def _run_inline(pending: list[RunSpec], config: ExecConfig,
                sink: _Sink) -> list[CellOutcome]:
    outcomes = []
    faults = config.faults if (config.faults is not None
                               and config.faults.active) else None
    for spec in pending:
        attempt = 1
        elapsed_total = 0.0
        while True:
            start = time.perf_counter()
            mono_start = time.monotonic()
            exc_seen: BaseException | None = None
            result = None
            capture = CellCapture(config.telemetry, spec, attempt)
            try:
                if faults is not None:
                    kind = faults.decide(spec.key, spec.workload,
                                         spec.technique_name, attempt)
                    if kind is not None:
                        apply_fault(kind, inline=True, label=spec.label())
                result = capture.run()
            except Exception as exc:   # noqa: BLE001 — classified below
                exc_seen = exc
            elapsed_total += time.perf_counter() - start
            mono_end = time.monotonic()
            if exc_seen is None:
                sink.attempt_span(spec, attempt, mono_start, mono_end,
                                  "ok")
                outcomes.append(sink.ok(spec, result, attempt,
                                        elapsed_total,
                                        capture.snapshot("ok")))
                break
            sink.attempt_span(spec, attempt, mono_start, mono_end,
                              "error")
            failure = _classify_inline(spec, exc_seen)
            failure.attempts = attempt
            failure.elapsed_s = elapsed_total
            if (failure.kind in config.retry_kinds
                    and attempt <= config.retries):
                delay = config.backoff_delay(attempt, spec.key)
                sink.retry(spec, attempt, failure.kind, delay)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if not config.salvage:
                raise exc_seen
            outcomes.append(sink.fail(spec, failure,
                                      capture.snapshot("failed")))
            break
    return outcomes


class _Cell:
    __slots__ = ("spec", "attempt", "ready_at", "elapsed")

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self.attempt = 1
        self.ready_at = 0.0
        self.elapsed = 0.0


class _Running:
    __slots__ = ("cell", "proc", "conn", "deadline", "started", "spawn_s",
                 "last_frame")

    def __init__(self, cell, proc, conn, deadline, started,
                 spawn_s=0.0) -> None:
        self.cell = cell
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = started
        self.spawn_s = spawn_s
        self.last_frame: dict | None = None   # latest progress snapshot


def _reap(proc: mp.Process) -> None:
    """Terminate (then kill) a worker and collect it."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=2.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=2.0)
    proc.close()


def _run_isolated(pending: list[RunSpec], config: ExecConfig,
                  sink: _Sink) -> list[CellOutcome]:
    ctx = mp.get_context()
    waiting: list[_Cell] = [_Cell(spec) for spec in pending]
    running: list[_Running] = []
    outcomes: list[CellOutcome] = []

    def launch(cell: _Cell) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, cell.spec, cell.attempt, config.faults,
                  config.telemetry, config.progress),
            daemon=True,
            name=f"repro-exec-{cell.spec.key}-a{cell.attempt}")
        spawn_start = time.monotonic()
        proc.start()
        child_conn.close()
        started = time.monotonic()
        deadline = (started + config.timeout_s
                    if config.timeout_s is not None else None)
        running.append(_Running(cell, proc, parent_conn, deadline,
                                spawn_start, started - spawn_start))

    def settle_failure(cell: _Cell, failure: RunFailure,
                       telemetry: dict | None = None) -> None:
        """Retry the cell or finalise its failure."""
        failure.attempts = cell.attempt
        failure.elapsed_s = cell.elapsed
        if (failure.kind in config.retry_kinds
                and cell.attempt <= config.retries):
            delay = config.backoff_delay(cell.attempt, cell.spec.key)
            sink.retry(cell.spec, cell.attempt, failure.kind, delay)
            cell.attempt += 1
            cell.ready_at = time.monotonic() + delay
            waiting.append(cell)
            return
        outcomes.append(sink.fail(cell.spec, failure, telemetry))
        if not config.salvage:
            for other in running:
                _reap(other.proc)
            raise CellFailedError(failure)

    def note_progress(r: _Running, frame: dict) -> None:
        """Record a live frame; an *advancing* simulated clock extends
        the wall-clock deadline into a stall fence — a slow cell that is
        still making simulated progress is left alone, while one whose
        cycle count froze is killed at the original cadence."""
        if (r.deadline is not None and config.timeout_s is not None
                and advancing(r.last_frame, frame)):
            r.deadline = time.monotonic() + config.timeout_s
        r.last_frame = frame
        spec = r.cell.spec
        if sink.p_progress.enabled:
            # The frame names its own workload/technique; spec values
            # only fill in if a (stub) frame omitted them.
            sink.p_progress.emit(**{"key": spec.key,
                                    "workload": spec.workload,
                                    "technique": spec.technique_name,
                                    "attempt": r.cell.attempt, **frame})

    def harvest(r: _Running) -> None:
        spec = r.cell.spec
        message = None
        alive = True
        try:
            while r.conn.poll():
                received = r.conn.recv()
                if received[0] == "progress":
                    note_progress(r, received[1])
                    continue
                message = received
                break
        except (EOFError, OSError):
            alive = False
        if message is None and alive:
            return                    # only progress so far; still running
        running.remove(r)
        r.cell.elapsed += time.monotonic() - r.started
        exitcode = r.proc.exitcode
        reap_start = time.monotonic()
        _reap(r.proc)
        r.conn.close()
        ended = time.monotonic()
        status = ("ok" if message is not None and message[0] == "ok"
                  else "error")
        sink.attempt_span(spec, r.cell.attempt, r.started, ended, status,
                          spawn_s=r.spawn_s, reap_s=ended - reap_start)
        if message is None:
            settle_failure(r.cell, RunFailure(
                key=spec.key, workload=spec.workload,
                technique=spec.technique_name, kind=CRASH,
                message=("worker died without reporting a result "
                         f"(exit code {exitcode})"),
                progress=r.last_frame))
            return
        telem = message[-1] if len(message) in (3, 5) else None
        if message[0] == "ok":
            outcomes.append(sink.ok(spec, message[1], r.cell.attempt,
                                    r.cell.elapsed, telem))
            return
        kind, text, extra = message[1], message[2], message[3]
        settle_failure(r.cell, RunFailure(
            key=spec.key, workload=spec.workload,
            technique=spec.technique_name, kind=kind, message=text,
            cycle=extra.get("cycle"), pc=extra.get("pc"),
            traceback=extra.get("traceback"),
            progress=r.last_frame), telem)

    def expire(r: _Running) -> None:
        running.remove(r)
        r.cell.elapsed += time.monotonic() - r.started
        spec = r.cell.spec
        reap_start = time.monotonic()
        _reap(r.proc)
        r.conn.close()
        ended = time.monotonic()
        sink.attempt_span(spec, r.cell.attempt, r.started, ended,
                          "timeout", spawn_s=r.spawn_s,
                          reap_s=ended - reap_start)
        sink.timeout(spec, r.cell.attempt)
        frame = r.last_frame
        if frame is None:
            text = (f"wall-clock timeout: no result within "
                    f"{config.timeout_s:g}s (attempt {r.cell.attempt})")
        else:
            text = (f"stalled: no simulated-cycle advance within "
                    f"{config.timeout_s:g}s — last frame at cycle "
                    f"{frame.get('cycle', 0):.0f}, pc {frame.get('pc')}, "
                    f"{frame.get('phase')} phase "
                    f"(attempt {r.cell.attempt})")
        settle_failure(r.cell, RunFailure(
            key=spec.key, workload=spec.workload,
            technique=spec.technique_name, kind=HANG, message=text,
            cycle=frame.get("cycle") if frame else None,
            pc=frame.get("pc") if frame else None,
            progress=frame))

    try:
        while waiting or running:
            now = time.monotonic()
            for cell in sorted(waiting, key=lambda c: c.ready_at):
                if len(running) >= config.jobs:
                    break
                if cell.ready_at <= now:
                    waiting.remove(cell)
                    launch(cell)
            horizons = [r.deadline for r in running
                        if r.deadline is not None]
            if waiting and len(running) < config.jobs:
                horizons.append(min(c.ready_at for c in waiting))
            if running:
                timeout = (max(0.0, min(horizons) - now)
                           if horizons else None)
                ready_conns = mp_connection.wait(
                    [r.conn for r in running], timeout=timeout)
                now = time.monotonic()
                for r in [r for r in running if r.conn in ready_conns]:
                    harvest(r)
                for r in [r for r in running
                          if r.deadline is not None and now >= r.deadline]:
                    expire(r)
            elif waiting:
                time.sleep(max(0.0,
                               min(c.ready_at for c in waiting) - now))
    finally:
        for r in running:
            _reap(r.proc)
    return outcomes


def run_cells(specs: Sequence[RunSpec],
              config: ExecConfig | None = None) -> ExecReport:
    """Execute every unique cell in *specs*; see the module docstring."""
    config = config or ExecConfig()
    sink = _Sink(config)
    known = (sink.journal.load()
             if sink.journal is not None and config.resume else {})

    order: list[str] = []
    unique: dict[str, RunSpec] = {}
    outcomes: dict[str, CellOutcome] = {}
    pending: list[RunSpec] = []
    for spec in specs:
        key = spec.key
        if key in unique:
            continue
        unique[key] = spec
        order.append(key)
        record = known.get(key)
        if (record is not None and record.get("status") == "ok"
                and record.get("result") is not None):
            outcomes[key] = sink.cached(spec, record)
        else:
            pending.append(spec)

    sink.begin_run(len(order))
    try:
        if pending:
            runner = (_run_isolated if config.effective_isolate
                      else _run_inline)
            for outcome in runner(pending, config, sink):
                outcomes[outcome.key] = outcome
    finally:
        parent_spans = sink.end_run()
    return ExecReport([outcomes[k] for k in order],
                      parent_spans=parent_spans)
