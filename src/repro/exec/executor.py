"""Fault-isolated execution of simulation cells with timeout, retry,
journaling and salvage.

:func:`run_cells` is the one entry point every sweep and figure routes
through.  Given a list of :class:`~repro.exec.spec.RunSpec` cells and an
:class:`ExecConfig`, it:

* deduplicates cells by config hash (shared baselines run once);
* serves already-successful cells from the resume journal when
  ``resume=True``;
* runs the rest either **inline** (in-process, the fast default for
  sequential use) or **isolated** (one worker process per cell, up to
  ``jobs`` concurrently, killed at ``timeout_s`` wall-clock seconds);
* classifies every failure into a structured
  :class:`~repro.exec.failures.RunFailure` (``crash`` / ``hang`` /
  ``invalid-config``) instead of propagating;
* retries transient kinds with bounded exponential backoff;
* journals each completed cell so a re-invocation resumes where the
  previous one died;
* emits ``exec.*`` probe events on the probe bus for the observability
  layer (see ``docs/observability.md``).

With ``salvage=True`` (the default) a failed cell is reported in the
:class:`ExecReport` and the remaining cells still complete — the
partial-but-honest behaviour the figure harness needs.  With
``salvage=False`` the first terminal failure raises (the original
exception inline; :class:`~repro.exec.failures.CellFailedError` across a
process boundary, where the original object is gone).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Sequence

from repro.cores.base import SimulationError
from repro.exec.failures import (
    CRASH,
    DEFAULT_RETRY_KINDS,
    HANG,
    INVALID_CONFIG,
    CellFailedError,
    RunFailure,
)
from repro.exec.faults import FaultPlan, InjectedCrash, InjectedHang, apply_fault
from repro.exec.journal import RunJournal
from repro.exec.spec import ResultView, RunSpec, execute_spec
from repro.obs.probes import ProbeBus, default_bus


@dataclass
class ExecConfig:
    """Knobs for one :func:`run_cells` invocation."""

    jobs: int = 1                     # concurrent isolated workers
    timeout_s: float | None = None    # wall-clock kill fence per attempt
    retries: int = 1                  # extra attempts for transient kinds
    backoff_s: float = 0.25           # first retry delay ...
    backoff_factor: float = 2.0       # ... growing by this factor ...
    max_backoff_s: float = 5.0        # ... capped here
    isolate: bool | None = None       # None = auto: jobs > 1 or timeout set
    journal: str | None = None        # JSONL checkpoint path
    resume: bool = False              # serve journaled successes, re-run rest
    faults: FaultPlan | None = None   # seeded fault injection
    salvage: bool = True              # False = strict: raise on failure
    retry_kinds: tuple[str, ...] = DEFAULT_RETRY_KINDS
    bus: ProbeBus | None = None       # probe bus; None = the default bus

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"ExecConfig.jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(
                f"ExecConfig.retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"ExecConfig.timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("ExecConfig backoff delays must be >= 0")
        if self.resume and not self.journal:
            raise ValueError("ExecConfig.resume requires a journal path")
        if self.timeout_s is not None and self.isolate is False:
            raise ValueError(
                "ExecConfig.timeout_s requires process isolation; do not "
                "force isolate=False with a timeout")

    @property
    def effective_isolate(self) -> bool:
        if self.isolate is not None:
            return self.isolate
        return self.jobs > 1 or self.timeout_s is not None

    def backoff_delay(self, failed_attempt: int) -> float:
        delay = self.backoff_s * self.backoff_factor ** (failed_attempt - 1)
        return min(delay, self.max_backoff_s)


@dataclass
class CellOutcome:
    """Terminal state of one unique cell."""

    spec: RunSpec
    key: str
    status: str                       # 'ok' | 'failed'
    result: dict | None = None
    failure: RunFailure | None = None
    attempts: int = 1
    elapsed_s: float = 0.0
    cached: bool = False              # served from the resume journal

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def view(self) -> ResultView | None:
        return ResultView(self.result) if self.result is not None else None


class ExecReport:
    """Everything :func:`run_cells` learned, in caller order."""

    def __init__(self, outcomes: list[CellOutcome]) -> None:
        self.outcomes = outcomes
        self.by_key = {o.key: o for o in outcomes}

    @property
    def failures(self) -> list[RunFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed_count(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def attempted_count(self) -> int:
        """Cells actually executed this invocation (not journal-served)."""
        return sum(1 for o in self.outcomes if not o.cached)

    def outcome_for(self, spec: RunSpec) -> CellOutcome | None:
        return self.by_key.get(spec.key)

    def result_for(self, spec: RunSpec) -> ResultView | None:
        outcome = self.by_key.get(spec.key)
        return outcome.view if outcome is not None and outcome.ok else None

    def summary(self) -> str:
        head = (f"{len(self.outcomes)} cell(s): {self.ok_count} ok"
                + (f" ({self.cached_count} from journal)"
                   if self.cached_count else "")
                + f", {self.failed_count} failed")
        lines = [head]
        for failure in self.failures:
            lines.append(f"  FAILED {failure}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker side (top-level so it is picklable under spawn too).
# ---------------------------------------------------------------------------

def _worker_main(conn, spec: RunSpec, attempt: int,
                 faults: FaultPlan | None) -> None:
    """Run one cell in an isolated process; report over *conn*.

    Protocol: ``("ok", result_dict)`` or
    ``("fail", kind, message, extra_dict)``.
    """
    try:
        if faults is not None and faults.active:
            kind = faults.decide(spec.key, spec.workload,
                                 spec.technique_name, attempt)
            if kind is not None:
                apply_fault(kind, inline=False, label=spec.label())
        conn.send(("ok", execute_spec(spec)))
    except InjectedCrash as exc:
        conn.send(("fail", CRASH, str(exc), {}))
    except SimulationError as exc:
        conn.send(("fail", HANG, str(exc),
                   {"cycle": exc.cycle, "pc": exc.pc}))
    except (KeyError, ValueError, TypeError) as exc:
        conn.send(("fail", INVALID_CONFIG,
                   f"{type(exc).__name__}: {exc}", {}))
    except BaseException as exc:   # noqa: BLE001 — report, then die
        conn.send(("fail", CRASH, f"{type(exc).__name__}: {exc}",
                   {"traceback": traceback_mod.format_exc(limit=20)}))
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------

class _Sink:
    """Shared outcome plumbing: probe emissions + journal appends."""

    def __init__(self, config: ExecConfig) -> None:
        self.config = config
        bus = config.bus if config.bus is not None else default_bus()
        self.p_cell = bus.probe("exec.cell")
        self.p_failure = bus.probe("exec.failure")
        self.p_retry = bus.probe("exec.retry")
        self.p_timeout = bus.probe("exec.timeout")
        self.journal = (RunJournal(config.journal)
                        if config.journal else None)

    def ok(self, spec: RunSpec, result: dict, attempts: int,
           elapsed_s: float) -> CellOutcome:
        outcome = CellOutcome(spec=spec, key=spec.key, status="ok",
                              result=result, attempts=attempts,
                              elapsed_s=elapsed_s)
        self._record(outcome)
        return outcome

    def fail(self, spec: RunSpec, failure: RunFailure) -> CellOutcome:
        outcome = CellOutcome(spec=spec, key=spec.key, status="failed",
                              failure=failure, attempts=failure.attempts,
                              elapsed_s=failure.elapsed_s)
        self.p_failure.emit(key=spec.key, workload=spec.workload,
                            technique=spec.technique_name,
                            kind=failure.kind, message=failure.message,
                            attempts=failure.attempts)
        self._record(outcome)
        return outcome

    def cached(self, spec: RunSpec, record: dict) -> CellOutcome:
        outcome = CellOutcome(spec=spec, key=spec.key, status="ok",
                              result=record["result"],
                              attempts=record.get("attempts", 1),
                              elapsed_s=record.get("elapsed_s", 0.0),
                              cached=True)
        self.p_cell.emit(key=spec.key, workload=spec.workload,
                         technique=spec.technique_name, status="ok",
                         cached=True, attempts=outcome.attempts,
                         elapsed_s=outcome.elapsed_s)
        return outcome

    def retry(self, spec: RunSpec, failed_attempt: int, kind: str,
              delay: float) -> None:
        self.p_retry.emit(key=spec.key, workload=spec.workload,
                          technique=spec.technique_name,
                          attempt=failed_attempt, kind=kind, delay_s=delay)
        if self.journal is not None:
            self.journal.append_event(
                "retry", key=spec.key, attempt=failed_attempt, kind=kind,
                delay_s=round(delay, 3))

    def timeout(self, spec: RunSpec, attempt: int) -> None:
        self.p_timeout.emit(key=spec.key, workload=spec.workload,
                            technique=spec.technique_name, attempt=attempt,
                            timeout_s=self.config.timeout_s)
        if self.journal is not None:
            self.journal.append_event(
                "timeout", key=spec.key, attempt=attempt,
                timeout_s=self.config.timeout_s)

    def _record(self, outcome: CellOutcome) -> None:
        spec = outcome.spec
        self.p_cell.emit(key=spec.key, workload=spec.workload,
                         technique=spec.technique_name,
                         status=outcome.status, cached=False,
                         attempts=outcome.attempts,
                         elapsed_s=outcome.elapsed_s)
        if self.journal is not None:
            self.journal.append_cell(
                key=spec.key, workload=spec.workload,
                technique=spec.technique_name, scale=spec.scale,
                status=outcome.status, attempts=outcome.attempts,
                elapsed_s=outcome.elapsed_s, result=outcome.result,
                failure=(outcome.failure.to_dict()
                         if outcome.failure else None),
                spec=spec.config_dict())


def _classify_inline(spec: RunSpec, exc: BaseException) -> RunFailure:
    common = {"key": spec.key, "workload": spec.workload,
              "technique": spec.technique_name}
    if isinstance(exc, InjectedCrash):
        return RunFailure(kind=CRASH, message=str(exc), **common)
    if isinstance(exc, SimulationError):   # includes InjectedHang
        return RunFailure(kind=HANG, message=str(exc), cycle=exc.cycle,
                          pc=exc.pc, **common)
    if isinstance(exc, (KeyError, ValueError, TypeError)):
        return RunFailure(kind=INVALID_CONFIG,
                          message=f"{type(exc).__name__}: {exc}", **common)
    return RunFailure(kind=CRASH, message=f"{type(exc).__name__}: {exc}",
                      traceback=traceback_mod.format_exc(limit=20), **common)


def _run_inline(pending: list[RunSpec], config: ExecConfig,
                sink: _Sink) -> list[CellOutcome]:
    outcomes = []
    faults = config.faults if (config.faults is not None
                               and config.faults.active) else None
    for spec in pending:
        attempt = 1
        elapsed_total = 0.0
        while True:
            start = time.perf_counter()
            exc_seen: BaseException | None = None
            result = None
            try:
                if faults is not None:
                    kind = faults.decide(spec.key, spec.workload,
                                         spec.technique_name, attempt)
                    if kind is not None:
                        apply_fault(kind, inline=True, label=spec.label())
                result = execute_spec(spec)
            except Exception as exc:   # noqa: BLE001 — classified below
                exc_seen = exc
            elapsed_total += time.perf_counter() - start
            if exc_seen is None:
                outcomes.append(sink.ok(spec, result, attempt,
                                        elapsed_total))
                break
            failure = _classify_inline(spec, exc_seen)
            failure.attempts = attempt
            failure.elapsed_s = elapsed_total
            if (failure.kind in config.retry_kinds
                    and attempt <= config.retries):
                delay = config.backoff_delay(attempt)
                sink.retry(spec, attempt, failure.kind, delay)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if not config.salvage:
                raise exc_seen
            outcomes.append(sink.fail(spec, failure))
            break
    return outcomes


class _Cell:
    __slots__ = ("spec", "attempt", "ready_at", "elapsed")

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self.attempt = 1
        self.ready_at = 0.0
        self.elapsed = 0.0


class _Running:
    __slots__ = ("cell", "proc", "conn", "deadline", "started")

    def __init__(self, cell, proc, conn, deadline, started) -> None:
        self.cell = cell
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = started


def _reap(proc: mp.Process) -> None:
    """Terminate (then kill) a worker and collect it."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=2.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=2.0)
    proc.close()


def _run_isolated(pending: list[RunSpec], config: ExecConfig,
                  sink: _Sink) -> list[CellOutcome]:
    ctx = mp.get_context()
    waiting: list[_Cell] = [_Cell(spec) for spec in pending]
    running: list[_Running] = []
    outcomes: list[CellOutcome] = []

    def launch(cell: _Cell) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, cell.spec, cell.attempt, config.faults),
            daemon=True,
            name=f"repro-exec-{cell.spec.key}-a{cell.attempt}")
        proc.start()
        child_conn.close()
        started = time.monotonic()
        deadline = (started + config.timeout_s
                    if config.timeout_s is not None else None)
        running.append(_Running(cell, proc, parent_conn, deadline, started))

    def settle_failure(cell: _Cell, failure: RunFailure) -> None:
        """Retry the cell or finalise its failure."""
        failure.attempts = cell.attempt
        failure.elapsed_s = cell.elapsed
        if (failure.kind in config.retry_kinds
                and cell.attempt <= config.retries):
            delay = config.backoff_delay(cell.attempt)
            sink.retry(cell.spec, cell.attempt, failure.kind, delay)
            cell.attempt += 1
            cell.ready_at = time.monotonic() + delay
            waiting.append(cell)
            return
        outcomes.append(sink.fail(cell.spec, failure))
        if not config.salvage:
            for other in running:
                _reap(other.proc)
            raise CellFailedError(failure)

    def harvest(r: _Running) -> None:
        running.remove(r)
        r.cell.elapsed += time.monotonic() - r.started
        spec = r.cell.spec
        try:
            message = r.conn.recv() if r.conn.poll() else None
        except (EOFError, OSError):
            message = None
        exitcode = r.proc.exitcode
        _reap(r.proc)
        r.conn.close()
        if message is None:
            settle_failure(r.cell, RunFailure(
                key=spec.key, workload=spec.workload,
                technique=spec.technique_name, kind=CRASH,
                message=("worker died without reporting a result "
                         f"(exit code {exitcode})")))
            return
        if message[0] == "ok":
            outcomes.append(sink.ok(spec, message[1], r.cell.attempt,
                                    r.cell.elapsed))
            return
        _, kind, text, extra = message
        settle_failure(r.cell, RunFailure(
            key=spec.key, workload=spec.workload,
            technique=spec.technique_name, kind=kind, message=text,
            cycle=extra.get("cycle"), pc=extra.get("pc"),
            traceback=extra.get("traceback")))

    def expire(r: _Running) -> None:
        running.remove(r)
        r.cell.elapsed += time.monotonic() - r.started
        spec = r.cell.spec
        _reap(r.proc)
        r.conn.close()
        sink.timeout(spec, r.cell.attempt)
        settle_failure(r.cell, RunFailure(
            key=spec.key, workload=spec.workload,
            technique=spec.technique_name, kind=HANG,
            message=(f"wall-clock timeout: no result within "
                     f"{config.timeout_s:g}s (attempt {r.cell.attempt})")))

    try:
        while waiting or running:
            now = time.monotonic()
            for cell in sorted(waiting, key=lambda c: c.ready_at):
                if len(running) >= config.jobs:
                    break
                if cell.ready_at <= now:
                    waiting.remove(cell)
                    launch(cell)
            horizons = [r.deadline for r in running
                        if r.deadline is not None]
            if waiting and len(running) < config.jobs:
                horizons.append(min(c.ready_at for c in waiting))
            if running:
                timeout = (max(0.0, min(horizons) - now)
                           if horizons else None)
                ready_conns = mp_connection.wait(
                    [r.conn for r in running], timeout=timeout)
                now = time.monotonic()
                for r in [r for r in running if r.conn in ready_conns]:
                    harvest(r)
                for r in [r for r in running
                          if r.deadline is not None and now >= r.deadline]:
                    expire(r)
            elif waiting:
                time.sleep(max(0.0,
                               min(c.ready_at for c in waiting) - now))
    finally:
        for r in running:
            _reap(r.proc)
    return outcomes


def run_cells(specs: Sequence[RunSpec],
              config: ExecConfig | None = None) -> ExecReport:
    """Execute every unique cell in *specs*; see the module docstring."""
    config = config or ExecConfig()
    sink = _Sink(config)
    known = (sink.journal.load()
             if sink.journal is not None and config.resume else {})

    order: list[str] = []
    unique: dict[str, RunSpec] = {}
    outcomes: dict[str, CellOutcome] = {}
    pending: list[RunSpec] = []
    for spec in specs:
        key = spec.key
        if key in unique:
            continue
        unique[key] = spec
        order.append(key)
        record = known.get(key)
        if (record is not None and record.get("status") == "ok"
                and record.get("result") is not None):
            outcomes[key] = sink.cached(spec, record)
        else:
            pending.append(spec)

    if pending:
        runner = (_run_isolated if config.effective_isolate
                  else _run_inline)
        for outcome in runner(pending, config, sink):
            outcomes[outcome.key] = outcome
    return ExecReport([outcomes[k] for k in order])
