"""Cross-process telemetry: what a worker captures and how the parent
merges it.

Process isolation (PR 3) made cells robust but blinded the observability
layer — a worker's metrics, spans and trace events died with the worker.
This module is the bridge.  Each worker (or inline attempt) builds a
:class:`CellCapture` around :func:`repro.exec.spec.execute_spec`:

* a :class:`~repro.obs.spans.SpanTracer` spanning the cell and the
  simulator phases (``build`` / ``warmup`` / ``measure`` /
  ``serialize``), plus cycle-clock PRM phase spans bridged off the
  probe bus;
* a private :class:`~repro.obs.MetricsRegistry` fed by
  ``install_standard_metrics`` over the measured window, exported in
  the *typed* (mergeable) form;
* a bounded tail of probe-derived Chrome trace events;
* ``resource.getrusage`` CPU time (delta over the attempt) and max RSS
  sampled at cell exit.

The resulting :meth:`CellCapture.snapshot` dict is JSON-ready: it ships
back over the worker result pipe, lands in the resume journal, and is
aggregated by :func:`aggregate_metrics` / :func:`build_exec_trace` on
the parent side.  Capture is **opt-in** via
:class:`TelemetryConfig` — the executor's default path stays exactly as
cheap as before, which is what keeps the ``repro bench`` trajectory
flat.
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs import (
    ChromeTraceBuilder,
    RunObservation,
    SpanTracer,
    Subscription,
    bridge_probe_spans,
    build_multiprocess_trace,
    merge_typed_snapshots,
    spans_to_trace_events,
)

if TYPE_CHECKING:                      # import cycle: executor imports us
    from repro.exec.executor import CellOutcome
    from repro.exec.spec import RunSpec

try:
    import resource
except ImportError:                    # non-POSIX platform
    resource = None  # type: ignore[assignment]

TELEMETRY_VERSION = 1

# Sim trace events keep their builder tids (1..5); span slices go on a
# tid far above them so the tracks never collide on a worker's process
# track in the merged view.
SPAN_TID = 100


@dataclass(frozen=True)
class TelemetryConfig:
    """What each attempt captures.  All knobs picklable (shipped to the
    worker with its spec)."""

    metrics: bool = True        # per-worker typed MetricsRegistry snapshot
    spans: bool = True          # lifecycle + sim phase spans
    rusage: bool = True         # CPU time + max RSS at cell exit
    trace_tail: int = 128       # last N probe-derived trace events; 0 = off
    max_spans: int = 2048

    def __post_init__(self) -> None:
        if self.trace_tail < 0:
            raise ValueError("TelemetryConfig.trace_tail must be >= 0, "
                             f"got {self.trace_tail}")
        if self.max_spans < 1:
            raise ValueError("TelemetryConfig.max_spans must be >= 1, "
                             f"got {self.max_spans}")


def _rusage() -> tuple[float, float, int]:
    """(user_s, system_s, max_rss_kib) for this process; zeros when the
    platform has no ``resource`` module."""
    if resource is None:
        return 0.0, 0.0, 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    max_rss = usage.ru_maxrss
    if sys.platform == "darwin":       # bytes there, KiB on Linux
        max_rss //= 1024
    return usage.ru_utime, usage.ru_stime, int(max_rss)


class _CaptureObservation(RunObservation):
    """A :class:`RunObservation` that also opens spans around the
    simulator phases and anchors the measured window on the wall clock
    (the anchor that lets cycle-time trace events be rebased onto the
    merged wall timeline)."""

    def __init__(self, config: TelemetryConfig,
                 tracer: SpanTracer | None) -> None:
        super().__init__(metrics=config.metrics)
        self.tracer = tracer
        if config.trace_tail > 0:
            # The builder keeps the head of the stream; the snapshot
            # slices the tail of what was kept.  The cap bounds worker
            # memory while leaving room for the tail to be meaningful.
            self.trace = ChromeTraceBuilder(
                max_events=max(config.trace_tail * 64, 4096))
        self.measure_wall: dict[str, float] = {}
        self._bridge: list[Subscription] = []

    @contextmanager
    def section(self, name: str):
        with super().section(name):
            if self.tracer is None:
                yield
            else:
                with self.tracer.span(name):
                    yield

    def begin_measure(self) -> None:
        super().begin_measure()
        self.measure_wall["start"] = time.monotonic()
        if self.tracer is not None:
            self._bridge = bridge_probe_spans(self.tracer, self.bus)

    def end_measure(self) -> None:
        super().end_measure()
        self.measure_wall.setdefault("start", time.monotonic())
        self.measure_wall["end"] = time.monotonic()
        for sub in self._bridge:
            sub.cancel()
        self._bridge = []


class CellCapture:
    """Telemetry envelope for one attempt of one cell.

    Usage (worker or inline)::

        capture = CellCapture(config, spec, attempt)
        result = capture.run()               # execute_spec under spans
        payload = capture.snapshot("ok")     # JSON-ready, never raises
    """

    def __init__(self, config: TelemetryConfig | None, spec: "RunSpec",
                 attempt: int) -> None:
        self.config = config
        self.spec = spec
        self.attempt = attempt
        self.tracer: SpanTracer | None = None
        self.obs: _CaptureObservation | None = None
        self._cpu0 = (0.0, 0.0)
        if config is None:
            return
        if config.spans:
            self.tracer = SpanTracer(max_spans=config.max_spans)
        if config.metrics or config.trace_tail > 0 or config.spans:
            self.obs = _CaptureObservation(config, self.tracer)
        if config.rusage:
            user, system, _ = _rusage()
            self._cpu0 = (user, system)

    def run(self, progress: Any = None) -> dict[str, Any]:
        from repro.exec.spec import execute_spec

        if self.config is None:
            return execute_spec(self.spec, progress=progress)
        cell = (self.tracer.begin(
                    "cell", key=self.spec.key, workload=self.spec.workload,
                    technique=self.spec.technique_name, attempt=self.attempt)
                if self.tracer is not None else None)
        try:
            result = execute_spec(self.spec, obs=self.obs,
                                  progress=progress)
        except BaseException:
            if cell is not None:
                self.tracer.end(cell, status="error")
            raise
        if self.tracer is not None:
            with self.tracer.span("serialize"):
                # Measure the JSON-sizing cost of the result dict the
                # pipe is about to carry; the send itself happens in the
                # caller, after this span closes.
                pass
            self.tracer.end(cell)
        return result

    def snapshot(self, status: str) -> dict[str, Any] | None:
        """The JSON-ready telemetry payload; never raises (a telemetry
        bug must not turn a good cell into a failed one)."""
        if self.config is None:
            return None
        try:
            return self._snapshot(status)
        except Exception:        # pragma: no cover - defensive
            return None

    def _snapshot(self, status: str) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "v": TELEMETRY_VERSION,
            "pid": os.getpid(),
            "status": status,
            "key": self.spec.key,
            "workload": self.spec.workload,
            "technique": self.spec.technique_name,
            "attempt": self.attempt,
        }
        if self.config.rusage:
            user, system, max_rss = _rusage()
            payload["cpu_user_s"] = round(user - self._cpu0[0], 6)
            payload["cpu_system_s"] = round(system - self._cpu0[1], 6)
            payload["cpu_s"] = round(payload["cpu_user_s"]
                                     + payload["cpu_system_s"], 6)
            payload["max_rss_kib"] = max_rss
        if self.tracer is not None:
            # Close anything a mid-measure exception left dangling so the
            # span tree ships complete.
            while self.tracer.current is not None:
                self.tracer.end(status="error")
            payload["spans"] = self.tracer.export()
            payload["spans_dropped"] = self.tracer.dropped
        if self.obs is not None:
            if self.obs.registry is not None:
                payload["metrics"] = self.obs.registry.typed_snapshot()
            if self.obs.trace is not None:
                tail = self.obs.trace.events[-self.config.trace_tail:]
                payload["trace_events"] = tail
                payload["trace_dropped"] = (
                    self.obs.trace.dropped
                    + len(self.obs.trace.events) - len(tail))
            if self.obs.measure_wall:
                payload["measure_wall"] = dict(self.obs.measure_wall)
            payload["profile"] = self.obs.profile.snapshot()
        return payload


# ---------------------------------------------------------------------------
# Parent-side aggregation.
# ---------------------------------------------------------------------------

def telemetry_records(outcomes: "list[CellOutcome]") -> list[dict[str, Any]]:
    """Telemetry payloads of *outcomes*, sorted by cell key — the
    deterministic order every aggregate below relies on, so worker
    completion order never changes a merged number."""
    pairs = [(o.key, o.telemetry) for o in outcomes
             if o.telemetry is not None]
    return [telemetry for _key, telemetry in sorted(pairs,
                                                    key=lambda kv: kv[0])]


def aggregate_metrics(outcomes: "list[CellOutcome]") -> dict[str, Any]:
    """Merged typed metric snapshot over every outcome carrying one."""
    return merge_typed_snapshots(
        [t["metrics"] for t in telemetry_records(outcomes)
         if t.get("metrics")])


def resource_summary(outcomes: "list[CellOutcome]") -> dict[str, Any]:
    """Totals of the per-cell resource samples: CPU seconds sum, RSS
    takes the high-water mark (inline cells share one watermark)."""
    records = telemetry_records(outcomes)
    cpu = sum(t.get("cpu_s", 0.0) for t in records)
    rss = max((t.get("max_rss_kib", 0) for t in records), default=0)
    return {"cells": len(records), "cpu_s": round(cpu, 6),
            "max_rss_kib": rss,
            "pids": sorted({t["pid"] for t in records})}


def _rebase_sim_events(events: list[dict[str, Any]],
                       measure_wall: dict[str, float],
                       ) -> list[dict[str, Any]]:
    """Map cycle-time trace events affinely onto the wall-clock measure
    window they were recorded in, so a worker's sim-side tail renders
    inside its ``measure`` span on the merged timeline."""
    if not events or "start" not in measure_wall:
        return []
    times = [ev["ts"] for ev in events
             if isinstance(ev.get("ts"), (int, float))]
    ends = [ev["ts"] + ev.get("dur", 0.0) for ev in events
            if isinstance(ev.get("ts"), (int, float))]
    if not times:
        return []
    t_lo, t_hi = min(times), max(max(ends), min(times))
    wall_lo = measure_wall["start"] * 1e6
    wall_hi = measure_wall.get("end", measure_wall["start"]) * 1e6
    span = max(wall_hi - wall_lo, 1.0)
    scale = span / max(t_hi - t_lo, 1.0)
    out = []
    for ev in events:
        if not isinstance(ev.get("ts"), (int, float)):
            continue
        ev = dict(ev)
        ev["ts"] = wall_lo + (ev["ts"] - t_lo) * scale
        if isinstance(ev.get("dur"), (int, float)):
            ev["dur"] = max(ev["dur"] * scale, 0.01)
        out.append(ev)
    return out


def build_exec_trace(outcomes: "list[CellOutcome]",
                     parent_spans: list[dict[str, Any]] | None = None,
                     ) -> dict[str, Any]:
    """One Perfetto trace for a whole executor invocation: the parent's
    lifecycle spans on its own process track, plus one process track per
    worker pid carrying that worker's spans and its rebased sim-event
    tail."""
    processes: list[dict[str, Any]] = []
    if parent_spans:
        processes.append({
            "pid": os.getpid(), "label": "repro-exec parent",
            "events": spans_to_trace_events(parent_spans, pid=os.getpid(),
                                            tid=SPAN_TID)})
    for telemetry in telemetry_records(outcomes):
        pid = telemetry["pid"]
        label = (f"worker {pid} "
                 f"({telemetry['workload']}/{telemetry['technique']})")
        events = spans_to_trace_events(telemetry.get("spans") or [],
                                       pid=pid, tid=SPAN_TID)
        events += _rebase_sim_events(telemetry.get("trace_events") or [],
                                     telemetry.get("measure_wall") or {})
        processes.append({"pid": pid, "label": label, "events": events})
    return build_multiprocess_trace(processes)
