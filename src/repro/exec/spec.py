"""Run specifications, deterministic config hashing, and result views.

A :class:`RunSpec` names one (workload, technique, window) simulation cell.
Its :attr:`~RunSpec.key` is a SHA-256 digest of the canonical JSON of the
full configuration, so the same cell always hashes to the same key — the
property the retry/resume journal (:mod:`repro.exec.journal`) relies on to
recognise already-completed work across process boundaries and restarts.

Because isolated workers hand results back as the JSON-ready dict of
:meth:`repro.harness.runner.SimResult.to_dict` (which is also what the
journal stores), downstream consumers see a :class:`ResultView`: a
read-only object exposing the same attribute surface the figure functions
use on a live ``SimResult`` (``ipc``, ``cpi_stack()``,
``hierarchy.accuracy(...)``, ...).  Fresh in-process runs are wrapped in
the very same view, so resumed and uninterrupted sweeps aggregate from
byte-identical inputs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.harness.runner import TechniqueConfig, technique


def config_key(config: dict) -> str:
    """Deterministic 16-hex-digit key for a JSON-ready config dict."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: everything :func:`repro.harness.runner.run`
    needs, in picklable form (shipped to isolated worker processes)."""

    workload: str
    tech: TechniqueConfig
    scale: str = "bench"
    warmup: int | None = None
    measure: int | None = None

    @classmethod
    def make(cls, workload: str, tech: TechniqueConfig | str,
             scale: str = "bench", warmup: int | None = None,
             measure: int | None = None) -> "RunSpec":
        if isinstance(tech, str):
            tech = technique(tech)
        return cls(workload=workload, tech=tech, scale=scale,
                   warmup=warmup, measure=measure)

    @property
    def technique_name(self) -> str:
        return self.tech.name

    def config_dict(self) -> dict:
        return {"workload": self.workload, "scale": self.scale,
                "warmup": self.warmup, "measure": self.measure,
                "technique": self.tech.to_dict()}

    @property
    def key(self) -> str:
        return config_key(self.config_dict())

    def label(self) -> str:
        return f"{self.workload}/{self.tech.name}"


# SimResult property names used by sweeps/figures -> SimResult.to_dict keys.
_METRIC_KEYS = {
    "ipc": "ipc",
    "cpi": "cpi",
    "energy_per_instruction_nj": "energy_nj_per_instr",
    "dram_lines": "dram_lines",
    "branch_accuracy": "branch_accuracy",
    "instructions": "instructions",
    "cycles": "cycles",
}


def result_metric(data: dict, metric: str) -> float:
    """Look up *metric* (a ``SimResult`` property name or an export key)
    in an exported result dict."""
    key = _METRIC_KEYS.get(metric, metric)
    value = data.get(key)
    if not isinstance(value, (int, float)):
        raise ValueError(
            f"metric {metric!r} is not an exported scalar; available: "
            f"{sorted(k for k, v in data.items() if isinstance(v, (int, float)))}")
    return float(value)


class _HierarchyView:
    """Memory-hierarchy slice of a :class:`ResultView` (the subset of
    :class:`repro.memory.hierarchy.HierarchyStats` the figures read)."""

    __slots__ = ("_d",)

    def __init__(self, data: dict) -> None:
        self._d = data

    @property
    def l1_load_hits(self) -> int:
        return self._d["l1_load_hits"]

    @property
    def l2_load_hits(self) -> int:
        return self._d["l2_load_hits"]

    @property
    def dram_loads(self) -> int:
        return self._d["dram_loads"]

    @property
    def prefetches_issued(self) -> dict[str, int]:
        return self._d["prefetches_issued"]

    @property
    def prefetch_useful(self) -> dict[str, int]:
        return self._d["prefetch_useful"]

    @property
    def prefetch_useless(self) -> dict[str, int]:
        return self._d["prefetch_useless"]

    @property
    def dram_fetches(self) -> dict[str, int]:
        return self._d["dram_fetches"]

    def accuracy(self, origin: str) -> float:
        useful = self._d["prefetch_useful"][origin]
        useless = self._d["prefetch_useless"][origin]
        total = useful + useless
        return useful / total if total else 1.0


class ResultView:
    """Read-only ``SimResult``-shaped view over an exported result dict.

    Works identically whether the dict came from a fresh in-process run,
    an isolated worker, or a resume journal.
    """

    __slots__ = ("_d", "hierarchy")

    def __init__(self, data: dict) -> None:
        self._d = data
        self.hierarchy = _HierarchyView(data)

    @property
    def workload(self) -> str:
        return self._d["workload"]

    @property
    def technique(self) -> str:
        return self._d["technique"]

    @property
    def instructions(self) -> int:
        return self._d["instructions"]

    @property
    def cycles(self) -> float:
        return self._d["cycles"]

    @property
    def cpi(self) -> float:
        return self._d["cpi"]

    @property
    def ipc(self) -> float:
        return self._d["ipc"]

    @property
    def energy_per_instruction_nj(self) -> float:
        return self._d["energy_nj_per_instr"]

    @property
    def dram_lines(self) -> int:
        return self._d["dram_lines"]

    @property
    def branch_accuracy(self) -> float:
        return self._d["branch_accuracy"]

    @property
    def svr_accuracy(self) -> float | None:
        svr = self._d.get("svr")
        return svr.get("accuracy") if svr else None

    def cpi_stack(self) -> dict[str, float]:
        return dict(self._d["cpi_stack"])

    def metric(self, name: str) -> float:
        return result_metric(self._d, name)

    def to_dict(self) -> dict:
        return self._d

    def __repr__(self) -> str:
        return (f"ResultView({self.workload}/{self.technique}, "
                f"ipc={self.ipc:.3f})")


def execute_spec(spec: RunSpec, obs: Any = None,
                 progress: Any = None) -> dict[str, Any]:
    """Run one cell in the current process and export its result dict.

    This is the function isolated workers call; keeping it here (importable
    at module top level) makes it picklable under every multiprocessing
    start method.  *obs* (a :class:`repro.obs.RunObservation`) instruments
    the run — the telemetry layer passes its capture observation here.
    *progress* (a :class:`repro.obs.ProgressReporter`) streams in-flight
    frames while the core runs.
    """
    from repro.harness.runner import run

    return run(spec.workload, spec.tech, scale=spec.scale,
               warmup=spec.warmup, measure=spec.measure, obs=obs,
               progress=progress).to_dict()
