"""JSONL retry/resume journal keyed by deterministic config hashes.

Each completed cell — success or terminal failure — appends one ``cell``
record.  Re-invoking a sweep or figure with ``resume=True`` loads the
journal, serves previously-successful cells from their stored result
dicts, and re-runs only the cells whose *last* record is a failure (or
that never completed).  Appends are flushed and fsynced per record so a
killed run loses at most the cell in flight; a torn trailing line from a
hard kill is tolerated and ignored on load.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

JOURNAL_VERSION = 1


class RunJournal:
    """Append-only JSONL checkpoint of completed cells."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> dict[str, dict[str, Any]]:
        """Latest ``cell`` record per key (later records win, so a
        resumed re-run of a failed cell supersedes the failure)."""
        records: dict[str, dict[str, Any]] = {}
        if not self.exists():
            return records
        with self.path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue    # torn tail from a killed writer
                if (isinstance(record, dict)
                        and record.get("event") == "cell"
                        and "key" in record):
                    records[record["key"]] = record
        return records

    def append(self, record: dict[str, Any]) -> None:
        record.setdefault("v", JOURNAL_VERSION)
        record.setdefault("ts", round(time.time(), 3))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_cell(self, *, key: str, workload: str, technique: str,
                    scale: str, status: str, attempts: int,
                    elapsed_s: float, result: dict | None = None,
                    failure: dict | None = None,
                    spec: dict | None = None,
                    telemetry: dict | None = None) -> None:
        record: dict[str, Any] = {
            "event": "cell", "key": key, "workload": workload,
            "technique": technique, "scale": scale, "status": status,
            "attempts": attempts, "elapsed_s": round(elapsed_s, 6),
        }
        if result is not None:
            record["result"] = result
        if failure is not None:
            record["failure"] = failure
        if spec is not None:
            record["spec"] = spec
        if telemetry is not None:
            record["telemetry"] = telemetry
        self.append(record)

    def append_event(self, event: str, **fields: Any) -> None:
        """Free-form marker records (``retry``, ``timeout``, ``sweep``)
        for post-mortems; ignored by :meth:`load`."""
        record = {"event": event}
        record.update(fields)
        self.append(record)
