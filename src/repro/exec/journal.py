"""JSONL retry/resume journal keyed by deterministic config hashes.

Each completed cell — success or terminal failure — appends one ``cell``
record.  Re-invoking a sweep or figure with ``resume=True`` loads the
journal, serves previously-successful cells from their stored result
dicts, and re-runs only the cells whose *last* record is a failure (or
that never completed).  Appends are flushed and fsynced per record so a
killed run loses at most the cell in flight.

Corruption tolerance on load: a torn **trailing** line from a hard kill
is expected and silently ignored; a corrupt line **mid-file** (disk
fault, concurrent writer, manual edit) is skipped with a warning and
counted — in :attr:`RunJournal.skipped_records` and, when the journal
carries a probe bus, as an ``exec.journal.skip`` probe event feeding the
``exec.journal_skipped_records`` metric — instead of poisoning the
resume (every parseable record still loads).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.probes import ProbeBus

JOURNAL_VERSION = 1


class RunJournal:
    """Append-only JSONL checkpoint of completed cells."""

    def __init__(self, path: str | os.PathLike,
                 bus: "ProbeBus | None" = None) -> None:
        self.path = Path(path)
        self.skipped_records = 0        # cumulative across load() calls
        self._p_skip = (bus.probe("exec.journal.skip")
                        if bus is not None else None)

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> dict[str, dict[str, Any]]:
        """Latest ``cell`` record per key (later records win, so a
        resumed re-run of a failed cell supersedes the failure)."""
        records: dict[str, dict[str, Any]] = {}
        if not self.exists():
            return records
        with self.path.open(encoding="utf-8") as fh:
            lines = [(no, line.strip())
                     for no, line in enumerate(fh, start=1)]
        lines = [(no, line) for no, line in lines if line]
        for index, (no, line) in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    continue    # torn tail from a killed writer: expected
                self._skip(no)
                continue
            if (isinstance(record, dict)
                    and record.get("event") == "cell"
                    and "key" in record):
                records[record["key"]] = record
        return records

    def _skip(self, line_no: int) -> None:
        self.skipped_records += 1
        warnings.warn(
            f"journal {self.path}: skipping corrupt record at line "
            f"{line_no} (mid-file corruption; resume continues without "
            "it)", RuntimeWarning, stacklevel=3)
        if self._p_skip is not None:
            self._p_skip.emit(path=str(self.path), line=line_no)

    def append(self, record: dict[str, Any]) -> None:
        record.setdefault("v", JOURNAL_VERSION)
        record.setdefault("ts", round(time.time(), 3))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_cell(self, *, key: str, workload: str, technique: str,
                    scale: str, status: str, attempts: int,
                    elapsed_s: float, result: dict | None = None,
                    failure: dict | None = None,
                    spec: dict | None = None,
                    telemetry: dict | None = None) -> None:
        record: dict[str, Any] = {
            "event": "cell", "key": key, "workload": workload,
            "technique": technique, "scale": scale, "status": status,
            "attempts": attempts, "elapsed_s": round(elapsed_s, 6),
        }
        if result is not None:
            record["result"] = result
        if failure is not None:
            record["failure"] = failure
        if spec is not None:
            record["spec"] = spec
        if telemetry is not None:
            record["telemetry"] = telemetry
        self.append(record)

    def append_event(self, event: str, **fields: Any) -> None:
        """Free-form marker records (``retry``, ``timeout``, ``sweep``)
        for post-mortems; ignored by :meth:`load`."""
        record = {"event": event}
        record.update(fields)
        self.append(record)
