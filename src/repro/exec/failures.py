"""Structured failure records for resilient experiment execution.

Every way a cell can die is folded into one of three kinds:

* ``crash``          — the worker raised or the process died (segfault,
                       OOM-kill, injected fault);
* ``hang``           — the wall-clock timeout fired, or the simulator's
                       own watchdog fence raised
                       :class:`~repro.cores.base.SimulationError`;
* ``invalid-config`` — the cell's configuration was rejected before any
                       simulation ran (bad field value, unknown workload);
* ``quarantined``    — the serving layer's circuit breaker short-circuited
                       the cell: its config hash crashed or hung repeatedly
                       and is refused without running (the failure message
                       carries the recorded history).

``crash`` and ``hang`` are presumed transient and eligible for retry;
``invalid-config`` and ``quarantined`` are deterministic verdicts and
never retried.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

CRASH = "crash"
HANG = "hang"
INVALID_CONFIG = "invalid-config"
QUARANTINED = "quarantined"

FAILURE_KINDS = (CRASH, HANG, INVALID_CONFIG, QUARANTINED)

# Kinds worth retrying by default: transient by presumption.  A
# deterministic bug fails again and ends up in the journal as failed — the
# bounded retry just absorbs flaky environments.
DEFAULT_RETRY_KINDS = (CRASH, HANG)


@dataclass
class RunFailure:
    """One cell's terminal failure, JSON-ready for journals and reports."""

    key: str
    workload: str
    technique: str
    kind: str                      # one of FAILURE_KINDS
    message: str
    attempts: int = 1
    elapsed_s: float = 0.0
    cycle: float | None = None     # simulator context when available
    pc: int | None = None
    traceback: str | None = None
    progress: dict | None = None   # last in-flight frame before death

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"RunFailure.kind must be one of {FAILURE_KINDS}, "
                f"got {self.kind!r}")

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        fields = {k: data.get(k) for k in
                  ("key", "workload", "technique", "kind", "message")}
        fields.update(attempts=data.get("attempts", 1),
                      elapsed_s=data.get("elapsed_s", 0.0),
                      cycle=data.get("cycle"), pc=data.get("pc"),
                      traceback=data.get("traceback"),
                      progress=data.get("progress"))
        return cls(**fields)

    def __str__(self) -> str:
        where = f"{self.workload}/{self.technique}"
        tries = (f" after {self.attempts} attempts"
                 if self.attempts > 1 else "")
        return f"{where}: {self.kind}{tries} — {self.message}"


class CellFailedError(RuntimeError):
    """Raised by the executor in strict (non-salvage) mode when a cell
    fails terminally; carries the structured record."""

    def __init__(self, failure: RunFailure) -> None:
        super().__init__(str(failure))
        self.failure = failure
