"""Seeded, deterministic fault injection for the execution layer.

The timeout / retry / resume / salvage machinery in
:mod:`repro.exec.executor` must itself be testable, so this module lets a
:class:`FaultPlan` force failures into chosen cells:

* explicit targeting — :class:`FaultSpec` matches cells by ``fnmatch``
  globs over workload and technique name, with an optional attempt budget
  (``times``) so a fault can hit only the first N attempts ("flaky");
* seeded rates — ``crash_rate`` / ``hang_rate`` / ``flaky_rate`` pick
  victim cells by hashing ``(seed, cell key)``, so the same plan always
  kills the same cells, on any machine, in any worker process.

Fault kinds map onto the executor's failure taxonomy: ``crash`` raises,
``hang`` blocks forever in an isolated worker (exercising the wall-clock
timeout kill) or raises :class:`~repro.cores.base.SimulationError` inline
(exercising the watchdog path), ``flaky`` is a crash that only affects
the first attempt and therefore succeeds on retry.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.cores.base import SimulationError

FAULT_KINDS = ("crash", "hang", "flaky")


class InjectedCrash(RuntimeError):
    """Raised in place of a simulation by a crash/flaky fault."""


class InjectedHang(SimulationError):
    """Inline stand-in for a hang: classified like a watchdog trip."""


@dataclass(frozen=True)
class FaultSpec:
    """Target one set of cells: glob over workload and technique name."""

    workload: str = "*"
    technique: str = "*"
    kind: str = "crash"
    times: int | None = None    # attempts affected; None = every attempt
                                # (flaky defaults to the first attempt only)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"FaultSpec.kind must be one of {FAULT_KINDS}, "
                f"got {self.kind!r}")
        if self.times is not None and self.times < 1:
            raise ValueError(
                f"FaultSpec.times must be >= 1 (or None), got {self.times}")

    def matches(self, workload: str, technique: str) -> bool:
        return (fnmatchcase(workload, self.workload)
                and fnmatchcase(technique, self.technique))

    def effective_times(self) -> int:
        """Number of attempts affected; -1 means every attempt."""
        if self.times is not None:
            return self.times
        return 1 if self.kind == "flaky" else -1


def _unit_interval(seed: int, key: str) -> float:
    """Deterministic hash of (seed, key) into [0, 1)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable description of which cells fail and how."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    flaky_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "flaky_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"FaultPlan.{name} must be in [0, 1], got {rate}")

    def decide(self, key: str, workload: str, technique: str,
               attempt: int) -> str | None:
        """Fault kind to inject for this (cell, attempt), or None.

        ``flaky`` resolves to ``"crash"`` on affected attempts so callers
        only ever see the executable kinds (crash / hang).
        """
        for spec in self.specs:
            if not spec.matches(workload, technique):
                continue
            times = spec.effective_times()
            if times >= 0 and attempt > times:
                continue
            return "crash" if spec.kind == "flaky" else spec.kind
        if self.crash_rate or self.hang_rate or self.flaky_rate:
            u = _unit_interval(self.seed, key)
            if u < self.crash_rate:
                return "crash"
            u -= self.crash_rate
            if u < self.hang_rate:
                return "hang"
            u -= self.hang_rate
            if u < self.flaky_rate and attempt == 1:
                return "crash"
        return None

    @property
    def active(self) -> bool:
        return bool(self.specs or self.crash_rate or self.hang_rate
                    or self.flaky_rate)


def apply_fault(kind: str, *, inline: bool, label: str = "") -> None:
    """Execute the decided fault.  ``hang`` in an isolated worker blocks
    until the parent's wall-clock timeout kills the process; inline it
    raises like a watchdog trip (the parent cannot kill itself)."""
    suffix = f" in {label}" if label else ""
    if kind == "crash":
        raise InjectedCrash(f"injected crash{suffix} (fault plan)")
    if kind == "hang":
        if inline:
            raise InjectedHang(
                f"injected hang{suffix} (fault plan, inline executor)")
        while True:          # the parent terminates us at the timeout
            time.sleep(0.05)
    raise ValueError(f"unexecutable fault kind {kind!r}")


def parse_fault(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``WORKLOAD/TECHNIQUE:KIND[:TIMES]``.

    Globs are allowed in both the workload and technique parts, e.g.
    ``'Camel/*l1_mshrs=2*:hang:1'`` hangs the first attempt of every
    matching sweep cell.
    """
    target, sep, tail = text.partition(":")
    if not sep:
        raise ValueError(
            f"fault spec {text!r} must look like "
            f"'WORKLOAD/TECHNIQUE:KIND[:TIMES]'")
    kind, _, times_text = tail.partition(":")
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"fault spec {text!r}: kind must be one of {FAULT_KINDS}, "
            f"got {kind!r}")
    workload, sep, technique = target.partition("/")
    if not sep:
        technique = "*"
    times = None
    if times_text:
        try:
            times = int(times_text)
        except ValueError:
            raise ValueError(
                f"fault spec {text!r}: TIMES must be an integer, "
                f"got {times_text!r}") from None
    return FaultSpec(workload=workload or "*", technique=technique or "*",
                     kind=kind, times=times)
