"""Resilient experiment execution: fault-isolated parallel runs, watchdog
fences, retry/resume journals, and seeded fault injection.

The pieces (design rationale in ``docs/resilience.md``):

* :mod:`repro.exec.spec`     — :class:`RunSpec` cells, deterministic config
  hashing, and the :class:`ResultView` that makes journaled result dicts
  look like live ``SimResult`` objects;
* :mod:`repro.exec.failures` — the ``crash`` / ``hang`` /
  ``invalid-config`` failure taxonomy (:class:`RunFailure`);
* :mod:`repro.exec.journal`  — the JSONL retry/resume checkpoint;
* :mod:`repro.exec.faults`   — seeded, deterministic fault injection so
  the resilience paths are themselves testable;
* :mod:`repro.exec.executor` — :func:`run_cells`, the process-pool
  executor every sweep and figure routes through;
* :mod:`repro.exec.telemetry` — cross-process telemetry: per-worker
  span / metric / rusage capture shipped over the result pipe, and the
  deterministic parent-side merge (see ``docs/observability.md``).

The simulator-side guard lives in :mod:`repro.cores.base`:
:class:`SimulationError` is what the watchdog fence raises, re-exported
here because the executor is where it gets classified.
"""

from repro.cores.base import SimulationError
from repro.exec.executor import (
    CellOutcome,
    ExecConfig,
    ExecReport,
    run_cells,
)
from repro.exec.failures import (
    CRASH,
    FAILURE_KINDS,
    HANG,
    INVALID_CONFIG,
    QUARANTINED,
    CellFailedError,
    RunFailure,
)
from repro.exec.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedHang,
    parse_fault,
)
from repro.exec.journal import RunJournal
from repro.obs.progress import ProgressConfig
from repro.exec.spec import ResultView, RunSpec, config_key, result_metric
from repro.exec.telemetry import (
    CellCapture,
    TelemetryConfig,
    aggregate_metrics,
    build_exec_trace,
    resource_summary,
)

__all__ = [
    "CRASH",
    "CellCapture",
    "CellFailedError",
    "CellOutcome",
    "ExecConfig",
    "ExecReport",
    "FAILURE_KINDS",
    "FaultPlan",
    "FaultSpec",
    "HANG",
    "INVALID_CONFIG",
    "QUARANTINED",
    "InjectedCrash",
    "InjectedHang",
    "ProgressConfig",
    "ResultView",
    "RunFailure",
    "RunJournal",
    "RunSpec",
    "SimulationError",
    "TelemetryConfig",
    "aggregate_metrics",
    "build_exec_trace",
    "config_key",
    "parse_fault",
    "resource_summary",
    "result_metric",
    "run_cells",
]
