"""Text assembler: parse assembly source into a :class:`Program`.

The inverse of :meth:`Program.disassemble`; lets kernels live in plain
``.s``-style strings/files instead of builder calls.  Syntax, one
instruction or label per line::

    # comments run to end of line
    start:
        li   a0, 0x1000
        li   t0, 0
    loop:
        ld   t1, t0, 8       # rd, base, displacement
        add  t2, t2, t1
        addi t0, t0, 1
        cmp_lt t3, t0, a1
        bnez t3, loop
        halt

Operands are comma-separated; registers use the same names the builder
accepts (x0..x31, a0.., t0.., s0.., zero); immediates accept decimal,
hex (0x..) and negative values; branch/jump targets are label names.
"""

from __future__ import annotations

import re

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import REG_NAMES

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s*:\s*(.*)$")

# op -> (mnemonic handler spec): which builder method and operand shape.
_THREE_REG = {op.value for op in (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.MIN, Opcode.MAX, Opcode.FADD, Opcode.FMUL,
    Opcode.CMP_LT, Opcode.CMP_LTU, Opcode.CMP_EQ, Opcode.CMP_NE,
    Opcode.CMP_GE,
)}
_REG_REG_IMM = {op.value for op in (
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.MULI,
)}
# Builder method names for mnemonics that are Python keywords/shadowed.
_METHOD_ALIASES = {"and": "and_", "or": "or_", "min": "min_", "max": "max_"}
_MNEMONIC_ALIASES = {"and": "and", "or": "or", "min": "min", "max": "max"}


class AssemblerError(ValueError):
    """Raised on malformed assembly source, with a line number."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


def _parse_int(token: str, line_no: int, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(line_no, line,
                             f"expected integer, got {token!r}") from None


def _check_reg(token: str, line_no: int, line: str) -> str:
    if token not in REG_NAMES:
        raise AssemblerError(line_no, line, f"unknown register {token!r}")
    return token


def assemble(source: str, name: str = "assembly") -> Program:
    """Assemble *source* text into a :class:`Program`.

    Raises :class:`AssemblerError` (with the offending line number) on
    malformed lines, duplicate labels and branches to undefined labels.
    """
    builder = ProgramBuilder(name)
    pc_lines: list[tuple[int, str]] = []   # pc -> (line_no, raw)
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match and match.group(1) not in _MNEMONICS:
            label = match.group(1)
            if builder.has_label(label):
                raise AssemblerError(line_no, raw,
                                     f"duplicate label {label!r}")
            builder.label(label)
            line = match.group(2).strip()
            if not line:
                continue
        pc_lines.append((line_no, raw))
        _assemble_line(builder, line, line_no, raw)
    for pc, label in builder.undefined_targets():
        line_no, raw = pc_lines[pc]
        raise AssemblerError(line_no, raw, f"undefined label {label!r}")
    return builder.build()


# All recognised mnemonics (a label may not shadow one).  Built once:
# rebuilding this set per line dominated the assembler's profile.
_MNEMONICS: frozenset[str] = frozenset(
    {op.value for op in Opcode} | set(_MNEMONIC_ALIASES))


def _assemble_line(builder: ProgramBuilder, line: str, line_no: int,
                   raw: str) -> None:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [tok.strip() for tok in operand_text.split(",") if tok.strip()]

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(line_no, raw,
                                 f"{mnemonic} expects {count} operands")

    if mnemonic in _THREE_REG or mnemonic in _MNEMONIC_ALIASES:
        need(3)
        method = getattr(builder,
                         _METHOD_ALIASES.get(mnemonic, mnemonic))
        method(_check_reg(operands[0], line_no, raw),
               _check_reg(operands[1], line_no, raw),
               _check_reg(operands[2], line_no, raw))
    elif mnemonic in _REG_REG_IMM:
        need(3)
        getattr(builder, mnemonic)(
            _check_reg(operands[0], line_no, raw),
            _check_reg(operands[1], line_no, raw),
            _parse_int(operands[2], line_no, raw))
    elif mnemonic == "ld":
        if len(operands) == 2:
            operands.append("0")
        need(3)
        builder.ld(_check_reg(operands[0], line_no, raw),
                   _check_reg(operands[1], line_no, raw),
                   _parse_int(operands[2], line_no, raw))
    elif mnemonic == "st":
        if len(operands) == 2:
            operands.append("0")
        need(3)
        builder.st(_check_reg(operands[0], line_no, raw),
                   _check_reg(operands[1], line_no, raw),
                   _parse_int(operands[2], line_no, raw))
    elif mnemonic == "li":
        need(2)
        builder.li(_check_reg(operands[0], line_no, raw),
                   _parse_int(operands[1], line_no, raw))
    elif mnemonic == "mv":
        need(2)
        builder.mv(_check_reg(operands[0], line_no, raw),
                   _check_reg(operands[1], line_no, raw))
    elif mnemonic in ("beqz", "bnez"):
        need(2)
        getattr(builder, mnemonic)(
            _check_reg(operands[0], line_no, raw), operands[1])
    elif mnemonic == "jmp":
        need(1)
        builder.jmp(operands[0])
    elif mnemonic == "halt":
        need(0)
        builder.halt()
    elif mnemonic == "nop":
        need(0)
        builder.nop()
    else:
        raise AssemblerError(line_no, raw, f"unknown mnemonic {mnemonic!r}")
