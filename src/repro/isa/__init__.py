"""Mini-ISA substrate: instruction set, assembler and functional semantics.

The paper evaluates ARM binaries on Sniper; our substitution is a small
RISC-style 64-bit integer ISA with an assembler-like :class:`ProgramBuilder`
so the GAP / NAS / HPCC / SPEC-surrogate kernels can be written directly in
Python.  The functional semantics live in :mod:`repro.isa.executor` and are
shared by the timing cores and by SVR's per-lane transient execution.
"""

from repro.isa.instructions import (
    ALU_OPS,
    BRANCH_OPS,
    CMP_OPS,
    Instruction,
    OpClass,
    Opcode,
    op_class,
)
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import NUM_REGS, REG_NAMES, RegisterFile, reg_index
from repro.isa.executor import ExecResult, execute

__all__ = [
    "ALU_OPS",
    "BRANCH_OPS",
    "CMP_OPS",
    "ExecResult",
    "Instruction",
    "NUM_REGS",
    "OpClass",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "REG_NAMES",
    "RegisterFile",
    "execute",
    "op_class",
    "reg_index",
]
