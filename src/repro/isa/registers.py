"""Architectural register file.

32 64-bit integer registers, ``x0`` hard-wired to zero (RISC-V style).
Values are stored as Python ints and wrapped to 64 bits on write so that
shifts and multiplies behave like hardware registers.
"""

from __future__ import annotations

NUM_REGS = 32
_MASK64 = (1 << 64) - 1

REG_NAMES = {f"x{i}": i for i in range(NUM_REGS)}
# Convenience ABI-ish aliases used by the kernel builders.
REG_NAMES.update({"zero": 0, "ra": 1, "sp": 2})
for _i in range(10):
    REG_NAMES[f"a{_i}"] = 10 + _i     # a0..a9 -> x10..x19
for _i in range(12):
    REG_NAMES[f"t{_i}"] = 20 + _i     # t0..t11 -> x20..x31
for _i in range(7):
    REG_NAMES[f"s{_i}"] = 3 + _i      # s0..s6  -> x3..x9


def reg_index(reg: int | str | None) -> int | None:
    """Resolve a register name or index to its architectural index."""
    if reg is None:
        return None
    if isinstance(reg, int):
        if not 0 <= reg < NUM_REGS:
            raise ValueError(f"register index out of range: {reg}")
        return reg
    try:
        return REG_NAMES[reg]
    except KeyError:
        raise ValueError(f"unknown register name: {reg!r}") from None


def wrap64(value: int) -> int:
    """Wrap *value* to an unsigned 64-bit integer."""
    return value & _MASK64


def to_signed64(value: int) -> int:
    """Interpret an unsigned 64-bit value as signed."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


class RegisterFile:
    """The architectural integer register file."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * NUM_REGS

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index != 0:
            self._regs[index] = value & _MASK64

    def snapshot(self) -> list[int]:
        return list(self._regs)

    def load(self, values: list[int]) -> None:
        if len(values) != NUM_REGS:
            raise ValueError("snapshot must have exactly 32 registers")
        self._regs = [v & _MASK64 for v in values]
        self._regs[0] = 0
