"""Functional semantics for the mini-ISA.

:func:`execute` is a pure(ish) evaluator: it reads sources through a caller
supplied function and touches memory only through the provided
:class:`~repro.memory.main_memory.MainMemory`.  The same evaluator drives

* committed execution in the timing cores, and
* SVR's transient per-lane execution (Section IV-A4 of the paper), where the
  source reader substitutes speculative-register-file lane values and stores
  are suppressed (transient instructions must not affect architectural state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import to_signed64, wrap64

_MASK64 = (1 << 64) - 1
# Fixed-point scale used by the FP-style ops (graph scores are Q32.16).
FP_SHIFT = 16


@dataclass(slots=True)
class ExecResult:
    """Outcome of functionally executing one instruction.

    ``value``    the result written to ``rd`` (or the store data)
    ``address``  effective memory address for LD/ST, else ``None``
    ``taken``    branch outcome for conditional branches, else ``None``
    ``next_pc``  PC of the next instruction to execute
    ``halted``   true when a HALT was executed
    """

    value: int | None = None
    address: int | None = None
    taken: bool | None = None
    next_pc: int = 0
    halted: bool = False
    src_a: int = 0     # rs1 value as read (LC register needs compare sources)
    src_b: int = 0     # rs2 value as read


def alu_compute(op: Opcode, a: int, b: int, imm: int) -> int:
    """Evaluate an ALU/FP/CMP operation on 64-bit values.

    Shared by committed and transient execution so the two can never drift.
    """
    if op is Opcode.ADD:
        return wrap64(a + b)
    if op is Opcode.SUB:
        return wrap64(a - b)
    if op is Opcode.MUL:
        return wrap64(a * b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SLL:
        return wrap64(a << (b & 63))
    if op is Opcode.SRL:
        return a >> (b & 63)
    if op is Opcode.MIN:
        return wrap64(min(to_signed64(a), to_signed64(b)))
    if op is Opcode.MAX:
        return wrap64(max(to_signed64(a), to_signed64(b)))
    if op is Opcode.ADDI:
        return wrap64(a + imm)
    if op is Opcode.ANDI:
        return a & wrap64(imm)
    if op is Opcode.ORI:
        return a | wrap64(imm)
    if op is Opcode.XORI:
        return a ^ wrap64(imm)
    if op is Opcode.SLLI:
        return wrap64(a << (imm & 63))
    if op is Opcode.SRLI:
        return a >> (imm & 63)
    if op is Opcode.MULI:
        return wrap64(a * imm)
    if op is Opcode.LI:
        return wrap64(imm)
    if op is Opcode.MV:
        return a
    if op is Opcode.FADD:
        return wrap64(a + b)
    if op is Opcode.FMUL:
        # Q32.16 fixed-point multiply.
        return wrap64((to_signed64(a) * to_signed64(b)) >> FP_SHIFT)
    if op is Opcode.CMP_LT:
        return 1 if to_signed64(a) < to_signed64(b) else 0
    if op is Opcode.CMP_LTU:
        return 1 if a < b else 0
    if op is Opcode.CMP_EQ:
        return 1 if a == b else 0
    if op is Opcode.CMP_NE:
        return 1 if a != b else 0
    if op is Opcode.CMP_GE:
        return 1 if to_signed64(a) >= to_signed64(b) else 0
    raise ValueError(f"not an ALU-evaluable opcode: {op}")


def execute(
    inst: Instruction,
    pc: int,
    read_reg: Callable[[int], int],
    memory,
    commit_stores: bool = True,
) -> ExecResult:
    """Execute *inst* at *pc* and return the :class:`ExecResult`.

    ``read_reg`` supplies source operand values (architectural registers for
    real execution, SRF lanes for transient SVR execution).  ``memory`` must
    expose ``read_word(addr)`` / ``write_word(addr, value)``.  With
    ``commit_stores=False`` store data is computed but memory is untouched.
    """
    op = inst.op
    result = ExecResult(next_pc=pc + 1)

    if inst.is_load:
        addr = wrap64(read_reg(inst.rs1) + inst.imm)
        result.address = addr
        result.value = memory.read_word(addr)
    elif inst.is_store:
        addr = wrap64(read_reg(inst.rs1) + inst.imm)
        result.address = addr
        result.value = read_reg(inst.rs2)
        if commit_stores:
            memory.write_word(addr, result.value)
    elif inst.is_branch:
        value = read_reg(inst.rs1)
        result.src_a = value
        taken = inst.branch_taken(value)
        result.taken = taken
        if taken:
            result.next_pc = inst.target
    elif op is Opcode.JMP:
        result.taken = True
        result.next_pc = inst.target
    elif op is Opcode.HALT:
        result.halted = True
        result.next_pc = pc
    elif op is Opcode.NOP:
        pass
    else:
        a = read_reg(inst.rs1) if inst.rs1 is not None else 0
        b = read_reg(inst.rs2) if inst.rs2 is not None else 0
        result.src_a = a
        result.src_b = b
        result.value = alu_compute(op, a, b, inst.imm)

    return result


def fixed_point(value: float) -> int:
    """Convert a float to the Q32.16 fixed-point encoding used by kernels."""
    return wrap64(int(round(value * (1 << FP_SHIFT))))


def from_fixed_point(value: int) -> float:
    """Convert a Q32.16 fixed-point register value back to a float."""
    return to_signed64(value) / (1 << FP_SHIFT)
