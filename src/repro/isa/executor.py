"""Functional semantics for the mini-ISA.

:func:`execute` is a pure(ish) evaluator: it reads sources through a caller
supplied function and touches memory only through the provided
:class:`~repro.memory.main_memory.MainMemory`.  The same evaluator drives

* committed execution in the timing cores, and
* SVR's transient per-lane execution (Section IV-A4 of the paper), where the
  source reader substitutes speculative-register-file lane values and stores
  are suppressed (transient instructions must not affect architectural state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.instructions import Instruction, OpClass, Opcode
from repro.isa.registers import to_signed64, wrap64

_MASK64 = (1 << 64) - 1
# Fixed-point scale used by the FP-style ops (graph scores are Q32.16).
FP_SHIFT = 16


@dataclass(slots=True)
class ExecResult:
    """Outcome of functionally executing one instruction.

    ``value``    the result written to ``rd`` (or the store data)
    ``address``  effective memory address for LD/ST, else ``None``
    ``taken``    branch outcome for conditional branches, else ``None``
    ``next_pc``  PC of the next instruction to execute
    ``halted``   true when a HALT was executed
    """

    value: int | None = None
    address: int | None = None
    taken: bool | None = None
    next_pc: int = 0
    halted: bool = False
    src_a: int = 0     # rs1 value as read (LC register needs compare sources)
    src_b: int = 0     # rs2 value as read


# One evaluator per ALU/FP/CMP opcode, indexed by ``Instruction.opindex``.
# The hot paths (committed execution and SVR's per-lane transient execution)
# fetch the callable with one list index instead of walking an if-chain and
# hashing enum members.
_ALU_TABLE: dict[Opcode, Callable[[int, int, int], int]] = {
    Opcode.ADD: lambda a, b, imm: wrap64(a + b),
    Opcode.SUB: lambda a, b, imm: wrap64(a - b),
    Opcode.MUL: lambda a, b, imm: wrap64(a * b),
    Opcode.AND: lambda a, b, imm: a & b,
    Opcode.OR: lambda a, b, imm: a | b,
    Opcode.XOR: lambda a, b, imm: a ^ b,
    Opcode.SLL: lambda a, b, imm: wrap64(a << (b & 63)),
    Opcode.SRL: lambda a, b, imm: a >> (b & 63),
    Opcode.MIN: lambda a, b, imm: wrap64(min(to_signed64(a), to_signed64(b))),
    Opcode.MAX: lambda a, b, imm: wrap64(max(to_signed64(a), to_signed64(b))),
    Opcode.ADDI: lambda a, b, imm: wrap64(a + imm),
    Opcode.ANDI: lambda a, b, imm: a & wrap64(imm),
    Opcode.ORI: lambda a, b, imm: a | wrap64(imm),
    Opcode.XORI: lambda a, b, imm: a ^ wrap64(imm),
    Opcode.SLLI: lambda a, b, imm: wrap64(a << (imm & 63)),
    Opcode.SRLI: lambda a, b, imm: a >> (imm & 63),
    Opcode.MULI: lambda a, b, imm: wrap64(a * imm),
    Opcode.LI: lambda a, b, imm: wrap64(imm),
    Opcode.MV: lambda a, b, imm: a,
    Opcode.FADD: lambda a, b, imm: wrap64(a + b),
    # Q32.16 fixed-point multiply.
    Opcode.FMUL: lambda a, b, imm: wrap64(
        (to_signed64(a) * to_signed64(b)) >> FP_SHIFT),
    Opcode.CMP_LT: lambda a, b, imm: 1 if to_signed64(a) < to_signed64(b) else 0,
    Opcode.CMP_LTU: lambda a, b, imm: 1 if a < b else 0,
    Opcode.CMP_EQ: lambda a, b, imm: 1 if a == b else 0,
    Opcode.CMP_NE: lambda a, b, imm: 1 if a != b else 0,
    Opcode.CMP_GE: lambda a, b, imm: 1 if to_signed64(a) >= to_signed64(b) else 0,
}

_ALU_BY_INDEX: list[Callable[[int, int, int], int] | None] = [
    _ALU_TABLE.get(op) for op in Opcode
]


def alu_fn(inst: Instruction) -> Callable[[int, int, int], int] | None:
    """The pre-decoded ``(a, b, imm) -> value`` evaluator for *inst*.

    ``None`` for non-ALU opcodes.  SVR hoists this lookup out of its
    per-lane loops.
    """
    return _ALU_BY_INDEX[inst.opindex]


def alu_compute(op: Opcode, a: int, b: int, imm: int) -> int:
    """Evaluate an ALU/FP/CMP operation on 64-bit values.

    Shared by committed and transient execution so the two can never drift.
    """
    fn = _ALU_TABLE.get(op)
    if fn is None:
        raise ValueError(f"not an ALU-evaluable opcode: {op}")
    return fn(a, b, imm)


def execute(
    inst: Instruction,
    pc: int,
    read_reg: Callable[[int], int],
    memory,
    commit_stores: bool = True,
) -> ExecResult:
    """Execute *inst* at *pc* and return the :class:`ExecResult`.

    ``read_reg`` supplies source operand values (architectural registers for
    real execution, SRF lanes for transient SVR execution).  ``memory`` must
    expose ``read_word(addr)`` / ``write_word(addr, value)``.  With
    ``commit_stores=False`` store data is computed but memory is untouched.
    """
    result = ExecResult(next_pc=pc + 1)
    opclass = inst.opclass

    if opclass is OpClass.LOAD:
        addr = wrap64(read_reg(inst.rs1) + inst.imm)
        result.address = addr
        result.value = memory.read_word(addr)
    elif opclass is OpClass.STORE:
        addr = wrap64(read_reg(inst.rs1) + inst.imm)
        result.address = addr
        result.value = read_reg(inst.rs2)
        if commit_stores:
            memory.write_word(addr, result.value)
    elif opclass is OpClass.BRANCH:
        value = read_reg(inst.rs1)
        result.src_a = value
        if (value == 0) if inst.op is Opcode.BEQZ else (value != 0):
            result.taken = True
            result.next_pc = inst.target
        else:
            result.taken = False
    elif opclass is OpClass.JUMP:
        result.taken = True
        result.next_pc = inst.target
    elif opclass is OpClass.HALT:
        result.halted = True
        result.next_pc = pc
    elif opclass is OpClass.NOP:
        pass
    else:
        a = read_reg(inst.rs1) if inst.rs1 is not None else 0
        b = read_reg(inst.rs2) if inst.rs2 is not None else 0
        result.src_a = a
        result.src_b = b
        result.value = _ALU_BY_INDEX[inst.opindex](a, b, inst.imm)

    return result


def fixed_point(value: float) -> int:
    """Convert a float to the Q32.16 fixed-point encoding used by kernels."""
    return wrap64(int(round(value * (1 << FP_SHIFT))))


def from_fixed_point(value: int) -> float:
    """Convert a Q32.16 fixed-point register value back to a float."""
    return to_signed64(value) / (1 << FP_SHIFT)
