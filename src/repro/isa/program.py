"""Program container and assembler-style builder.

Kernels are written against :class:`ProgramBuilder`, which accepts register
names (``"a0"``, ``"t3"``, ``"x7"``) or indices and symbolic labels, and
resolves everything into a flat :class:`Program` of
:class:`~repro.isa.instructions.Instruction` records.

Example
-------
>>> b = ProgramBuilder()
>>> b.li("t0", 0)
>>> b.label("loop")
>>> b.addi("t0", "t0", 1)
>>> b.cmp_lt("t1", "t0", "a0")
>>> b.bnez("t1", "loop")
>>> b.halt()
>>> program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import reg_index


@dataclass
class Program:
    """An assembled program: flat instruction list plus label map."""

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def pc_of(self, label: str) -> int:
        return self.labels[label]

    def disassemble(self, start: int = 0, count: int | None = None) -> str:
        """Human-readable listing with label annotations (debugging aid)."""
        by_pc = {pc: name for name, pc in self.labels.items()}
        end = len(self.instructions) if count is None else min(
            len(self.instructions), start + count)
        lines = []
        for pc in range(start, end):
            label = by_pc.get(pc)
            if label is not None:
                lines.append(f"{label}:")
            inst = self.instructions[pc]
            parts = [inst.op.value]
            for reg in (inst.rd, inst.rs1, inst.rs2):
                if reg is not None:
                    parts.append(f"x{reg}")
            if inst.imm:
                parts.append(str(inst.imm))
            if inst.target is not None:
                parts.append(f"-> {by_pc.get(inst.target, inst.target)}")
            lines.append(f"  {pc:>5}  {' '.join(parts)}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental assembler for :class:`Program`.

    Branch targets may be labels defined before or after the branch; they are
    resolved in :meth:`build`.
    """

    def __init__(self, name: str = "program") -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._label_seq = 0

    # -- assembly infrastructure ------------------------------------------

    def label(self, name: str) -> str:
        """Define *name* at the current position and return it."""
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Return a unique label name (not yet placed)."""
        self._label_seq += 1
        return f".{hint}{self._label_seq}"

    def has_label(self, name: str) -> bool:
        return name in self._labels

    def undefined_targets(self) -> list[tuple[int, str]]:
        """``(pc, label)`` pairs whose label has no definition (yet).

        The text assembler uses this to report undefined branch targets with
        the line number of the *branch* before :meth:`build` would raise.
        """
        return [(pc, label) for pc, label in self._fixups
                if label not in self._labels]

    def _emit(self, op: Opcode, rd=None, rs1=None, rs2=None, imm: int = 0,
              target: str | None = None) -> None:
        pc = len(self._instructions)
        resolved = None
        if target is not None:
            self._fixups.append((pc, target))
        self._instructions.append(
            Instruction(op, reg_index(rd), reg_index(rs1), reg_index(rs2),
                        imm, resolved)
        )

    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        instructions = list(self._instructions)
        for pc, label in self._fixups:
            if label not in self._labels:
                raise ValueError(f"undefined label: {label}")
            inst = instructions[pc]
            instructions[pc] = Instruction(
                inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm,
                self._labels[label],
            )
        return Program(instructions, dict(self._labels), self._name)

    def __len__(self) -> int:
        return len(self._instructions)

    # -- memory -------------------------------------------------------------

    def ld(self, rd, rs1, imm: int = 0) -> None:
        """``rd <- mem[rs1 + imm]`` (8-byte word load)."""
        self._emit(Opcode.LD, rd=rd, rs1=rs1, imm=imm)

    def st(self, rs2, rs1, imm: int = 0) -> None:
        """``mem[rs1 + imm] <- rs2`` (8-byte word store)."""
        self._emit(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)

    # -- ALU register-register ------------------------------------------------

    def add(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def sub(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def mul(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def and_(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2)

    def or_(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.OR, rd=rd, rs1=rs1, rs2=rs2)

    def xor(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.XOR, rd=rd, rs1=rs1, rs2=rs2)

    def sll(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.SLL, rd=rd, rs1=rs1, rs2=rs2)

    def srl(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.SRL, rd=rd, rs1=rs1, rs2=rs2)

    def min_(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.MIN, rd=rd, rs1=rs1, rs2=rs2)

    def max_(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.MAX, rd=rd, rs1=rs1, rs2=rs2)

    # -- ALU immediate --------------------------------------------------------

    def addi(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)

    def andi(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.ANDI, rd=rd, rs1=rs1, imm=imm)

    def ori(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.ORI, rd=rd, rs1=rs1, imm=imm)

    def xori(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.XORI, rd=rd, rs1=rs1, imm=imm)

    def slli(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.SLLI, rd=rd, rs1=rs1, imm=imm)

    def srli(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.SRLI, rd=rd, rs1=rs1, imm=imm)

    def muli(self, rd, rs1, imm: int) -> None:
        self._emit(Opcode.MULI, rd=rd, rs1=rs1, imm=imm)

    def li(self, rd, imm: int) -> None:
        self._emit(Opcode.LI, rd=rd, imm=imm)

    def mv(self, rd, rs1) -> None:
        self._emit(Opcode.MV, rd=rd, rs1=rs1)

    # -- FP-style arithmetic ----------------------------------------------------

    def fadd(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.FADD, rd=rd, rs1=rs1, rs2=rs2)

    def fmul(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.FMUL, rd=rd, rs1=rs1, rs2=rs2)

    # -- compares -------------------------------------------------------------

    def cmp_lt(self, rd, rs1, rs2) -> None:
        """``rd <- 1 if signed(rs1) < signed(rs2) else 0``."""
        self._emit(Opcode.CMP_LT, rd=rd, rs1=rs1, rs2=rs2)

    def cmp_ltu(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.CMP_LTU, rd=rd, rs1=rs1, rs2=rs2)

    def cmp_eq(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.CMP_EQ, rd=rd, rs1=rs1, rs2=rs2)

    def cmp_ne(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.CMP_NE, rd=rd, rs1=rs1, rs2=rs2)

    def cmp_ge(self, rd, rs1, rs2) -> None:
        self._emit(Opcode.CMP_GE, rd=rd, rs1=rs1, rs2=rs2)

    # -- control flow -----------------------------------------------------------

    def beqz(self, rs1, target: str) -> None:
        self._emit(Opcode.BEQZ, rs1=rs1, target=target)

    def bnez(self, rs1, target: str) -> None:
        self._emit(Opcode.BNEZ, rs1=rs1, target=target)

    def jmp(self, target: str) -> None:
        self._emit(Opcode.JMP, target=target)

    def halt(self) -> None:
        self._emit(Opcode.HALT)

    def nop(self) -> None:
        self._emit(Opcode.NOP)
