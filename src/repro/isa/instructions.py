"""Instruction encoding for the mini-ISA.

Instructions are plain, immutable records.  PCs are instruction indices into
the program's instruction list (the timing model treats a PC as an address by
multiplying by 4 where a byte address is required, e.g. in predictor tables).

Operand conventions
-------------------
``rd``      destination architectural register (or ``None``)
``rs1``     first source register (base register for memory ops)
``rs2``     second source register (store data register for ``ST``)
``imm``     immediate (memory displacement, ALU immediate, or load value)
``target``  branch target PC (resolved instruction index)

Memory operations move 8-byte words: ``LD rd, imm(rs1)`` and
``ST rs2, imm(rs1)``.  Compares are RISC-V ``slt``-style, writing 0/1 to a
register that a conditional branch (``BNEZ``/``BEQZ``) then tests; this split
is what lets SVR's loop-bound detector observe compare source values via the
Last Compare register exactly as in the paper (SectionIV-B2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Every operation in the mini-ISA."""

    # Memory.
    LD = "ld"        # rd <- mem[rs1 + imm]
    ST = "st"        # mem[rs1 + imm] <- rs2
    # ALU register-register.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    MIN = "min"
    MAX = "max"
    # ALU register-immediate.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    MULI = "muli"
    LI = "li"        # rd <- imm
    MV = "mv"        # rd <- rs1
    # Floating-point-ish arithmetic (modelled on the integer registers with a
    # longer execute latency; graph kernels use fixed-point score values).
    FADD = "fadd"
    FMUL = "fmul"
    # Compares (slt-style: rd <- 1 if cmp(rs1, rs2) else 0).
    CMP_LT = "cmp_lt"
    CMP_LTU = "cmp_ltu"
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    CMP_GE = "cmp_ge"
    # Control flow.
    BEQZ = "beqz"    # branch to target if rs1 == 0
    BNEZ = "bnez"    # branch to target if rs1 != 0
    JMP = "jmp"      # unconditional jump to target
    HALT = "halt"    # stop the program
    NOP = "nop"


class OpClass(enum.Enum):
    """Coarse functional class used by the timing models."""

    LOAD = "load"
    STORE = "store"
    ALU = "alu"
    FP = "fp"
    CMP = "cmp"
    BRANCH = "branch"
    JUMP = "jump"
    HALT = "halt"
    NOP = "nop"


ALU_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SLL, Opcode.SRL, Opcode.MIN, Opcode.MAX, Opcode.ADDI,
        Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
        Opcode.MULI, Opcode.LI, Opcode.MV,
    }
)
FP_OPS = frozenset({Opcode.FADD, Opcode.FMUL})
CMP_OPS = frozenset(
    {Opcode.CMP_LT, Opcode.CMP_LTU, Opcode.CMP_EQ, Opcode.CMP_NE, Opcode.CMP_GE}
)
BRANCH_OPS = frozenset({Opcode.BEQZ, Opcode.BNEZ})

_CLASS_BY_OP = {Opcode.LD: OpClass.LOAD, Opcode.ST: OpClass.STORE,
                Opcode.JMP: OpClass.JUMP, Opcode.HALT: OpClass.HALT,
                Opcode.NOP: OpClass.NOP}
for _op in ALU_OPS:
    _CLASS_BY_OP[_op] = OpClass.ALU
for _op in FP_OPS:
    _CLASS_BY_OP[_op] = OpClass.FP
for _op in CMP_OPS:
    _CLASS_BY_OP[_op] = OpClass.CMP
for _op in BRANCH_OPS:
    _CLASS_BY_OP[_op] = OpClass.BRANCH


def op_class(op: Opcode) -> OpClass:
    """Return the functional class of *op*."""
    return _CLASS_BY_OP[op]


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    ``target`` holds the resolved branch-target PC after assembly; before
    label resolution the :class:`~repro.isa.program.ProgramBuilder` keeps the
    symbolic name separately.
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | None = None

    @property
    def opclass(self) -> OpClass:
        return _CLASS_BY_OP[self.op]

    @property
    def is_load(self) -> bool:
        return self.op is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.op is Opcode.ST

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        return self.op in BRANCH_OPS or self.op is Opcode.JMP

    @property
    def is_multiply(self) -> bool:
        """Multiplies pay the longer ALU latency in the timing cores."""
        return self.op is Opcode.MUL or self.op is Opcode.MULI

    def regs_read(self) -> tuple[int, ...]:
        """Architectural source registers read by this instruction."""
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def regs_written(self) -> tuple[int, ...]:
        """Architectural destination registers written by this instruction.

        ``x0`` writes are included here (they occupy a writeback slot); most
        analyses treat them as discarded, matching the register file.
        """
        return () if self.rd is None else (self.rd,)

    def branch_taken(self, value: int) -> bool:
        """Branch outcome for a conditional branch given its ``rs1`` value."""
        if self.op is Opcode.BEQZ:
            return value == 0
        if self.op is Opcode.BNEZ:
            return value != 0
        if self.op is Opcode.JMP:
            return True
        raise ValueError(f"not a branch: {self.op}")

    # Historical name for :meth:`regs_read`, kept for older call sites.
    sources = regs_read

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(f"x{self.rd}")
        if self.rs1 is not None:
            parts.append(f"x{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"x{self.rs2}")
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"->{self.target}")
        return " ".join(parts)
