"""Instruction encoding for the mini-ISA.

Instructions are plain, immutable records.  PCs are instruction indices into
the program's instruction list (the timing model treats a PC as an address by
multiplying by 4 where a byte address is required, e.g. in predictor tables).

Operand conventions
-------------------
``rd``      destination architectural register (or ``None``)
``rs1``     first source register (base register for memory ops)
``rs2``     second source register (store data register for ``ST``)
``imm``     immediate (memory displacement, ALU immediate, or load value)
``target``  branch target PC (resolved instruction index)

Memory operations move 8-byte words: ``LD rd, imm(rs1)`` and
``ST rs2, imm(rs1)``.  Compares are RISC-V ``slt``-style, writing 0/1 to a
register that a conditional branch (``BNEZ``/``BEQZ``) then tests; this split
is what lets SVR's loop-bound detector observe compare source values via the
Last Compare register exactly as in the paper (SectionIV-B2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """Every operation in the mini-ISA."""

    # Memory.
    LD = "ld"        # rd <- mem[rs1 + imm]
    ST = "st"        # mem[rs1 + imm] <- rs2
    # ALU register-register.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    MIN = "min"
    MAX = "max"
    # ALU register-immediate.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    MULI = "muli"
    LI = "li"        # rd <- imm
    MV = "mv"        # rd <- rs1
    # Floating-point-ish arithmetic (modelled on the integer registers with a
    # longer execute latency; graph kernels use fixed-point score values).
    FADD = "fadd"
    FMUL = "fmul"
    # Compares (slt-style: rd <- 1 if cmp(rs1, rs2) else 0).
    CMP_LT = "cmp_lt"
    CMP_LTU = "cmp_ltu"
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    CMP_GE = "cmp_ge"
    # Control flow.
    BEQZ = "beqz"    # branch to target if rs1 == 0
    BNEZ = "bnez"    # branch to target if rs1 != 0
    JMP = "jmp"      # unconditional jump to target
    HALT = "halt"    # stop the program
    NOP = "nop"


class OpClass(enum.Enum):
    """Coarse functional class used by the timing models."""

    LOAD = "load"
    STORE = "store"
    ALU = "alu"
    FP = "fp"
    CMP = "cmp"
    BRANCH = "branch"
    JUMP = "jump"
    HALT = "halt"
    NOP = "nop"


ALU_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SLL, Opcode.SRL, Opcode.MIN, Opcode.MAX, Opcode.ADDI,
        Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
        Opcode.MULI, Opcode.LI, Opcode.MV,
    }
)
FP_OPS = frozenset({Opcode.FADD, Opcode.FMUL})
CMP_OPS = frozenset(
    {Opcode.CMP_LT, Opcode.CMP_LTU, Opcode.CMP_EQ, Opcode.CMP_NE, Opcode.CMP_GE}
)
BRANCH_OPS = frozenset({Opcode.BEQZ, Opcode.BNEZ})

_CLASS_BY_OP = {Opcode.LD: OpClass.LOAD, Opcode.ST: OpClass.STORE,
                Opcode.JMP: OpClass.JUMP, Opcode.HALT: OpClass.HALT,
                Opcode.NOP: OpClass.NOP}
for _op in ALU_OPS:
    _CLASS_BY_OP[_op] = OpClass.ALU
for _op in FP_OPS:
    _CLASS_BY_OP[_op] = OpClass.FP
for _op in CMP_OPS:
    _CLASS_BY_OP[_op] = OpClass.CMP
for _op in BRANCH_OPS:
    _CLASS_BY_OP[_op] = OpClass.BRANCH


def op_class(op: Opcode) -> OpClass:
    """Return the functional class of *op*."""
    return _CLASS_BY_OP[op]


# Stable small-integer id per opcode (declaration order).  Hot paths index
# per-opcode tables with it instead of hashing the enum member, which is a
# Python-level ``__hash__`` call on every dict probe.
OP_INDEX: dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}

# Per-opcode pre-decoded metadata, so Instruction construction pays a single
# enum-dict probe instead of one per derived field:
# (opclass, opindex, is_load, is_store, is_branch, is_control, is_multiply)
_DECODE_BY_OP: dict[Opcode, tuple[OpClass, int, bool, bool, bool, bool, bool]] = {
    op: (_CLASS_BY_OP[op], OP_INDEX[op], op is Opcode.LD, op is Opcode.ST,
         op in BRANCH_OPS, op in BRANCH_OPS or op is Opcode.JMP,
         op is Opcode.MUL or op is Opcode.MULI)
    for op in Opcode
}


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    ``target`` holds the resolved branch-target PC after assembly; before
    label resolution the :class:`~repro.isa.program.ProgramBuilder` keeps the
    symbolic name separately.

    Issue metadata (``opclass``, ``is_load``, ``srcs``, ...) is pre-decoded
    once in ``__post_init__`` so the per-instruction hot loops of the timing
    cores and the SVR unit pay a plain attribute load instead of property
    dispatch plus enum hashing on every step.  The derived fields are pure
    functions of the encoding fields above and are therefore excluded from
    equality, hashing and repr.
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | None = None
    # -- pre-decoded issue metadata (derived, set in __post_init__) ----------
    opclass: OpClass = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_control: bool = field(init=False, repr=False, compare=False)
    # Multiplies pay the longer ALU latency in the timing cores.
    is_multiply: bool = field(init=False, repr=False, compare=False)
    srcs: tuple[int, ...] = field(init=False, repr=False, compare=False)
    dests: tuple[int, ...] = field(init=False, repr=False, compare=False)
    opindex: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        (opclass, opindex, is_load, is_store,
         is_branch, is_control, is_multiply) = _DECODE_BY_OP[self.op]
        set_ = object.__setattr__          # frozen dataclass: bypass __setattr__
        set_(self, "opclass", opclass)
        set_(self, "opindex", opindex)
        set_(self, "is_load", is_load)
        set_(self, "is_store", is_store)
        set_(self, "is_mem", is_load or is_store)
        set_(self, "is_branch", is_branch)
        set_(self, "is_control", is_control)
        set_(self, "is_multiply", is_multiply)
        rs1, rs2 = self.rs1, self.rs2
        if rs1 is None:
            srcs = () if rs2 is None else (rs2,)
        else:
            srcs = (rs1,) if rs2 is None else (rs1, rs2)
        set_(self, "srcs", srcs)
        rd = self.rd
        set_(self, "dests", () if rd is None else (rd,))

    def regs_read(self) -> tuple[int, ...]:
        """Architectural source registers read by this instruction."""
        return self.srcs

    def regs_written(self) -> tuple[int, ...]:
        """Architectural destination registers written by this instruction.

        ``x0`` writes are included here (they occupy a writeback slot); most
        analyses treat them as discarded, matching the register file.
        """
        return self.dests

    def branch_taken(self, value: int) -> bool:
        """Branch outcome for a conditional branch given its ``rs1`` value."""
        if self.op is Opcode.BEQZ:
            return value == 0
        if self.op is Opcode.BNEZ:
            return value != 0
        if self.op is Opcode.JMP:
            return True
        raise ValueError(f"not a branch: {self.op}")

    # Historical name for :meth:`regs_read`, kept for older call sites.
    sources = regs_read

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(f"x{self.rd}")
        if self.rs1 is not None:
            parts.append(f"x{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"x{self.rs2}")
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"->{self.target}")
        return " ".join(parts)
