"""Timing-free functional interpreter.

Used by the workload test-suite to run kernels to completion and compare
results against numpy/networkx references, and by builders that want to
fast-forward initialisation phases (the paper skips initialisation before
its 200M-instruction regions of interest).
"""

from __future__ import annotations

from repro.isa.executor import execute
from repro.isa.registers import RegisterFile


class FunctionalCore:
    """Executes a program with architectural semantics only."""

    def __init__(self, program, memory) -> None:
        self.program = program
        self.memory = memory
        self.regs = RegisterFile()
        self.pc = 0
        self.halted = False
        self.instructions = 0

    def step(self) -> bool:
        if self.halted or self.pc >= len(self.program):
            self.halted = True
            return False
        inst = self.program[self.pc]
        result = execute(inst, self.pc, self.regs.read, self.memory)
        if result.value is not None and inst.rd is not None:
            self.regs.write(inst.rd, result.value)
        if result.halted:
            self.halted = True
        self.pc = result.next_pc
        self.instructions += 1
        return not self.halted

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run to HALT (or the safety cap); returns instructions executed."""
        while self.instructions < max_instructions and self.step():
            pass
        return self.instructions
