"""Shared core-model machinery: configuration, stats, issue-slot tracking.

Both cores are *event-driven latency models* (DESIGN.md): simulated time is
a float cycle count, instructions are processed in program order, and every
structural resource (issue width, scoreboard/ROB occupancy, MSHRs, DRAM
bandwidth) is a constraint on when an instruction may issue or complete.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class SimulationError(RuntimeError):
    """A simulator-side guard tripped (watchdog fence, injected hang).

    Carries enough context — cycle, pc, committed instructions, and (once
    the harness enriches it) workload and technique — for
    :class:`repro.exec.RunFailure` to record a useful post-mortem instead
    of a bare traceback.
    """

    def __init__(self, message: str, *, cycle: float | None = None,
                 pc: int | None = None, instructions: int | None = None,
                 workload: str | None = None,
                 technique: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.cycle = cycle
        self.pc = pc
        self.instructions = instructions
        self.workload = workload
        self.technique = technique

    def context(self) -> dict:
        """JSON-ready context fields (Nones elided)."""
        fields = {"cycle": self.cycle, "pc": self.pc,
                  "instructions": self.instructions,
                  "workload": self.workload, "technique": self.technique}
        return {k: v for k, v in fields.items() if v is not None}

    def __str__(self) -> str:
        ctx = self.context()
        if not ctx:
            return self.message
        detail = ", ".join(f"{k}={v}" for k, v in ctx.items())
        return f"{self.message} [{detail}]"


class StallReason(enum.Enum):
    """CPI-stack attribution buckets (Fig 3 / Fig 11)."""

    BASE = "base"
    MEM_L1 = "mem-l1"
    MEM_L2 = "mem-l2"
    MEM_DRAM = "mem-dram"
    BRANCH = "branch"
    OTHER = "other"


_LEVEL_TO_REASON = {
    "l1": StallReason.MEM_L1,
    "l2": StallReason.MEM_L2,
    "dram": StallReason.MEM_DRAM,
    "alu": StallReason.OTHER,
}


def stall_reason_for_level(level: str) -> StallReason:
    """Map a producing memory level / unit to its CPI-stack bucket."""
    return _LEVEL_TO_REASON.get(level, StallReason.OTHER)


@dataclass
class CoreConfig:
    """Table III parameters shared by both cores."""

    width: int = 3                   # dispatch/commit width
    frequency_ghz: float = 2.0
    scoreboard_entries: int = 32     # in-order in-flight window
    rob_entries: int = 32            # OoO
    lsq_entries: int = 16            # OoO
    mispredict_penalty: float = 10.0
    alu_latency: float = 1.0
    mul_latency: float = 3.0
    fp_latency: float = 3.0
    # Watchdog fence: hard ceilings on lifetime simulated cycles /
    # committed instructions.  ``None`` disables the fence; the harness
    # runner installs a window-scaled default so a runaway model raises a
    # context-rich SimulationError instead of spinning forever.
    watchdog_max_cycles: float | None = None
    watchdog_max_instructions: int | None = None


@dataclass
class CoreStats:
    """Counters for one measured region of one core."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    alu_ops: int = 0
    fp_ops: int = 0
    mispredicts: int = 0
    halted: bool = False
    start_cycle: float = 0.0
    end_cycle: float = 0.0
    stall_cycles: dict[StallReason, float] = field(
        default_factory=lambda: {r: 0.0 for r in StallReason})

    @property
    def cycles(self) -> float:
        return max(0.0, self.end_cycle - self.start_cycle)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def add_stall(self, reason: StallReason, cycles: float) -> None:
        if cycles > 0:
            self.stall_cycles[reason] += cycles

    def cpi_stack(self) -> dict[str, float]:
        """CPI contributions per bucket; 'base' is the residual issue CPI."""
        if not self.instructions:
            return {r.value: 0.0 for r in StallReason}
        stack = {r.value: c / self.instructions
                 for r, c in self.stall_cycles.items()}
        attributed = sum(stack.values()) - stack[StallReason.BASE.value]
        stack[StallReason.BASE.value] = max(0.0, self.cpi - attributed)
        return stack


def check_watchdog(core) -> None:
    """Raise :class:`SimulationError` when *core* has blown past its
    configured watchdog fence (called once per committed instruction from
    the run loop of both cores).  Emits a ``core.watchdog`` probe event
    before raising so observability layers can count trips."""
    cfg = core.config
    tripped = None
    if (cfg.watchdog_max_cycles is not None
            and core.stats.end_cycle > cfg.watchdog_max_cycles):
        tripped = ("cycles", cfg.watchdog_max_cycles)
    elif (cfg.watchdog_max_instructions is not None
            and core.lifetime_instructions > cfg.watchdog_max_instructions):
        tripped = ("instructions", cfg.watchdog_max_instructions)
    if tripped is None:
        return
    kind, limit = tripped
    core.bus.probe("core.watchdog").emit(
        kind=kind, limit=limit, core=core.kind,
        cycle=core.stats.end_cycle, pc=core.pc,
        instructions=core.lifetime_instructions)
    raise SimulationError(
        f"watchdog fence: simulated {kind} exceeded {limit:g} "
        f"on the {core.kind} core",
        cycle=core.stats.end_cycle, pc=core.pc,
        instructions=core.lifetime_instructions)


class IssueSlots:
    """Tracks issue bandwidth: at most ``width`` issues per integer cycle.

    Allocation requests are monotonic in practice (program order); a request
    earlier than the current issue cycle is pushed forward, which is also
    how SVR's lockstep coupling serialises SVIs behind the real instruction
    that spawned them.
    """

    __slots__ = ("width", "_cycle", "_used")

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("issue width must be >= 1")
        self.width = width
        self._cycle = 0
        self._used = 0

    @property
    def current_cycle(self) -> int:
        return self._cycle

    def allocate(self, earliest: float) -> float:
        """Reserve one slot at or after *earliest*; return the issue time."""
        if earliest < self._cycle:
            earliest = float(self._cycle)
        cycle = math.floor(earliest)
        if cycle > self._cycle:
            self._cycle = cycle
            self._used = 1
            return earliest
        if self._used < self.width:
            self._used += 1
            return earliest
        self._cycle += 1
        self._used = 1
        return float(self._cycle)

    def allocate_many(self, earliest: float, count: int) -> "np.ndarray":
        """Reserve *count* slots at or after *earliest* in one call.

        Exactly equivalent to *count* sequential :meth:`allocate` calls
        with the same *earliest* (the SoA lane engine's usage pattern),
        but computed in closed form: the first slots fill the remaining
        width of the cycle containing *earliest*, then whole groups of
        ``width`` land on each subsequent integer cycle.
        """
        import numpy as np

        out = np.empty(count, dtype=np.float64)
        if count == 0:
            return out
        if earliest < self._cycle:
            earliest = float(self._cycle)
        cycle = math.floor(earliest)
        if cycle > self._cycle:
            # A fresh cycle: the full width issues at *earliest*.
            head = min(self.width, count)
            self._cycle = cycle
            self._used = head
        else:
            # Fill what is left of the current cycle.
            cycle = self._cycle
            head = min(self.width - self._used, count)
            self._used += head
        out[:head] = earliest
        rest = count - head
        if rest == 0:
            return out
        groups = -(-rest // self.width)
        out[head:] = np.repeat(np.arange(cycle + 1, cycle + 1 + groups,
                                         dtype=np.float64), self.width)[:rest]
        self._cycle = cycle + groups
        self._used = rest - (groups - 1) * self.width
        return out

    def peek(self, earliest: float) -> float:
        """Issue time :meth:`allocate` would return, without reserving."""
        if earliest < self._cycle:
            earliest = float(self._cycle)
        cycle = math.floor(earliest)
        if cycle > self._cycle or self._used < self.width:
            return earliest
        return float(self._cycle + 1)
