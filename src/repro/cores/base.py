"""Shared core-model machinery: configuration, stats, issue-slot tracking.

Both cores are *event-driven latency models* (DESIGN.md): simulated time is
a float cycle count, instructions are processed in program order, and every
structural resource (issue width, scoreboard/ROB occupancy, MSHRs, DRAM
bandwidth) is a constraint on when an instruction may issue or complete.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class StallReason(enum.Enum):
    """CPI-stack attribution buckets (Fig 3 / Fig 11)."""

    BASE = "base"
    MEM_L1 = "mem-l1"
    MEM_L2 = "mem-l2"
    MEM_DRAM = "mem-dram"
    BRANCH = "branch"
    OTHER = "other"


_LEVEL_TO_REASON = {
    "l1": StallReason.MEM_L1,
    "l2": StallReason.MEM_L2,
    "dram": StallReason.MEM_DRAM,
    "alu": StallReason.OTHER,
}


def stall_reason_for_level(level: str) -> StallReason:
    """Map a producing memory level / unit to its CPI-stack bucket."""
    return _LEVEL_TO_REASON.get(level, StallReason.OTHER)


@dataclass
class CoreConfig:
    """Table III parameters shared by both cores."""

    width: int = 3                   # dispatch/commit width
    frequency_ghz: float = 2.0
    scoreboard_entries: int = 32     # in-order in-flight window
    rob_entries: int = 32            # OoO
    lsq_entries: int = 16            # OoO
    mispredict_penalty: float = 10.0
    alu_latency: float = 1.0
    mul_latency: float = 3.0
    fp_latency: float = 3.0


@dataclass
class CoreStats:
    """Counters for one measured region of one core."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    alu_ops: int = 0
    fp_ops: int = 0
    mispredicts: int = 0
    halted: bool = False
    start_cycle: float = 0.0
    end_cycle: float = 0.0
    stall_cycles: dict[StallReason, float] = field(
        default_factory=lambda: {r: 0.0 for r in StallReason})

    @property
    def cycles(self) -> float:
        return max(0.0, self.end_cycle - self.start_cycle)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def add_stall(self, reason: StallReason, cycles: float) -> None:
        if cycles > 0:
            self.stall_cycles[reason] += cycles

    def cpi_stack(self) -> dict[str, float]:
        """CPI contributions per bucket; 'base' is the residual issue CPI."""
        if not self.instructions:
            return {r.value: 0.0 for r in StallReason}
        stack = {r.value: c / self.instructions
                 for r, c in self.stall_cycles.items()}
        attributed = sum(stack.values()) - stack[StallReason.BASE.value]
        stack[StallReason.BASE.value] = max(0.0, self.cpi - attributed)
        return stack


class IssueSlots:
    """Tracks issue bandwidth: at most ``width`` issues per integer cycle.

    Allocation requests are monotonic in practice (program order); a request
    earlier than the current issue cycle is pushed forward, which is also
    how SVR's lockstep coupling serialises SVIs behind the real instruction
    that spawned them.
    """

    __slots__ = ("width", "_cycle", "_used")

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("issue width must be >= 1")
        self.width = width
        self._cycle = 0
        self._used = 0

    @property
    def current_cycle(self) -> int:
        return self._cycle

    def allocate(self, earliest: float) -> float:
        """Reserve one slot at or after *earliest*; return the issue time."""
        if earliest < self._cycle:
            earliest = float(self._cycle)
        cycle = math.floor(earliest)
        if cycle > self._cycle:
            self._cycle = cycle
            self._used = 1
            return earliest
        if self._used < self.width:
            self._used += 1
            return earliest
        self._cycle += 1
        self._used = 1
        return float(self._cycle)

    def peek(self, earliest: float) -> float:
        """Issue time :meth:`allocate` would return, without reserving."""
        if earliest < self._cycle:
            earliest = float(self._cycle)
        cycle = math.floor(earliest)
        if cycle > self._cycle or self._used < self.width:
            return earliest
        return float(self._cycle + 1)
