"""Timing core models: 3-wide stall-on-use in-order and 3-wide out-of-order."""

from repro.cores.base import CoreConfig, CoreStats, IssueSlots, StallReason
from repro.cores.inorder import InOrderCore
from repro.cores.ooo import OutOfOrderCore

__all__ = [
    "CoreConfig",
    "CoreStats",
    "InOrderCore",
    "IssueSlots",
    "OutOfOrderCore",
    "StallReason",
]
