"""3-wide stall-on-use in-order core (ARM Cortex-A510-like, Table III).

The core issues strictly in program order, up to ``width`` instructions per
cycle.  A load does not stall the pipeline; the first *use* of a register
whose producing load is outstanding does (stall-on-use), which is the
property SVR piggybacks on (Section III of the paper).  A 32-entry
scoreboard bounds the in-flight window.

SVR attaches through the ``svr`` hook object (see
:class:`repro.svr.unit.ScalarVectorUnit`): the core calls
``svr.after_issue(...)`` for every issued instruction and exposes
:meth:`issue_transient` so SVIs consume real issue slots in lockstep.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.branch.predictor import HybridBranchPredictor
from repro.cores.base import (
    CoreConfig,
    CoreStats,
    IssueSlots,
    StallReason,
    check_watchdog,
    stall_reason_for_level,
)
from repro.isa.executor import execute
from repro.isa.instructions import OpClass
from repro.isa.registers import NUM_REGS, RegisterFile
from repro.obs.probes import default_bus


class InOrderCore:
    """Stall-on-use in-order timing model."""

    kind = "inorder"

    def __init__(self, program, memory, hierarchy, config: CoreConfig | None = None,
                 svr=None, bus=None) -> None:
        self.program = program
        self.memory = memory
        self.hierarchy = hierarchy
        self.bus = bus if bus is not None else default_bus()
        self._p_commit = self.bus.probe("core.commit")
        self.config = config or CoreConfig()
        self.regs = RegisterFile()
        self.predictor = HybridBranchPredictor(
            misprediction_penalty=self.config.mispredict_penalty)
        self.slots = IssueSlots(self.config.width)
        self.pc = 0
        self.halted = False
        self.stats = CoreStats()
        self.lifetime_instructions = 0   # across windows, for the watchdog
        self._ready = [0.0] * NUM_REGS
        self._producer = ["alu"] * NUM_REGS
        self._inflight: deque[float] = deque()
        self._frontend_ready = 0.0
        self.svr = svr
        if svr is not None:
            svr.attach(self)
        # Optional per-instruction observer: called as
        # trace(pc, inst, issue_time, completion, outcome) after execution.
        self.trace = None

    # -- helpers used by SVR ----------------------------------------------------

    def issue_transient(self, earliest: float) -> float:
        """Reserve an issue slot for a transient (SVI) operation."""
        time = self.slots.allocate(earliest)
        if time + 1.0 > self.stats.end_cycle:
            self.stats.end_cycle = time + 1.0
        return time

    def issue_transient_many(self, earliest: float, count: int) -> np.ndarray:
        """Reserve *count* SVI issue slots in one call (SoA lane engine).

        Returns the slot times as a float64 vector.  Equivalent to
        *count* :meth:`issue_transient` calls with the same *earliest*
        (:meth:`IssueSlots.allocate_many` is closed-form but exact), and
        the returned sequence is non-decreasing, so one end-of-loop
        ``end_cycle`` update matches the scalar path's per-call updates.
        """
        out = self.slots.allocate_many(earliest, count)
        if count:
            last = out[count - 1] + 1.0
            if last > self.stats.end_cycle:
                self.stats.end_cycle = last
        return out

    def now(self) -> float:
        return float(self.slots.current_cycle)

    def delay_frontend(self, until: float) -> None:
        """Hold fetch until *until* (models the register-copy cost ablation
        of Section VI-D: copying scalar state before a runahead round)."""
        if until > self._frontend_ready:
            self._frontend_ready = until

    def reset_stats(self) -> None:
        """Start a fresh measurement window without disturbing state."""
        start = self.now()
        self.stats = CoreStats(start_cycle=start, end_cycle=start)

    # -- main loop ------------------------------------------------------------

    def _exec_latency(self, inst) -> float:
        cfg = self.config
        if inst.is_multiply:
            return cfg.mul_latency
        if inst.opclass is OpClass.FP:
            return cfg.fp_latency
        return cfg.alu_latency

    def step(self) -> bool:
        """Issue and execute one instruction; returns False once halted."""
        if self.halted or self.pc >= len(self.program):
            self.halted = True
            return False
        inst = self.program[self.pc]
        cfg = self.config
        stats = self.stats

        # Baseline for stall accounting: when this instruction could issue
        # absent hazards (frontend redirect or issue-bandwidth limit).
        earliest = max(self._frontend_ready, float(self.slots.current_cycle))
        # Scoreboard: instruction i waits for completion of i - entries.
        if len(self._inflight) >= cfg.scoreboard_entries:
            release = self._inflight.popleft()
            if release > earliest:
                stats.add_stall(StallReason.OTHER, release - earliest)
                earliest = release
        # Stall-on-use: wait for source operands.
        src_ready = earliest
        src_level = None
        ready_table = self._ready
        for reg in inst.srcs:
            ready = ready_table[reg]
            if ready > src_ready:
                src_ready = ready
                src_level = self._producer[reg]
        if src_ready > earliest:
            stats.add_stall(stall_reason_for_level(src_level or "alu"),
                            src_ready - earliest)
            earliest = src_ready

        issue = self.slots.allocate(earliest)
        result = execute(inst, self.pc, self.regs.read, self.memory)

        completion = issue + 1.0
        outcome = None
        opclass = inst.opclass
        if opclass is OpClass.LOAD:
            outcome = self.hierarchy.load(result.address, issue, self.pc)
            completion = outcome.completion
            self.regs.write(inst.rd, result.value)
            self._ready[inst.rd] = completion
            self._producer[inst.rd] = outcome.level
            stats.loads += 1
        elif opclass is OpClass.STORE:
            outcome = self.hierarchy.store(result.address, issue, self.pc)
            completion = outcome.completion
            stats.stores += 1
        elif opclass is OpClass.BRANCH:
            correct = self.predictor.predict_and_update(self.pc, result.taken)
            if not correct:
                stats.mispredicts += 1
                stats.add_stall(StallReason.BRANCH, cfg.mispredict_penalty)
                self._frontend_ready = issue + 1.0 + cfg.mispredict_penalty
            stats.branches += 1
        elif opclass is OpClass.HALT:
            self.halted = True
            stats.halted = True
        elif opclass in (OpClass.ALU, OpClass.FP, OpClass.CMP):
            latency = self._exec_latency(inst)
            completion = issue + latency
            self.regs.write(inst.rd, result.value)
            self._ready[inst.rd] = completion
            self._producer[inst.rd] = "alu"
            if opclass is OpClass.FP:
                stats.fp_ops += 1
            else:
                stats.alu_ops += 1
        # JUMP / NOP need no special handling beyond control flow.

        self._inflight.append(completion)
        stats.instructions += 1
        if completion > stats.end_cycle:
            stats.end_cycle = completion
        if issue + 1.0 > stats.end_cycle:
            stats.end_cycle = issue + 1.0

        if self.svr is not None and not self.halted:
            self.svr.after_issue(self.pc, inst, issue, result, outcome)
        if self._p_commit.enabled:
            self._p_commit.emit(
                pc=self.pc, op=inst.op.value, opclass=opclass.name,
                issue=issue, completion=completion,
                level=outcome.level if outcome is not None else None)
        if self.trace is not None:
            self.trace(self.pc, inst, issue, completion, outcome)

        self.pc = result.next_pc
        return not self.halted

    def run(self, max_instructions: int, progress=None) -> CoreStats:
        """Run until HALT or *max_instructions* committed in this window.

        Raises :class:`~repro.cores.base.SimulationError` if the watchdog
        fence (``CoreConfig.watchdog_max_cycles`` / ``_max_instructions``)
        is exceeded.  Pass a :class:`repro.obs.ProgressReporter` as
        *progress* to emit in-flight frames; the default ``None`` path is
        the original loop, untouched.
        """
        executed = 0
        cfg = self.config
        fenced = (cfg.watchdog_max_cycles is not None
                  or cfg.watchdog_max_instructions is not None)
        if progress is not None:
            countdown = progress.interval
            while executed < max_instructions and self.step():
                executed += 1
                self.lifetime_instructions += 1
                if fenced:
                    check_watchdog(self)
                countdown -= 1
                if countdown <= 0:
                    countdown = progress.interval
                    progress.sample(self)
            return self.stats
        while executed < max_instructions and self.step():
            executed += 1
            self.lifetime_instructions += 1
            if fenced:
                check_watchdog(self)
        return self.stats
