"""3-wide out-of-order core (Table III: ROB 32, LSQ 16, RS 32).

A one-pass dataflow timing model: instructions are processed in program
order, but each one's execution start is constrained only by operand
readiness, dispatch bandwidth and window occupancy — so independent loads
overlap (MLP) while dependent chains serialise, exactly the contrast with
the in-order core that Figs 3 and 11 rest on.

Modelled constraints
--------------------
* dispatch: ``width`` per cycle, blocked when the ROB (32) is full, i.e.
  until instruction ``i - 32`` commits;
* memory ops additionally wait for a free LSQ (16) slot;
* execution: starts at max(dispatch, source-ready); loads go through the
  shared memory hierarchy (MSHRs, bandwidth, TLB);
* store-to-load forwarding: a load that hits a prior in-window store to the
  same word receives the store's data directly (Table III note);
* in-order commit at ``width`` per cycle; a mispredicted branch redirects
  fetch when it resolves, plus the 10-cycle penalty.
"""

from __future__ import annotations

from collections import deque

from repro.branch.predictor import HybridBranchPredictor
from repro.cores.base import (
    CoreConfig,
    CoreStats,
    IssueSlots,
    StallReason,
    check_watchdog,
    stall_reason_for_level,
)
from repro.isa.executor import execute
from repro.isa.instructions import OpClass
from repro.isa.registers import NUM_REGS, RegisterFile
from repro.obs.probes import default_bus


class OutOfOrderCore:
    """Dataflow out-of-order timing model."""

    kind = "ooo"

    def __init__(self, program, memory, hierarchy,
                 config: CoreConfig | None = None, vr=None,
                 bus=None) -> None:
        self.program = program
        self.memory = memory
        self.hierarchy = hierarchy
        self.bus = bus if bus is not None else default_bus()
        self._p_commit = self.bus.probe("core.commit")
        self._p_window = self.bus.probe("core.window_stall")
        # Optional Vector-Runahead unit (repro.svr.vr), triggered on
        # full-window stalls.
        self.vr = vr
        if vr is not None:
            vr.attach(self)
        self.config = config or CoreConfig()
        self.regs = RegisterFile()
        self.predictor = HybridBranchPredictor(
            misprediction_penalty=self.config.mispredict_penalty)
        self._dispatch_slots = IssueSlots(self.config.width)
        self._commit_slots = IssueSlots(self.config.width)
        self.pc = 0
        self.halted = False
        self.stats = CoreStats()
        self.lifetime_instructions = 0   # across windows, for the watchdog
        self._ready = [0.0] * NUM_REGS
        self._producer = ["alu"] * NUM_REGS
        self._rob: deque[float] = deque()      # commit times, oldest first
        self._lsq: deque[float] = deque()      # commit times of memory ops
        self._frontend_ready = 0.0
        self._commit_tail = 0.0
        self._index = 0
        # word address -> (instruction index, data-ready time) for forwarding
        self._store_window: dict[int, tuple[int, float]] = {}

    def now(self) -> float:
        return self._commit_tail

    def reset_stats(self) -> None:
        start = self._commit_tail
        self.stats = CoreStats(start_cycle=start, end_cycle=start)

    def _exec_latency(self, inst) -> float:
        cfg = self.config
        if inst.is_multiply:
            return cfg.mul_latency
        if inst.opclass is OpClass.FP:
            return cfg.fp_latency
        return cfg.alu_latency

    def step(self) -> bool:
        if self.halted or self.pc >= len(self.program):
            self.halted = True
            return False
        inst = self.program[self.pc]
        cfg = self.config
        stats = self.stats

        dispatch_earliest = max(self._frontend_ready,
                                float(self._dispatch_slots.current_cycle))
        if len(self._rob) >= cfg.rob_entries:
            release = self._rob.popleft()
            if release > dispatch_earliest:
                # Full-window stall: the VR trigger condition.
                if self._p_window.enabled:
                    self._p_window.emit(pc=self.pc, time=dispatch_earliest,
                                        cycles=release - dispatch_earliest)
                if self.vr is not None:
                    self.vr.on_window_stall(self.pc, dispatch_earliest,
                                            release - dispatch_earliest,
                                            self._index)
                dispatch_earliest = release
        is_mem = inst.opclass in (OpClass.LOAD, OpClass.STORE)
        if is_mem and len(self._lsq) >= cfg.lsq_entries:
            dispatch_earliest = max(dispatch_earliest, self._lsq.popleft())
        dispatch = self._dispatch_slots.allocate(dispatch_earliest)

        # Operand readiness (register dataflow).
        exec_start = dispatch
        src_level = None
        ready_table = self._ready
        for reg in inst.srcs:
            ready = ready_table[reg]
            if ready > exec_start:
                exec_start = ready
                src_level = self._producer[reg]

        result = execute(inst, self.pc, self.regs.read, self.memory)

        completion = exec_start + 1.0
        level = "alu"
        opclass = inst.opclass
        if opclass is OpClass.LOAD:
            word = result.address >> 3
            forward = self._store_window.get(word)
            if forward is not None and forward[0] >= self._index - cfg.rob_entries:
                completion = max(exec_start, forward[1]) + 1.0
                level = "alu"  # forwarded, no memory round trip
            else:
                outcome = self.hierarchy.load(result.address, exec_start, self.pc)
                completion = outcome.completion
                level = outcome.level
            self.regs.write(inst.rd, result.value)
            self._ready[inst.rd] = completion
            self._producer[inst.rd] = level
            stats.loads += 1
        elif opclass is OpClass.STORE:
            outcome = self.hierarchy.store(result.address, exec_start, self.pc)
            completion = exec_start + 1.0  # store buffered; core moves on
            self._store_window[result.address >> 3] = (self._index, exec_start)
            stats.stores += 1
        elif opclass is OpClass.BRANCH:
            correct = self.predictor.predict_and_update(self.pc, result.taken)
            completion = exec_start + 1.0
            if not correct:
                stats.mispredicts += 1
                stats.add_stall(StallReason.BRANCH, cfg.mispredict_penalty)
                self._frontend_ready = completion + cfg.mispredict_penalty
            stats.branches += 1
        elif opclass is OpClass.HALT:
            self.halted = True
            stats.halted = True
        elif opclass in (OpClass.ALU, OpClass.FP, OpClass.CMP):
            completion = exec_start + self._exec_latency(inst)
            self.regs.write(inst.rd, result.value)
            self._ready[inst.rd] = completion
            self._producer[inst.rd] = src_level or "alu"
            if opclass is OpClass.FP:
                stats.fp_ops += 1
            else:
                stats.alu_ops += 1

        # In-order commit; attribute commit stalls to the producing level.
        commit_earliest = max(completion, self._commit_tail)
        if completion > self._commit_tail:
            reason_level = level if opclass is OpClass.LOAD else (src_level or "alu")
            stats.add_stall(stall_reason_for_level(reason_level),
                            completion - self._commit_tail)
        commit = self._commit_slots.allocate(commit_earliest)
        self._commit_tail = commit
        self._rob.append(commit)
        if is_mem:
            self._lsq.append(commit)
        if len(self._store_window) > 4 * cfg.rob_entries:
            cutoff = self._index - cfg.rob_entries
            self._store_window = {w: v for w, v in self._store_window.items()
                                  if v[0] >= cutoff}

        stats.instructions += 1
        self._index += 1
        if commit + 1.0 > stats.end_cycle:
            stats.end_cycle = commit + 1.0
        if self._p_commit.enabled:
            self._p_commit.emit(
                pc=self.pc, op=inst.op.value, opclass=opclass.name,
                issue=exec_start, completion=completion,
                level=level if opclass is OpClass.LOAD else None)

        self.pc = result.next_pc
        return not self.halted

    def run(self, max_instructions: int, progress=None) -> CoreStats:
        executed = 0
        cfg = self.config
        fenced = (cfg.watchdog_max_cycles is not None
                  or cfg.watchdog_max_instructions is not None)
        if progress is not None:
            countdown = progress.interval
            while executed < max_instructions and self.step():
                executed += 1
                self.lifetime_instructions += 1
                if fenced:
                    check_watchdog(self)
                countdown -= 1
                if countdown <= 0:
                    countdown = progress.interval
                    progress.sample(self)
            return self.stats
        while executed < max_instructions and self.step():
            executed += 1
            self.lifetime_instructions += 1
            if fenced:
                check_watchdog(self)
        return self.stats
