"""GAP benchmark suite kernels: BC, BFS, CC, PR, SSSP (Section V).

Each builder assembles the kernel in the mini-ISA over a CSR graph laid out
in simulated memory, with vertex state stored in 64-byte records (see
:mod:`repro.workloads.base`).  Initialisation (array setup, sentinel fills)
happens in Python — the paper likewise skips initialisation and simulates a
region of interest.

The kernels keep the access-pattern structure that drives the paper's
results: a striding walk over the queue/offset/neighbor arrays feeding
indirect accesses into a larger-than-LLC vertex array, with the per-kernel
quirks called out in the evaluation (PR/CC's contiguous inner loops, BFS's
divergent visited-checks, SSSP's worklist irregularity, BC's two phases).
"""

from __future__ import annotations

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.memory.main_memory import MainMemory
from repro.workloads.base import (
    VERTEX_STRIDE_SHIFT,
    Workload,
    alloc_vertex_array,
    emit_vertex_load,
    emit_vertex_store,
    emit_word_index_load,
    emit_word_index_store,
)
from repro.workloads.graphs import CSRGraph

_UNVISITED = (1 << 64) - 1   # "-1" sentinel
_INF = (1 << 62)


def _alloc_graph(memory: MainMemory, graph: CSRGraph) -> tuple[int, int]:
    offsets = memory.alloc_array(graph.offsets, name="offsets")
    neighbors = memory.alloc_array(graph.neighbors, name="neighbors")
    return offsets, neighbors


def _default_root(graph: CSRGraph, root: int | None) -> int:
    """GAP picks roots with non-trivial reach; default to the max-degree
    vertex so synthetic graphs (where vertex 0 may be isolated) work."""
    if root is not None:
        return root
    return int(np.argmax(np.diff(graph.offsets)))


def build_pr(graph: CSRGraph, memory: MainMemory | None = None,
             passes: int = 16) -> Workload:
    """PageRank pull kernel (Listing 1 of the paper).

    ``scores[u] = sum(contrib[v] for v in neigh(u))`` per pass; contrib is a
    static per-vertex value so the gather dominates, as in the hot loop the
    paper shows.
    """
    memory = memory or MainMemory()
    offsets, neighbors = _alloc_graph(memory, graph)
    n = graph.num_nodes
    rng = np.random.default_rng(11)
    contrib = alloc_vertex_array(memory, n, "contrib")
    for v in range(n):
        memory.write_word(contrib + (v << VERTEX_STRIDE_SHIFT),
                          int(rng.integers(1, 1000)))
    scores = alloc_vertex_array(memory, n, "scores", fill=0)

    b = ProgramBuilder("pr")
    # a0=offsets a1=neighbors a2=contrib a3=scores a4=n a5=passes
    b.li("a0", offsets)
    b.li("a1", neighbors)
    b.li("a2", contrib)
    b.li("a3", scores)
    b.li("a4", n)
    b.li("a5", passes)
    b.li("s0", 0)                    # pass counter
    b.label("pass_loop")
    b.li("t0", 0)                    # u
    b.label("outer")
    b.slli("t1", "t0", 3)
    b.add("t2", "a0", "t1")
    b.ld("t3", "t2", 0)              # idx = offsets[u]      (striding)
    b.ld("t4", "t2", 8)              # end = offsets[u+1]    (striding)
    b.li("t5", 0)                    # total
    b.cmp_ge("t6", "t3", "t4")
    b.bnez("t6", "after_inner")
    b.label("inner")
    emit_word_index_load(b, "t8", "a1", "t3", "t7")   # v = neighbors[idx]
    emit_vertex_load(b, "t10", "a2", "t8", "t9")      # contrib[v]  (indirect)
    b.add("t5", "t5", "t10")
    b.addi("t3", "t3", 1)
    b.cmp_lt("t6", "t3", "t4")
    b.bnez("t6", "inner")
    b.label("after_inner")
    emit_vertex_store(b, "t5", "a3", "t0", "t1")      # scores[u] = total
    b.addi("t0", "t0", 1)
    b.cmp_lt("t6", "t0", "a4")
    b.bnez("t6", "outer")
    b.addi("s0", "s0", 1)
    b.cmp_lt("t6", "s0", "a5")
    b.bnez("t6", "pass_loop")
    b.halt()

    return Workload("PR", "gap", b.build(), memory, meta={
        "graph": graph, "scores": scores, "contrib": contrib,
        "vertex_shift": VERTEX_STRIDE_SHIFT, "passes": passes,
    })


def build_bfs(graph: CSRGraph, memory: MainMemory | None = None,
              root: int | None = None) -> Workload:
    """Top-down queue-based breadth-first search."""
    root = _default_root(graph, root)
    memory = memory or MainMemory()
    offsets, neighbors = _alloc_graph(memory, graph)
    n = graph.num_nodes
    parent = alloc_vertex_array(memory, n, "parent")
    for v in range(n):
        memory.write_word(parent + (v << VERTEX_STRIDE_SHIFT), _UNVISITED)
    queue = memory.alloc_zeros(n + 1, name="queue")
    memory.write_word(queue, root)
    memory.write_word(parent + (root << VERTEX_STRIDE_SHIFT), root)

    b = ProgramBuilder("bfs")
    # a0=offsets a1=neighbors a2=parent a3=queue a4=sentinel
    b.li("a0", offsets)
    b.li("a1", neighbors)
    b.li("a2", parent)
    b.li("a3", queue)
    b.li("a4", _UNVISITED)
    b.li("t0", 0)                    # head
    b.li("t1", 1)                    # tail
    b.label("while_queue")
    b.cmp_lt("t2", "t0", "t1")
    b.beqz("t2", "done")
    emit_word_index_load(b, "t3", "a3", "t0", "t2")   # u = queue[head] (striding)
    b.addi("t0", "t0", 1)
    b.slli("t4", "t3", 3)
    b.add("t4", "a0", "t4")
    b.ld("t5", "t4", 0)              # idx = offsets[u]   (indirect via queue)
    b.ld("t6", "t4", 8)              # end
    b.label("edge_loop")
    b.cmp_ge("t7", "t5", "t6")
    b.bnez("t7", "while_queue")
    emit_word_index_load(b, "t8", "a1", "t5", "t7")   # v = neighbors[idx] (striding)
    b.addi("t5", "t5", 1)
    emit_vertex_load(b, "t9", "a2", "t8", "t10")      # parent[v]  (indirect)
    b.cmp_eq("t11", "t9", "a4")
    b.beqz("t11", "edge_loop")                        # visited -> skip (divergent)
    emit_vertex_store(b, "t3", "a2", "t8", "t10")     # parent[v] = u
    emit_word_index_store(b, "t8", "a3", "t1", "t10")  # queue[tail] = v
    b.addi("t1", "t1", 1)
    b.jmp("edge_loop")
    b.label("done")
    b.halt()

    return Workload("BFS", "gap", b.build(), memory, meta={
        "graph": graph, "parent": parent, "queue": queue, "root": root,
        "sentinel": _UNVISITED, "vertex_shift": VERTEX_STRIDE_SHIFT,
    })


def build_cc(graph: CSRGraph, memory: MainMemory | None = None,
             passes: int = 8) -> Workload:
    """Connected components by label propagation (min over neighbors).

    The min is computed with an unconditional ``min`` instruction, so the
    indirect chain is branch-free — the reason CC is listed among the
    workloads where every SVR variant is accurate (Fig 13a).
    """
    memory = memory or MainMemory()
    offsets, neighbors = _alloc_graph(memory, graph)
    n = graph.num_nodes
    comp = alloc_vertex_array(memory, n, "comp")
    for v in range(n):
        memory.write_word(comp + (v << VERTEX_STRIDE_SHIFT), v)

    b = ProgramBuilder("cc")
    # a0=offsets a1=neighbors a2=comp a4=n a5=passes
    b.li("a0", offsets)
    b.li("a1", neighbors)
    b.li("a2", comp)
    b.li("a4", n)
    b.li("a5", passes)
    b.li("s0", 0)
    b.label("pass_loop")
    b.li("t0", 0)                    # u
    b.label("outer")
    b.slli("t1", "t0", 3)
    b.add("t2", "a0", "t1")
    b.ld("t3", "t2", 0)              # idx            (striding)
    b.ld("t4", "t2", 8)              # end            (striding)
    emit_vertex_load(b, "t5", "a2", "t0", "t1")       # c = comp[u]
    b.cmp_ge("t6", "t3", "t4")
    b.bnez("t6", "after_inner")
    b.label("inner")
    emit_word_index_load(b, "t8", "a1", "t3", "t7")   # v = neighbors[idx]
    emit_vertex_load(b, "t10", "a2", "t8", "t9")      # comp[v]   (indirect)
    b.min_("t5", "t5", "t10")
    b.addi("t3", "t3", 1)
    b.cmp_lt("t6", "t3", "t4")
    b.bnez("t6", "inner")
    b.label("after_inner")
    emit_vertex_store(b, "t5", "a2", "t0", "t1")      # comp[u] = c
    b.addi("t0", "t0", 1)
    b.cmp_lt("t6", "t0", "a4")
    b.bnez("t6", "outer")
    b.addi("s0", "s0", 1)
    b.cmp_lt("t6", "s0", "a5")
    b.bnez("t6", "pass_loop")
    b.halt()

    return Workload("CC", "gap", b.build(), memory, meta={
        "graph": graph, "comp": comp, "passes": passes,
        "vertex_shift": VERTEX_STRIDE_SHIFT,
    })


def build_sssp(graph: CSRGraph, memory: MainMemory | None = None,
               root: int | None = None, max_work: int | None = None) -> Workload:
    """Single-source shortest paths (SPFA-style worklist relaxation).

    The worklist order is data-dependent, so neither the stride prefetcher
    nor IMP can track the indirect dist/weight accesses — the paper lists
    SSSP among the workloads IMP fails on entirely.
    """
    if graph.weights is None:
        raise ValueError("SSSP needs a weighted graph")
    root = _default_root(graph, root)
    memory = memory or MainMemory()
    offsets, neighbors = _alloc_graph(memory, graph)
    weights = memory.alloc_array(graph.weights, name="weights")
    n = graph.num_nodes
    dist = alloc_vertex_array(memory, n, "dist")
    for v in range(n):
        memory.write_word(dist + (v << VERTEX_STRIDE_SHIFT), _INF)
    memory.write_word(dist + (root << VERTEX_STRIDE_SHIFT), 0)
    capacity = max_work or max(16 * graph.num_edges, 1024)
    queue = memory.alloc_zeros(capacity, name="queue")
    memory.write_word(queue, root)

    b = ProgramBuilder("sssp")
    # a0=offsets a1=neighbors a2=weights a3=dist a5=queue a6=capacity
    b.li("a0", offsets)
    b.li("a1", neighbors)
    b.li("a2", weights)
    b.li("a3", dist)
    b.li("a5", queue)
    b.li("a6", capacity - 1)
    b.li("t0", 0)                    # head
    b.li("t1", 1)                    # tail
    b.label("while_queue")
    b.cmp_lt("t2", "t0", "t1")
    b.beqz("t2", "done")
    emit_word_index_load(b, "t3", "a5", "t0", "t2")   # u = queue[head] (striding)
    b.addi("t0", "t0", 1)
    emit_vertex_load(b, "s1", "a3", "t3", "t2")       # du = dist[u]
    b.slli("t4", "t3", 3)
    b.add("t4", "a0", "t4")
    b.ld("t5", "t4", 0)              # idx
    b.ld("t6", "t4", 8)              # end
    b.label("edge_loop")
    b.cmp_ge("t7", "t5", "t6")
    b.bnez("t7", "while_queue")
    emit_word_index_load(b, "t8", "a1", "t5", "t7")   # v = neighbors[idx]
    emit_word_index_load(b, "s2", "a2", "t5", "t7")   # w = weights[idx]
    b.addi("t5", "t5", 1)
    b.add("s2", "s1", "s2")                            # nd = du + w
    emit_vertex_load(b, "t9", "a3", "t8", "t10")      # dist[v]   (indirect)
    b.cmp_lt("t11", "s2", "t9")
    b.beqz("t11", "edge_loop")                        # no improvement
    emit_vertex_store(b, "s2", "a3", "t8", "t10")     # dist[v] = nd
    b.cmp_lt("t11", "t1", "a6")
    b.beqz("t11", "edge_loop")                        # worklist full
    emit_word_index_store(b, "t8", "a5", "t1", "t10")  # queue[tail++] = v
    b.addi("t1", "t1", 1)
    b.jmp("edge_loop")
    b.label("done")
    b.halt()

    return Workload("SSSP", "gap", b.build(), memory, meta={
        "graph": graph, "dist": dist, "root": root, "inf": _INF,
        "vertex_shift": VERTEX_STRIDE_SHIFT,
    })


def build_bc(graph: CSRGraph, memory: MainMemory | None = None,
             root: int | None = None) -> Workload:
    """Betweenness centrality (Brandes): BFS pass + backward accumulation.

    The backward pass walks the BFS queue with a negative stride and
    accumulates integer dependency scores (``delta[u] += 1 + delta[v]`` for
    tree-successor edges — the sigma-ratio of real Brandes needs division,
    which the mini-ISA lacks; the access pattern, which is what the
    simulator measures, is identical).
    """
    root = _default_root(graph, root)
    memory = memory or MainMemory()
    offsets, neighbors = _alloc_graph(memory, graph)
    n = graph.num_nodes
    depth = alloc_vertex_array(memory, n, "depth")
    for v in range(n):
        memory.write_word(depth + (v << VERTEX_STRIDE_SHIFT), _UNVISITED)
    memory.write_word(depth + (root << VERTEX_STRIDE_SHIFT), 0)
    delta = alloc_vertex_array(memory, n, "delta", fill=0)
    queue = memory.alloc_zeros(n + 1, name="queue")
    memory.write_word(queue, root)

    b = ProgramBuilder("bc")
    # a0=offsets a1=neighbors a2=depth a3=queue a4=sentinel a7=delta
    b.li("a0", offsets)
    b.li("a1", neighbors)
    b.li("a2", depth)
    b.li("a3", queue)
    b.li("a4", _UNVISITED)
    b.li("a7", delta)
    b.li("t0", 0)                    # head
    b.li("t1", 1)                    # tail
    # ---- forward BFS with depth labels ----
    b.label("fwd_while")
    b.cmp_lt("t2", "t0", "t1")
    b.beqz("t2", "backward")
    emit_word_index_load(b, "t3", "a3", "t0", "t2")   # u = queue[head]
    b.addi("t0", "t0", 1)
    emit_vertex_load(b, "s1", "a2", "t3", "t2")       # du = depth[u]
    b.addi("s1", "s1", 1)                              # du + 1
    b.slli("t4", "t3", 3)
    b.add("t4", "a0", "t4")
    b.ld("t5", "t4", 0)
    b.ld("t6", "t4", 8)
    b.label("fwd_edges")
    b.cmp_ge("t7", "t5", "t6")
    b.bnez("t7", "fwd_while")
    emit_word_index_load(b, "t8", "a1", "t5", "t7")   # v
    b.addi("t5", "t5", 1)
    emit_vertex_load(b, "t9", "a2", "t8", "t10")      # depth[v]
    b.cmp_eq("t11", "t9", "a4")
    b.beqz("t11", "fwd_edges")
    emit_vertex_store(b, "s1", "a2", "t8", "t10")     # depth[v] = du+1
    emit_word_index_store(b, "t8", "a3", "t1", "t10")
    b.addi("t1", "t1", 1)
    b.jmp("fwd_edges")
    # ---- backward accumulation over the queue, reverse order ----
    b.label("backward")
    b.addi("t0", "t1", -1)           # i = tail-1
    b.label("bwd_loop")
    b.li("t2", 0)
    b.cmp_lt("t3", "t0", "t2")
    b.bnez("t3", "done")
    emit_word_index_load(b, "t3", "a3", "t0", "t2")   # u = queue[i] (stride -8)
    emit_vertex_load(b, "s1", "a2", "t3", "t2")       # depth[u]
    b.addi("s1", "s1", 1)
    emit_vertex_load(b, "s2", "a7", "t3", "t2")       # delta[u]
    b.slli("t4", "t3", 3)
    b.add("t4", "a0", "t4")
    b.ld("t5", "t4", 0)
    b.ld("t6", "t4", 8)
    b.label("bwd_edges")
    b.cmp_ge("t7", "t5", "t6")
    b.bnez("t7", "bwd_store")
    emit_word_index_load(b, "t8", "a1", "t5", "t7")   # v
    b.addi("t5", "t5", 1)
    emit_vertex_load(b, "t9", "a2", "t8", "t10")      # depth[v]  (indirect)
    b.cmp_eq("t11", "t9", "s1")                       # successor?
    b.beqz("t11", "bwd_edges")
    emit_vertex_load(b, "t9", "a7", "t8", "t10")      # delta[v]  (indirect)
    b.addi("t9", "t9", 1)
    b.add("s2", "s2", "t9")                           # delta[u] += 1+delta[v]
    b.jmp("bwd_edges")
    b.label("bwd_store")
    emit_vertex_store(b, "s2", "a7", "t3", "t2")
    b.addi("t0", "t0", -1)
    b.jmp("bwd_loop")
    b.label("done")
    b.halt()

    return Workload("BC", "gap", b.build(), memory, meta={
        "graph": graph, "depth": depth, "delta": delta, "queue": queue,
        "root": root, "sentinel": _UNVISITED,
        "vertex_shift": VERTEX_STRIDE_SHIFT,
    })
