"""Workload registry: name -> builder, at test/bench/default scales.

The paper's irregular suite is 33 workloads: 5 GAP kernels x 5 graph inputs
plus the 8 HPC-DB kernels.  The SPEC surrogate suite adds 23 more for
Fig 14.  ``build_workload(name, scale)`` reconstructs a fresh workload
(program + initialised memory) every call — workloads mutate their memory,
so they are never reused across runs.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads import gap, hpc, spec
from repro.workloads.base import Workload
from repro.workloads.graphs import GRAPH_INPUTS, graph_for_input

GAP_KERNELS = ("BC", "BFS", "CC", "PR", "SSSP")
GAP_WORKLOADS = tuple(f"{k}_{g}" for k in GAP_KERNELS for g in GRAPH_INPUTS)
HPC_WORKLOADS = ("Camel", "G500", "HJ2", "HJ8", "Kangr", "NAS-CG",
                 "NAS-IS", "Randacc")
IRREGULAR_WORKLOADS = GAP_WORKLOADS + HPC_WORKLOADS
SPEC_WORKLOADS = spec.SPEC_NAMES

_GAP_BUILDERS: dict[str, Callable] = {
    "BC": gap.build_bc,
    "BFS": gap.build_bfs,
    "CC": gap.build_cc,
    "PR": gap.build_pr,
    "SSSP": gap.build_sssp,
}

# HPC kernel size knobs per scale: (elements/keys/probes, table scale divisor)
_HPC_SCALE = {
    "tiny": {"elements": 512, "nodes": 256, "keys": 512, "updates": 512,
             "buckets": 256, "probes": 512, "table_words": 1 << 12,
             "bins": 1 << 10, "table_nodes": 256, "degree": 6},
    "bench": {"elements": 16384, "nodes": 8192, "keys": 16384,
              "updates": 16384, "buckets": 16384, "probes": 16384,
              "table_words": 1 << 18, "bins": 1 << 16,
              "table_nodes": 8192, "degree": 10},
    "default": {"elements": 65536, "nodes": 16384, "keys": 65536,
                "updates": 65536, "buckets": 65536, "probes": 65536,
                "table_words": 1 << 20, "bins": 1 << 17,
                "table_nodes": 16384, "degree": 12},
}


def _build_hpc(name: str, scale: str) -> Workload:
    s = _HPC_SCALE[scale]
    if name == "Camel":
        return hpc.build_camel(elements=s["elements"],
                               table_nodes=s["table_nodes"])
    if name == "G500":
        return hpc.build_graph500(nodes=s["nodes"], degree=s["degree"])
    if name == "HJ2":
        return hpc.build_hj2(buckets=s["buckets"], probes=s["probes"])
    if name == "HJ8":
        return hpc.build_hj8(buckets=s["buckets"], probes=s["probes"])
    if name == "Kangr":
        return hpc.build_kangaroo(keys=s["keys"], bins=s["bins"])
    if name == "NAS-CG":
        return hpc.build_nas_cg(nodes=s["nodes"], degree=s["degree"])
    if name == "NAS-IS":
        return hpc.build_nas_is(keys=s["keys"], bins=s["bins"])
    if name == "Randacc":
        return hpc.build_randacc(updates=s["updates"],
                                 table_words=s["table_words"])
    raise ValueError(f"unknown HPC workload: {name!r}")


def build_workload(name: str, scale: str = "default") -> Workload:
    """Construct a fresh workload by registry name.

    GAP names are ``KERNEL_INPUT`` (e.g. ``PR_KR``); HPC and SPEC names are
    bare.  ``scale`` is 'tiny' (unit tests), 'bench' (benchmark harness) or
    'default' (paper-shaped runs).
    """
    if scale not in _HPC_SCALE:
        raise ValueError(f"unknown scale: {scale!r}")
    if "_" in name:
        kernel, _, input_name = name.partition("_")
        if kernel not in _GAP_BUILDERS:
            raise ValueError(f"unknown GAP kernel: {kernel!r}")
        weighted = kernel == "SSSP"
        graph = graph_for_input(input_name, scale, weighted=weighted)
        workload = _GAP_BUILDERS[kernel](graph)
        workload.name = name
        return workload
    if name in HPC_WORKLOADS:
        return _build_hpc(name, scale)
    if name in SPEC_WORKLOADS:
        repeats = {"tiny": 1, "bench": 3, "default": 4}[scale]
        return spec.build_spec(name, repeats=repeats)
    raise ValueError(f"unknown workload: {name!r}")


def workload_names(suite: str = "irregular") -> tuple[str, ...]:
    """Names in a suite: 'gap', 'hpc', 'irregular' (both) or 'spec'."""
    suites = {
        "gap": GAP_WORKLOADS,
        "hpc": HPC_WORKLOADS,
        "irregular": IRREGULAR_WORKLOADS,
        "spec": SPEC_WORKLOADS,
    }
    try:
        return suites[suite]
    except KeyError:
        raise ValueError(f"unknown suite: {suite!r}") from None
