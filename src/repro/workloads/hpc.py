"""HPC / database workloads: Camel, Graph500 seq-CSR, HashJoin, NAS-CG,
NAS-IS, Kangaroo and HPCC randacc (Section V, "HPC-DB" group).

Each kernel reproduces the indirection structure that determines how the
techniques behave on it (paper Section VI-A):

* Camel — two-level stride-indirect gather (IMP covers only one level);
* Graph500 — level-synchronous seq-CSR BFS (long striding scans);
* HJ2/HJ8 — hash-join probe with bucket size 2/8: the hashed index defeats
  IMP, and the data-dependent bucket-scan breaks make HJ8 diverge so badly
  that SVR's lane masking leaves no speedup (Section VI-D);
* NAS-CG — fixed-point CSR SpMV (contiguous inner loops, footnote 4 case);
* NAS-IS — counting-sort histogram with *linear* indexing (IMP works);
* Kangaroo — NAS-IS derivative with *hashed* indexing (IMP fails);
* randacc — HPCC RandomAccess: masked-index XOR updates over an 8 MiB
  table (IMP fails; heavy TLB pressure).
"""

from __future__ import annotations

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.memory.main_memory import MainMemory
from repro.workloads.base import (
    VERTEX_STRIDE_SHIFT,
    Workload,
    alloc_vertex_array,
    emit_vertex_load,
    emit_word_index_load,
    emit_word_index_store,
)
from repro.workloads.graphs import CSRGraph, uniform_random_graph

_UNVISITED = (1 << 64) - 1
_HASH_MULT = 2654435761          # Knuth multiplicative hash


def build_camel(memory: MainMemory | None = None, elements: int = 65536,
                table_nodes: int = 16384, repeats: int = 8,
                seed: int = 21) -> Workload:
    """Camel [4]: two-level indirect gather ``sum += C[B[A[i]]]``."""
    memory = memory or MainMemory()
    rng = np.random.default_rng(seed)
    a_vals = rng.integers(0, table_nodes, size=elements, dtype=np.int64)
    a = memory.alloc_array(a_vals, name="A")
    b_vals = rng.integers(0, table_nodes, size=table_nodes, dtype=np.int64)
    b_arr = alloc_vertex_array(memory, table_nodes, "B")
    for i, val in enumerate(b_vals):
        memory.write_word(b_arr + (i << VERTEX_STRIDE_SHIFT), int(val))
    c_arr = alloc_vertex_array(memory, table_nodes, "C")
    for i in range(table_nodes):
        memory.write_word(c_arr + (i << VERTEX_STRIDE_SHIFT),
                          int(rng.integers(1, 1000)))

    bld = ProgramBuilder("camel")
    # a0=A a1=B a2=C a3=elements a4=repeats
    bld.li("a0", a)
    bld.li("a1", b_arr)
    bld.li("a2", c_arr)
    bld.li("a3", elements)
    bld.li("a4", repeats)
    bld.li("t5", 0)                  # sum
    bld.li("s0", 0)
    bld.label("repeat")
    bld.li("t0", 0)
    bld.label("loop")
    emit_word_index_load(bld, "t2", "a0", "t0", "t1")   # x = A[i]  (striding)
    emit_vertex_load(bld, "t3", "a1", "t2", "t1")       # y = B[x]  (indirect)
    emit_vertex_load(bld, "t4", "a2", "t3", "t1")       # z = C[y]  (indirect^2)
    bld.add("t5", "t5", "t4")
    bld.addi("t0", "t0", 1)
    bld.cmp_lt("t6", "t0", "a3")
    bld.bnez("t6", "loop")
    bld.addi("s0", "s0", 1)
    bld.cmp_lt("t6", "s0", "a4")
    bld.bnez("t6", "repeat")
    emit_word_index_store(bld, "t5", "a0", "x0", "t1")  # A[0] = sum (result)
    bld.halt()

    return Workload("Camel", "hpc", bld.build(), memory, meta={
        "a": a, "b": b_arr, "c": c_arr, "elements": elements,
        "a_vals": a_vals, "b_vals": b_vals, "repeats": repeats,
    })


def build_graph500(graph: CSRGraph | None = None,
                   memory: MainMemory | None = None, root: int = 0,
                   nodes: int = 16384, degree: int = 12) -> Workload:
    """Graph500 seq-CSR: level-synchronous BFS sweeping the level array."""
    graph = graph or uniform_random_graph(nodes, degree, seed=6)
    memory = memory or MainMemory()
    offsets = memory.alloc_array(graph.offsets, name="offsets")
    neighbors = memory.alloc_array(graph.neighbors, name="neighbors")
    n = graph.num_nodes
    level = alloc_vertex_array(memory, n, "level")
    for v in range(n):
        memory.write_word(level + (v << VERTEX_STRIDE_SHIFT), _UNVISITED)
    memory.write_word(level + (root << VERTEX_STRIDE_SHIFT), 0)

    bld = ProgramBuilder("graph500")
    # a0=offsets a1=neighbors a2=level a3=n a4=sentinel
    bld.li("a0", offsets)
    bld.li("a1", neighbors)
    bld.li("a2", level)
    bld.li("a3", n)
    bld.li("a4", _UNVISITED)
    bld.li("s0", 0)                  # current level
    bld.label("level_loop")
    bld.li("s1", 0)                  # changed flag
    bld.li("t0", 0)                  # u
    bld.label("scan")
    emit_vertex_load(bld, "t2", "a2", "t0", "t1")       # level[u] (striding scan)
    bld.cmp_eq("t3", "t2", "s0")
    bld.beqz("t3", "next_u")
    bld.slli("t4", "t0", 3)
    bld.add("t4", "a0", "t4")
    bld.ld("t5", "t4", 0)
    bld.ld("t6", "t4", 8)
    bld.addi("s2", "s0", 1)          # next level value
    bld.label("edges")
    bld.cmp_ge("t7", "t5", "t6")
    bld.bnez("t7", "next_u")
    emit_word_index_load(bld, "t8", "a1", "t5", "t7")   # v
    bld.addi("t5", "t5", 1)
    emit_vertex_load(bld, "t9", "a2", "t8", "t10")      # level[v] (indirect)
    bld.cmp_eq("t11", "t9", "a4")
    bld.beqz("t11", "edges")
    bld.slli("t10", "t8", VERTEX_STRIDE_SHIFT)
    bld.add("t10", "a2", "t10")
    bld.st("s2", "t10", 0)                              # level[v] = cur+1
    bld.li("s1", 1)
    bld.jmp("edges")
    bld.label("next_u")
    bld.addi("t0", "t0", 1)
    bld.cmp_lt("t3", "t0", "a3")
    bld.bnez("t3", "scan")
    bld.addi("s0", "s0", 1)
    bld.bnez("s1", "level_loop")
    bld.halt()

    return Workload("G500", "hpc", bld.build(), memory, meta={
        "graph": graph, "level": level, "root": root,
        "sentinel": _UNVISITED, "vertex_shift": VERTEX_STRIDE_SHIFT,
    })


def _hashjoin_builder(bucket_size: int, memory: MainMemory | None = None,
                      buckets: int = 65536, probes: int = 65536,
                      seed: int = 31) -> Workload:
    """Bucketed hash-join probe phase [15]; the build phase runs in Python.

    Buckets are contiguous arrays of *bucket_size* (key, payload) slots,
    scanned with data-dependent breaks.  Two paper-relevant consequences:
    the hashed bucket index defeats IMP, and for HJ8 the 8-slot scan is
    itself a detectable striding loop whose divergent breaks and overfetch
    past bucket boundaries leave SVR with little to gain (Section VI-D:
    "HJ8 shows no speedup"), while HJ2's 2-slot buckets never establish an
    inner stride and keep the probe-level runahead productive.
    """
    memory = memory or MainMemory()
    rng = np.random.default_rng(seed)
    mask = buckets - 1
    if buckets & mask:
        raise ValueError("buckets must be a power of two")
    slot_words = 2
    bucket_words = bucket_size * slot_words
    table_vals = np.zeros(buckets * bucket_words, dtype=np.int64)
    fill = np.zeros(buckets, dtype=np.int64)
    build_keys = rng.integers(1, 1 << 40, size=buckets * bucket_size // 2,
                              dtype=np.int64)
    kept = []
    for key in build_keys:
        h = int((int(key) * _HASH_MULT) & mask)
        if fill[h] < bucket_size:
            slot = h * bucket_words + fill[h] * slot_words
            table_vals[slot] = key
            table_vals[slot + 1] = int(key) % 997 + 1
            fill[h] += 1
            kept.append(int(key))
    table = memory.alloc_array(table_vals, name="table")
    hit = rng.choice(np.array(kept, dtype=np.int64), size=probes // 2)
    miss = rng.integers(1 << 41, 1 << 42, size=probes - probes // 2,
                        dtype=np.int64)
    probe_vals = rng.permutation(np.concatenate([hit, miss])).astype(np.int64)
    probe = memory.alloc_array(probe_vals, name="probe")
    result = memory.alloc_zeros(1, name="result")

    bld = ProgramBuilder(f"hj{bucket_size}")
    # a0=probe a1=table a2=mask a3=probes a4=result a5=bucket_size
    bld.li("a0", probe)
    bld.li("a1", table)
    bld.li("a2", mask)
    bld.li("a3", len(probe_vals))
    bld.li("a4", result)
    bld.li("a5", bucket_size)
    bld.li("s0", 0)                  # match-payload accumulator
    bld.li("t0", 0)                  # i
    bld.label("probe_loop")
    emit_word_index_load(bld, "t2", "a0", "t0", "t1")   # key (striding)
    bld.muli("t3", "t2", _HASH_MULT)                    # hashed: IMP-proof
    bld.and_("t3", "t3", "a2")
    bld.muli("t3", "t3", bucket_words * 8)
    bld.add("t3", "a1", "t3")                           # bucket base (tainted)
    bld.li("t4", 0)                  # j
    bld.label("bucket_scan")
    bld.ld("t5", "t3", 0)                               # slot key (dependent)
    bld.cmp_eq("t6", "t5", "t2")
    bld.bnez("t6", "match")                             # divergent break
    bld.beqz("t5", "next_probe")                        # empty slot: stop
    bld.addi("t3", "t3", slot_words * 8)
    bld.addi("t4", "t4", 1)
    bld.cmp_lt("t6", "t4", "a5")
    bld.bnez("t6", "bucket_scan")
    bld.jmp("next_probe")
    bld.label("match")
    bld.ld("t7", "t3", 8)                               # payload
    bld.add("s0", "s0", "t7")
    bld.label("next_probe")
    bld.addi("t0", "t0", 1)
    bld.cmp_lt("t6", "t0", "a3")
    bld.bnez("t6", "probe_loop")
    bld.st("s0", "a4", 0)
    bld.halt()

    return Workload(f"HJ{bucket_size}", "hpc", bld.build(), memory, meta={
        "probe_vals": probe_vals, "table_vals": table_vals,
        "bucket_size": bucket_size, "buckets": buckets,
        "result": result, "hash_mult": _HASH_MULT, "mask": mask,
        "slot_words": slot_words,
    })


def build_hj2(memory: MainMemory | None = None, **kwargs) -> Workload:
    """Hash join with bucket size 2 (short chains — SVR-friendly)."""
    return _hashjoin_builder(2, memory, **kwargs)


def build_hj8(memory: MainMemory | None = None, **kwargs) -> Workload:
    """Hash join with bucket size 8 (divergent scans — SVR gets masked)."""
    return _hashjoin_builder(8, memory, **kwargs)


def build_nas_cg(memory: MainMemory | None = None, nodes: int = 16384,
                 degree: int = 12, repeats: int = 8, seed: int = 41) -> Workload:
    """NAS-CG inner kernel: fixed-point CSR sparse matrix-vector product."""
    memory = memory or MainMemory()
    matrix = uniform_random_graph(nodes, degree, seed=seed, weighted=True)
    offsets = memory.alloc_array(matrix.offsets, name="offsets")
    cols = memory.alloc_array(matrix.neighbors, name="cols")
    vals = memory.alloc_array(matrix.weights, name="vals")
    n = matrix.num_nodes
    rng = np.random.default_rng(seed + 1)
    x = alloc_vertex_array(memory, n, "x")
    for v in range(n):
        memory.write_word(x + (v << VERTEX_STRIDE_SHIFT),
                          int(rng.integers(1, 1 << 16)))
    y = memory.alloc_zeros(n, name="y")

    bld = ProgramBuilder("nas_cg")
    # a0=offsets a1=cols a2=vals a3=x a4=y a5=n a6=repeats
    bld.li("a0", offsets)
    bld.li("a1", cols)
    bld.li("a2", vals)
    bld.li("a3", x)
    bld.li("a4", y)
    bld.li("a5", n)
    bld.li("a6", repeats)
    bld.li("s0", 0)
    bld.label("repeat")
    bld.li("t0", 0)                  # row
    bld.label("rows")
    bld.slli("t1", "t0", 3)
    bld.add("t2", "a0", "t1")
    bld.ld("t3", "t2", 0)            # idx   (striding)
    bld.ld("t4", "t2", 8)            # end   (striding)
    bld.li("t5", 0)                  # sum
    bld.cmp_ge("t6", "t3", "t4")
    bld.bnez("t6", "row_done")
    bld.label("inner")
    emit_word_index_load(bld, "t8", "a1", "t3", "t7")   # col = cols[idx]
    emit_word_index_load(bld, "t9", "a2", "t3", "t7")   # val = vals[idx]
    emit_vertex_load(bld, "t10", "a3", "t8", "t7")      # x[col]  (indirect)
    bld.fmul("t10", "t9", "t10")
    bld.fadd("t5", "t5", "t10")
    bld.addi("t3", "t3", 1)
    bld.cmp_lt("t6", "t3", "t4")
    bld.bnez("t6", "inner")
    bld.label("row_done")
    emit_word_index_store(bld, "t5", "a4", "t0", "t1")  # y[row] = sum
    bld.addi("t0", "t0", 1)
    bld.cmp_lt("t6", "t0", "a5")
    bld.bnez("t6", "rows")
    bld.addi("s0", "s0", 1)
    bld.cmp_lt("t6", "s0", "a6")
    bld.bnez("t6", "repeat")
    bld.halt()

    return Workload("NAS-CG", "hpc", bld.build(), memory, meta={
        "matrix": matrix, "y": y, "x": x,
        "vertex_shift": VERTEX_STRIDE_SHIFT,
    })


def _histogram_kernel(name: str, hashed: bool, memory: MainMemory | None,
                      keys: int, bins: int, repeats: int,
                      seed: int) -> Workload:
    """Shared shape of NAS-IS (linear index) and Kangaroo (hashed index)."""
    memory = memory or MainMemory()
    rng = np.random.default_rng(seed)
    mask = bins - 1
    if bins & mask:
        raise ValueError("bins must be a power of two")
    key_vals = rng.integers(0, 1 << 40, size=keys, dtype=np.int64)
    if not hashed:
        key_vals &= mask                  # keys are already bin indices
    key_arr = memory.alloc_array(key_vals, name="keys")
    hist = memory.alloc_zeros(bins, name="hist")

    bld = ProgramBuilder(name.lower())
    # a0=keys a1=hist a2=nkeys a3=mask a4=repeats
    bld.li("a0", key_arr)
    bld.li("a1", hist)
    bld.li("a2", keys)
    if hashed:
        bld.li("a3", mask)            # only the hashed variant masks keys
    bld.li("a4", repeats)
    bld.li("s0", 0)
    bld.label("repeat")
    bld.li("t0", 0)
    bld.label("loop")
    emit_word_index_load(bld, "t2", "a0", "t0", "t1")   # k = keys[i] (striding)
    if hashed:
        bld.muli("t2", "t2", _HASH_MULT)                # hashed: IMP-proof
        bld.and_("t2", "t2", "a3")
    bld.slli("t3", "t2", 3)
    bld.add("t3", "a1", "t3")
    bld.ld("t4", "t3", 0)                               # hist[k]   (indirect)
    bld.addi("t4", "t4", 1)
    bld.st("t4", "t3", 0)                               # hist[k]++
    bld.addi("t0", "t0", 1)
    bld.cmp_lt("t5", "t0", "a2")
    bld.bnez("t5", "loop")
    bld.addi("s0", "s0", 1)
    bld.cmp_lt("t5", "s0", "a4")
    bld.bnez("t5", "repeat")
    bld.halt()

    return Workload(name, "hpc", bld.build(), memory, meta={
        "keys": key_vals, "hist": hist, "bins": bins, "hashed": hashed,
        "hash_mult": _HASH_MULT, "mask": mask, "repeats": repeats,
    })


def build_nas_is(memory: MainMemory | None = None, keys: int = 65536,
                 bins: int = 131072, repeats: int = 8,
                 seed: int = 51) -> Workload:
    """NAS Integer Sort counting phase: ``hist[keys[i]]++`` (IMP-friendly)."""
    return _histogram_kernel("NAS-IS", False, memory, keys, bins, repeats, seed)


def build_kangaroo(memory: MainMemory | None = None, keys: int = 65536,
                   bins: int = 131072, repeats: int = 8,
                   seed: int = 52) -> Workload:
    """Kangaroo [4]: NAS-IS derivative with a hashed histogram index."""
    return _histogram_kernel("Kangr", True, memory, keys, bins, repeats, seed)


def build_randacc(memory: MainMemory | None = None, updates: int = 65536,
                  table_words: int = 1 << 20, repeats: int = 8,
                  seed: int = 61) -> Workload:
    """HPCC RandomAccess: ``T[r & mask] ^= r`` over an 8 MiB table."""
    memory = memory or MainMemory()
    rng = np.random.default_rng(seed)
    mask = table_words - 1
    if table_words & mask:
        raise ValueError("table_words must be a power of two")
    ran_vals = rng.integers(0, 1 << 63, size=updates, dtype=np.int64)
    ran = memory.alloc_array(ran_vals, name="ran")
    table = memory.alloc_zeros(table_words, name="T")

    bld = ProgramBuilder("randacc")
    # a0=ran a1=T a2=updates a3=mask a4=repeats
    bld.li("a0", ran)
    bld.li("a1", table)
    bld.li("a2", updates)
    bld.li("a3", mask)
    bld.li("a4", repeats)
    bld.li("s0", 0)
    bld.label("repeat")
    bld.li("t0", 0)
    bld.label("loop")
    emit_word_index_load(bld, "t2", "a0", "t0", "t1")   # r = ran[i] (striding)
    bld.and_("t3", "t2", "a3")                          # masked: IMP-proof
    bld.slli("t3", "t3", 3)
    bld.add("t3", "a1", "t3")
    bld.ld("t4", "t3", 0)                               # T[idx]   (indirect)
    bld.xor("t4", "t4", "t2")
    bld.st("t4", "t3", 0)                               # T[idx] ^= r
    bld.addi("t0", "t0", 1)
    bld.cmp_lt("t5", "t0", "a2")
    bld.bnez("t5", "loop")
    bld.addi("s0", "s0", 1)
    bld.cmp_lt("t5", "s0", "a4")
    bld.bnez("t5", "repeat")
    bld.halt()

    return Workload("Randacc", "hpc", bld.build(), memory, meta={
        "ran": ran_vals, "table": table, "table_words": table_words,
        "mask": mask, "repeats": repeats,
    })
