"""Workloads: GAP graph kernels, HPC/DB kernels and SPEC surrogates.

All kernels are written in the mini-ISA via
:class:`~repro.isa.program.ProgramBuilder` and keep the loop/indirection
structure of the originals (see DESIGN.md for the substitution notes).
"""

from repro.workloads.graphs import (
    CSRGraph,
    kronecker_graph,
    power_law_graph,
    uniform_random_graph,
    graph_for_input,
    GRAPH_INPUTS,
)
from repro.workloads.base import Workload
from repro.workloads.validation import ValidationError, validate
from repro.workloads.registry import (
    GAP_WORKLOADS,
    HPC_WORKLOADS,
    IRREGULAR_WORKLOADS,
    SPEC_WORKLOADS,
    build_workload,
    workload_names,
)

__all__ = [
    "CSRGraph",
    "GAP_WORKLOADS",
    "GRAPH_INPUTS",
    "HPC_WORKLOADS",
    "IRREGULAR_WORKLOADS",
    "SPEC_WORKLOADS",
    "ValidationError",
    "Workload",
    "validate",
    "build_workload",
    "graph_for_input",
    "kronecker_graph",
    "power_law_graph",
    "uniform_random_graph",
    "workload_names",
]
