"""Graph inputs: CSR representation and the paper's five input classes.

The paper uses two synthetic inputs (Kronecker, Uniform Random — both
generated, so we implement the real generator algorithms at reduced scale)
and three real-world graphs (LiveJournal, Twitter, Orkut).  The real graphs
are multi-GB downloads we cannot use offline; per the substitution rule we
generate *power-law surrogates* whose degree skew and density are ordered
like the originals (TW most skewed, ORK densest, LJN in between).  What the
evaluation actually exercises — irregular indirect accesses over a
larger-than-LLC vertex array, with degree distributions that set inner-loop
trip counts — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CSRGraph:
    """Compressed-sparse-row graph (Fig 2 of the paper)."""

    offsets: np.ndarray     # int64, length n+1
    neighbors: np.ndarray   # int64, length m
    weights: np.ndarray | None = None
    name: str = "graph"

    @property
    def num_nodes(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.neighbors)

    def degree(self, u: int) -> int:
        return int(self.offsets[u + 1] - self.offsets[u])

    def out_neighbors(self, u: int) -> np.ndarray:
        return self.neighbors[self.offsets[u]:self.offsets[u + 1]]

    @property
    def average_degree(self) -> float:
        return self.num_edges / max(1, self.num_nodes)

    def degree_skew(self) -> float:
        """max degree / mean degree — the metric our surrogates order by."""
        degrees = np.diff(self.offsets)
        mean = degrees.mean() if len(degrees) else 0.0
        return float(degrees.max() / mean) if mean else 0.0


def _csr_from_edges(n: int, src: np.ndarray, dst: np.ndarray,
                    name: str, weighted: bool = False,
                    seed: int = 7) -> CSRGraph:
    """Build CSR (sorted by source) from an edge list, dropping self-loops."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(offsets, src + 1, 1)
    offsets = np.cumsum(offsets)
    weights = None
    if weighted:
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 64, size=len(dst), dtype=np.int64)
    return CSRGraph(offsets.astype(np.int64), dst.astype(np.int64),
                    weights, name)


def uniform_random_graph(n: int = 16384, degree: int = 12, seed: int = 1,
                         weighted: bool = False) -> CSRGraph:
    """Uniform Random (UR): every edge endpoint drawn uniformly."""
    rng = np.random.default_rng(seed)
    m = n * degree
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return _csr_from_edges(n, src, dst, f"UR-{n}", weighted, seed)


def kronecker_graph(scale: int = 14, edge_factor: int = 12, seed: int = 2,
                    weighted: bool = False) -> CSRGraph:
    """Kronecker (KR): Graph500 R-MAT generator (a=0.57, b=c=0.19)."""
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    a, b, c = 0.57, 0.19, 0.19
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant probabilities: a | b / c | d.
        src_bit = (r >= a + b).astype(np.int64)
        r2 = rng.random(m)
        dst_bit = np.where(src_bit == 0, (r2 >= a / (a + b)).astype(np.int64),
                           (r2 >= c / (1 - a - b)).astype(np.int64))
        src |= src_bit << bit
        dst |= dst_bit << bit
    # Permute vertex ids so degree does not correlate with id.
    perm = rng.permutation(n).astype(np.int64)
    return _csr_from_edges(n, perm[src], perm[dst], f"KR-{scale}",
                           weighted, seed)


def power_law_graph(n: int, degree: int, alpha: float, seed: int,
                    name: str, weighted: bool = False,
                    max_degree_frac: float = 0.25) -> CSRGraph:
    """Power-law surrogate: Zipf out-degrees, uniform targets.

    ``max_degree_frac`` caps hub degrees at a fraction of *n*; together
    with *alpha* it controls the degree skew (max/mean) the surrogates are
    ordered by.
    """
    rng = np.random.default_rng(seed)
    # The cap must leave headroom above the target mean, or tiny graphs
    # saturate every vertex at the cap.
    max_degree = max(2 * degree, int(n * max_degree_frac))
    degrees = np.clip(rng.zipf(alpha, size=n), 1, max_degree)
    factor = n * degree / degrees.sum()
    degrees = np.clip(np.maximum(1, (degrees * factor).astype(np.int64)),
                      1, max_degree)
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    dst = rng.integers(0, n, size=len(src), dtype=np.int64)
    return _csr_from_edges(n, src, dst, name, weighted, seed)


# The five paper inputs.  Parameters give LJN/TW/ORK the published ordering:
# Orkut is the densest (avg degree 76 in reality), Twitter the most skewed,
# LiveJournal in between — scaled to simulator-friendly sizes.
GRAPH_INPUTS = ("KR", "UR", "LJN", "TW", "ORK")


def graph_for_input(input_name: str, scale: str = "default",
                    weighted: bool = False) -> CSRGraph:
    """Build one of the paper's five inputs at 'tiny'/'bench'/'default' scale."""
    sizes = {"tiny": (256, 6, 8), "bench": (8192, 10, 13),
             "default": (16384, 12, 14)}
    try:
        n, degree, kron_scale = sizes[scale]
    except KeyError:
        raise ValueError(f"unknown scale: {scale!r}") from None
    name = input_name.upper()
    if name == "KR":
        return kronecker_graph(kron_scale, degree, seed=2, weighted=weighted)
    if name == "UR":
        return uniform_random_graph(n, degree, seed=1, weighted=weighted)
    if name == "LJN":
        return power_law_graph(n, degree, alpha=2.3, seed=3,
                               name=f"LJN-{n}", weighted=weighted,
                               max_degree_frac=1 / 32)
    if name == "TW":
        return power_law_graph(n, int(degree * 1.5), alpha=1.9, seed=4,
                               name=f"TW-{n}", weighted=weighted,
                               max_degree_frac=1 / 8)
    if name == "ORK":
        return power_law_graph(n, degree * 2, alpha=2.6, seed=5,
                               name=f"ORK-{n}", weighted=weighted,
                               max_degree_frac=1 / 64)
    raise ValueError(f"unknown graph input: {input_name!r}")
