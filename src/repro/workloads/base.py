"""Workload container and shared kernel-builder helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.isa.program import Program, ProgramBuilder
from repro.memory.main_memory import MainMemory

# Vertex payloads are one cache line wide (64 B = 8 words).  Real GAP vertex
# data is narrower, but the paper's graphs are orders of magnitude larger
# than ours; padding vertex records to a line keeps the property that
# matters — each indirect access touches its own line in a larger-than-LLC
# array — at our reduced vertex counts.
VERTEX_STRIDE_SHIFT = 6      # 64 bytes per vertex record
WORD_SHIFT = 3               # 8 bytes per word


@dataclass
class Workload:
    """An assembled kernel plus its initialised memory image."""

    name: str
    category: str            # 'gap' | 'hpc' | 'spec'
    program: Program
    memory: MainMemory
    meta: dict[str, Any] = field(default_factory=dict)

    def fresh_copy(self) -> "Workload":
        """Workloads mutate their memory; builders are re-invoked instead."""
        raise NotImplementedError(
            "rebuild workloads through repro.workloads.build_workload")


def emit_word_index_load(b: ProgramBuilder, dst: str, base: str, index: str,
                         tmp: str) -> None:
    """dst <- mem[base + index*8]."""
    b.slli(tmp, index, WORD_SHIFT)
    b.add(tmp, base, tmp)
    b.ld(dst, tmp, 0)


def emit_word_index_store(b: ProgramBuilder, src: str, base: str, index: str,
                          tmp: str) -> None:
    """mem[base + index*8] <- src."""
    b.slli(tmp, index, WORD_SHIFT)
    b.add(tmp, base, tmp)
    b.st(src, tmp, 0)


def emit_vertex_load(b: ProgramBuilder, dst: str, base: str, vertex: str,
                     tmp: str) -> None:
    """dst <- vertex_data[vertex] (64-byte records)."""
    b.slli(tmp, vertex, VERTEX_STRIDE_SHIFT)
    b.add(tmp, base, tmp)
    b.ld(dst, tmp, 0)


def emit_vertex_store(b: ProgramBuilder, src: str, base: str, vertex: str,
                      tmp: str) -> None:
    """vertex_data[vertex] <- src."""
    b.slli(tmp, vertex, VERTEX_STRIDE_SHIFT)
    b.add(tmp, base, tmp)
    b.st(src, tmp, 0)


def alloc_vertex_array(memory: MainMemory, num_nodes: int, name: str,
                       fill: int | None = None) -> int:
    """Allocate a 64-byte-per-vertex array; optionally fill word 0 of each."""
    base = memory.alloc(num_nodes << VERTEX_STRIDE_SHIFT, name=name)
    if fill is not None:
        for v in range(num_nodes):
            memory.write_word(base + (v << VERTEX_STRIDE_SHIFT), fill)
    return base
