"""Reference validators for the workload kernels.

Each function re-computes a kernel's result in plain Python/numpy from the
workload's metadata and compares it against the simulated memory image.
They are used by the test-suite and available to users running custom
graphs/inputs through the builders — run the workload to completion (the
functional core is fastest) and then call the matching validator.

All validators raise :class:`ValidationError` with a description on
mismatch and return quietly on success.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import VERTEX_STRIDE_SHIFT, Workload

MASK64 = (1 << 64) - 1


class ValidationError(AssertionError):
    """A kernel's memory image does not match the reference computation."""


def _vertex_words(workload: Workload, key: str, n: int) -> list[int]:
    shift = workload.meta.get("vertex_shift", VERTEX_STRIDE_SHIFT)
    base = workload.meta[key]
    memory = workload.memory
    return [memory.read_word(base + (v << shift)) for v in range(n)]


def _fail(kernel: str, detail: str) -> None:
    raise ValidationError(f"{kernel}: {detail}")


def validate_pr(workload: Workload) -> None:
    """scores[u] == sum(contrib[v] for v in neigh(u))."""
    graph = workload.meta["graph"]
    n = graph.num_nodes
    contrib = _vertex_words(workload, "contrib", n)
    scores = _vertex_words(workload, "scores", n)
    for u in range(n):
        expected = sum(contrib[int(v)] for v in graph.out_neighbors(u)) & MASK64
        if scores[u] != expected:
            _fail("PR", f"score[{u}] = {scores[u]}, expected {expected}")


def validate_bfs(workload: Workload) -> None:
    """parent[] marks exactly the reachable set with valid tree edges."""
    graph = workload.meta["graph"]
    root = workload.meta["root"]
    sentinel = workload.meta["sentinel"]
    n = graph.num_nodes
    parent = _vertex_words(workload, "parent", n)
    reachable = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.out_neighbors(u):
                v = int(v)
                if v not in reachable:
                    reachable.add(v)
                    nxt.append(v)
        frontier = nxt
    visited = {v for v in range(n) if parent[v] != sentinel}
    if visited != reachable:
        _fail("BFS", f"visited set differs ({len(visited)} vs "
                     f"{len(reachable)} vertices)")
    for v in visited:
        if v == root:
            if parent[v] != root:
                _fail("BFS", "root is not its own parent")
            continue
        if v not in graph.out_neighbors(int(parent[v])):
            _fail("BFS", f"parent edge {parent[v]}->{v} not in graph")


def validate_cc(workload: Workload) -> None:
    """Labels match the same number of sequential propagation passes."""
    graph = workload.meta["graph"]
    passes = workload.meta["passes"]
    n = graph.num_nodes
    comp = list(range(n))
    for _ in range(passes):
        for u in range(n):
            c = comp[u]
            for v in graph.out_neighbors(u):
                c = min(c, comp[int(v)])
            comp[u] = c
    got = _vertex_words(workload, "comp", n)
    if got != comp:
        bad = next(i for i in range(n) if got[i] != comp[i])
        _fail("CC", f"comp[{bad}] = {got[bad]}, expected {comp[bad]}")


def validate_sssp(workload: Workload) -> None:
    """Distances equal Dijkstra's on the weighted graph."""
    import heapq

    graph = workload.meta["graph"]
    root = workload.meta["root"]
    inf = workload.meta["inf"]
    n = graph.num_nodes
    dist = {root: 0}
    heap = [(0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        start, end = graph.offsets[u], graph.offsets[u + 1]
        for idx in range(start, end):
            v = int(graph.neighbors[idx])
            nd = d + int(graph.weights[idx])
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    got = _vertex_words(workload, "dist", n)
    for v in range(n):
        expected = dist.get(v, inf)
        if got[v] != expected:
            _fail("SSSP", f"dist[{v}] = {got[v]}, expected {expected}")


def validate_bc(workload: Workload) -> None:
    """Depths and integer dependency deltas match the kernel's arithmetic."""
    graph = workload.meta["graph"]
    root = workload.meta["root"]
    sentinel = workload.meta["sentinel"]
    n = graph.num_nodes
    depth = [sentinel] * n
    depth[root] = 0
    queue = [root]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for v in graph.out_neighbors(u):
            v = int(v)
            if depth[v] == sentinel:
                depth[v] = depth[u] + 1
                queue.append(v)
    delta = [0] * n
    for u in reversed(queue):
        acc = delta[u]
        for v in graph.out_neighbors(u):
            v = int(v)
            if depth[v] == depth[u] + 1:
                acc += 1 + delta[v]
        delta[u] = acc & MASK64
    if _vertex_words(workload, "depth", n) != depth:
        _fail("BC", "depth array differs from reference BFS")
    if _vertex_words(workload, "delta", n) != delta:
        _fail("BC", "delta array differs from reference accumulation")


def validate_histogram(workload: Workload) -> None:
    """NAS-IS / Kangaroo bin counts match the (hashed) key stream."""
    meta = workload.meta
    expected = np.zeros(meta["bins"], dtype=np.int64)
    for _ in range(meta["repeats"]):
        for key in meta["keys"]:
            idx = int(key)
            if meta["hashed"]:
                idx = (idx * meta["hash_mult"]) & meta["mask"]
            expected[idx] += 1
    got = workload.memory.read_array(meta["hist"], meta["bins"])
    if not np.array_equal(got, expected):
        _fail(workload.name, "histogram differs from reference")


def validate_randacc(workload: Workload) -> None:
    """Table XOR state matches the update stream."""
    meta = workload.meta
    expected = np.zeros(meta["table_words"], dtype=np.uint64)
    for _ in range(meta["repeats"]):
        for r in meta["ran"]:
            idx = int(r) & meta["mask"]
            expected[idx] ^= np.uint64(int(r) & MASK64)
    got = workload.memory.read_array(
        meta["table"], meta["table_words"]).astype(np.uint64)
    if not np.array_equal(got, expected):
        _fail("Randacc", "table differs from reference")


VALIDATORS = {
    "PR": validate_pr,
    "BFS": validate_bfs,
    "CC": validate_cc,
    "SSSP": validate_sssp,
    "BC": validate_bc,
    "NAS-IS": validate_histogram,
    "Kangr": validate_histogram,
    "Randacc": validate_randacc,
}


def validate(workload: Workload) -> None:
    """Dispatch on the workload's kernel name (``PR_KR`` -> ``PR``)."""
    kernel = workload.name.partition("_")[0]
    validator = VALIDATORS.get(kernel)
    if validator is None:
        raise ValueError(f"no validator for workload {workload.name!r}")
    validator(workload)
