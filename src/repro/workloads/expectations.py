"""Recorded static-analysis expectations for the GAP kernels.

These are the reference classifications produced by
:mod:`repro.analysis` over the five GAP kernels, recorded so that
``tests/test_lint_workloads.py`` locks them in: any change to a kernel
builder or to the analyses that shifts a load's class, a stride, or a
chain shape fails loudly instead of silently.

The numbers are independent of the graph input — every ``KERNEL_*``
variant shares the same program shape, only ``li`` immediates (array
bases and sizes) differ — so they are keyed by bare kernel name.

Fields per kernel:

* ``striding`` / ``indirect`` — number of loads in each class
  (:class:`~repro.svr.chain.LoadClass`); GAP kernels have no irregular
  or loop-invariant loads;
* ``strides`` — the set of byte strides over all striding loads
  (8 = one 64-bit word per iteration; CC's 64 is its degree-8 edge
  blocks; BC's -8 is the reverse dependency-accumulation sweep);
* ``chains`` — ``(seed_pc, chain_length, srf_pressure)`` per striding
  seed that anchors a static SVR chain, sorted by seed pc.
"""

from __future__ import annotations

GAP_EXPECTATIONS: dict[str, dict] = {
    "BC": {
        "striding": 4,
        "indirect": 10,
        "strides": {-8, 8},
        "chains": ((12, 26, 11), (26, 10, 4), (47, 33, 12), (63, 10, 5)),
    },
    "BFS": {
        "striding": 2,
        "indirect": 3,
        "strides": {8},
        "chains": ((11, 20, 9), (21, 10, 4)),
    },
    "CC": {
        "striding": 4,
        "indirect": 1,
        "strides": {8, 64},
        "chains": ((9, 14, 7), (10, 5, 2), (13, 2, 1), (18, 4, 4)),
    },
    "PR": {
        "striding": 3,
        "indirect": 1,
        "strides": {8},
        "chains": ((10, 14, 7), (11, 5, 2), (17, 4, 4)),
    },
    "SSSP": {
        "striding": 3,
        "indirect": 4,
        "strides": {8},
        "chains": ((12, 30, 12), (25, 11, 4), (28, 5, 2)),
    },
}


# -- Vectorization-legality plans (repro.analysis.vectorplan) ---------------
#
# One entry per registered workload: the scale- and graph-invariant
# ``VectorizationPlan.summary`` — ``(header, verdict, guard kinds, reason
# kinds)`` per natural loop, sorted by header.  GAP kernels are keyed by
# bare kernel name (every graph variant shares the program shape, exactly
# as for GAP_EXPECTATIONS); HPC and SPEC workloads by their full name.
#
# ``tests/test_vectorplan.py`` and the CI ``analyze-oracle`` job pin these:
# any analysis or kernel change that flips a loop's batching verdict, adds
# or drops a guard, or changes why a loop is scalar-only fails loudly.

LoopSummary = tuple[int, str, tuple[str, ...], tuple[str, ...]]

PLAN_EXPECTATIONS: dict[str, tuple[LoopSummary, ...]] = {
    "BC": (
        (8, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
        (22, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
        (42, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
        (59, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "BFS": (
        (7, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
        (17, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
    ),
    "CC": (
        (6, "SCALAR_ONLY", ("lane-mask",),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (7, "BATCHABLE_WITH_GUARD", ("lane-mask", "may-alias"), ()),
        (16, "BATCHABLE", (), ()),
    ),
    "PR": (
        (7, "SCALAR_ONLY", ("lane-mask",),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (8, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
        (15, "BATCHABLE", (), ()),
    ),
    "SSSP": (
        (8, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
        (21, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
    ),
    "Camel": (
        (7, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "BATCHABLE", (), ()),
    ),
    "G500": (
        (6, "SCALAR_ONLY", ("lane-mask", "may-alias", "transient-store"),
         ("irregular-load", "no-striding-seed")),
        (8, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
        (18, "BATCHABLE_WITH_GUARD",
         ("lane-mask", "may-alias", "transient-store"), ()),
    ),
    "HJ2": (
        (8, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
        (16, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "HJ8": (
        (8, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
        (16, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "Kangr": (
        (6, "SCALAR_ONLY", ("may-alias", "transient-store"),
         ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE_WITH_GUARD", ("may-alias", "transient-store"), ()),
    ),
    "NAS-CG": (
        (8, "SCALAR_ONLY", ("lane-mask",),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (9, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
        (16, "BATCHABLE", (), ()),
    ),
    "NAS-IS": (
        (5, "SCALAR_ONLY", ("may-alias", "transient-store"),
         ("irregular-load", "no-striding-seed")),
        (6, "BATCHABLE_WITH_GUARD", ("may-alias", "transient-store"), ()),
    ),
    "Randacc": (
        (6, "SCALAR_ONLY", ("may-alias", "transient-store"),
         ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE_WITH_GUARD", ("may-alias", "transient-store"), ()),
    ),
    "perlbench": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "gcc": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "bwaves": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (6, "BATCHABLE", (), ()),
    ),
    "mcf": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "cactuBSSN": (
        (2, "SCALAR_ONLY", (),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (6, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "namd": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE", (), ()),
    ),
    "parest": (
        (2, "SCALAR_ONLY", (),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (6, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "povray": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE", (), ()),
    ),
    "lbm": (
        (2, "SCALAR_ONLY", (),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (6, "BATCHABLE", (), ()),
    ),
    "omnetpp": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "wrf": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (10, "BATCHABLE", (), ()),
    ),
    "xalancbmk": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "x264": (
        (2, "SCALAR_ONLY", (),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (6, "BATCHABLE", (), ()),
    ),
    "blender": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE", (), ()),
    ),
    "cam4": (
        (2, "SCALAR_ONLY", (),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (6, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "deepsjeng": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "imagick": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (6, "BATCHABLE", (), ()),
    ),
    "leela": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (8, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
    ),
    "nab": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE", (), ()),
    ),
    "exchange2": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "BATCHABLE", (), ()),
    ),
    "fotonik3d": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (6, "BATCHABLE", (), ()),
    ),
    "roms": (
        (2, "SCALAR_ONLY", (),
         ("irregular-load", "irregular-store", "no-striding-seed")),
        (6, "BATCHABLE_WITH_GUARD", ("lane-mask",), ()),
    ),
    "xz": (
        (2, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (7, "SCALAR_ONLY", (), ("irregular-load", "no-striding-seed")),
        (10, "BATCHABLE", (), ()),
    ),
}

_GAP_KERNEL_PREFIXES = ("BC", "BFS", "CC", "PR", "SSSP")


# -- SoA lane-engine equivalence matrix -------------------------------------
#
# ``(workload, technique)`` cells over which the scalar and the SoA lane
# engines must produce byte-identical ``SimResult.to_dict()`` exports
# (``tests/test_svr_soa_equiv.py`` and the CI equivalence gate both
# iterate this list).  The cells cover the full fallback matrix:
# clean BATCHABLE rounds (Camel), lane-mask-guarded rounds (HJ2 / HJ8),
# per-instruction may-alias / transient-store fallbacks (Randacc, Kangr,
# BFS), mixed-verdict programs (NAS-CG, CC), and a SCALAR_ONLY program
# where 'auto' must never batch (mcf).

SOA_EQUIVALENCE_CELLS: tuple[tuple[str, str], ...] = (
    ("Camel", "svr16"),
    ("Camel", "svr64"),
    ("HJ2", "svr16"),
    ("HJ8", "svr16"),
    ("Randacc", "svr16"),
    ("Kangr", "svr16"),
    ("BFS_KR", "svr16"),
    ("NAS-CG", "svr16"),
    ("CC_KR", "svr16"),
    ("mcf", "svr16"),
)


def plan_expectation(name: str) -> tuple[LoopSummary, ...] | None:
    """Pinned plan summary for workload *name* (GAP variants collapse to
    their bare kernel key), or ``None`` if the name is not pinned."""
    key = name
    if "_" in name and name.split("_")[0] in _GAP_KERNEL_PREFIXES:
        key = name.split("_")[0]
    return PLAN_EXPECTATIONS.get(key)
