"""Recorded static-analysis expectations for the GAP kernels.

These are the reference classifications produced by
:mod:`repro.analysis` over the five GAP kernels, recorded so that
``tests/test_lint_workloads.py`` locks them in: any change to a kernel
builder or to the analyses that shifts a load's class, a stride, or a
chain shape fails loudly instead of silently.

The numbers are independent of the graph input — every ``KERNEL_*``
variant shares the same program shape, only ``li`` immediates (array
bases and sizes) differ — so they are keyed by bare kernel name.

Fields per kernel:

* ``striding`` / ``indirect`` — number of loads in each class
  (:class:`~repro.svr.chain.LoadClass`); GAP kernels have no irregular
  or loop-invariant loads;
* ``strides`` — the set of byte strides over all striding loads
  (8 = one 64-bit word per iteration; CC's 64 is its degree-8 edge
  blocks; BC's -8 is the reverse dependency-accumulation sweep);
* ``chains`` — ``(seed_pc, chain_length, srf_pressure)`` per striding
  seed that anchors a static SVR chain, sorted by seed pc.
"""

from __future__ import annotations

GAP_EXPECTATIONS: dict[str, dict] = {
    "BC": {
        "striding": 4,
        "indirect": 10,
        "strides": {-8, 8},
        "chains": ((12, 26, 11), (26, 10, 4), (47, 33, 12), (63, 10, 5)),
    },
    "BFS": {
        "striding": 2,
        "indirect": 3,
        "strides": {8},
        "chains": ((11, 20, 9), (21, 10, 4)),
    },
    "CC": {
        "striding": 4,
        "indirect": 1,
        "strides": {8, 64},
        "chains": ((9, 14, 7), (10, 5, 2), (13, 2, 1), (18, 4, 4)),
    },
    "PR": {
        "striding": 3,
        "indirect": 1,
        "strides": {8},
        "chains": ((10, 14, 7), (11, 5, 2), (17, 4, 4)),
    },
    "SSSP": {
        "striding": 3,
        "indirect": 4,
        "strides": {8},
        "chains": ((12, 30, 12), (25, 11, 4), (28, 5, 2)),
    },
}
