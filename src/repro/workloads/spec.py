"""SPECrate 2017 surrogate workloads (Fig 14).

Fig 14's purpose is narrow: SVR must not hurt *regular* code — code whose
loads either hit the cache, are covered by the stride prefetcher, or feed
no profitable indirect chain.  We substitute 23 small regular kernels, one
per SPECrate 2017 component the paper plots, drawn from a handful of
archetypes that exercise exactly SVR's could-go-wrong paths:

* ``stream``    — sequential reduction: SVR triggers, prefetches are
  accurate but redundant with the stride prefetcher (pure issue overhead);
* ``copy``      — load+store streaming;
* ``stencil``   — multi-stream striding reads;
* ``compute``   — register-resident arithmetic, few loads;
* ``cached``    — indirect gather inside an L1-resident table (accurate,
  pointless prefetches);
* ``short``     — striding loops with tiny trip counts and frequent
  discontinuities, SVR's worst case for over-fetch (wrf's -3% in Fig 14).

Each name gets its own size/mix parameters so the bars are not copies.
"""

from __future__ import annotations

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.memory.main_memory import MainMemory
from repro.workloads.base import (
    Workload,
    emit_word_index_load,
    emit_word_index_store,
)

SPEC_NAMES = (
    "perlbench", "gcc", "bwaves", "mcf", "cactuBSSN", "namd", "parest",
    "povray", "lbm", "omnetpp", "wrf", "xalancbmk", "x264", "blender",
    "cam4", "deepsjeng", "imagick", "leela", "nab", "exchange2",
    "fotonik3d", "roms", "xz",
)

# name -> (archetype, size_words, extra)
_SPEC_RECIPES: dict[str, tuple[str, int, int]] = {
    "perlbench": ("cached", 1 << 11, 3),
    "gcc": ("cached", 1 << 11, 5),
    "bwaves": ("stream", 1 << 15, 2),
    "mcf": ("cached", 1 << 12, 2),
    "cactuBSSN": ("stencil", 1 << 15, 3),
    "namd": ("compute", 1 << 10, 6),
    "parest": ("stencil", 1 << 14, 2),
    "povray": ("compute", 1 << 10, 8),
    "lbm": ("copy", 1 << 15, 1),
    "omnetpp": ("cached", 1 << 12, 4),
    "wrf": ("short", 1 << 14, 3),
    "xalancbmk": ("cached", 1 << 11, 2),
    "x264": ("copy", 1 << 14, 2),
    "blender": ("compute", 1 << 10, 5),
    "cam4": ("stencil", 1 << 14, 4),
    "deepsjeng": ("cached", 1 << 11, 6),
    "imagick": ("stream", 1 << 14, 3),
    "leela": ("cached", 1 << 10, 4),
    "nab": ("compute", 1 << 10, 7),
    "exchange2": ("compute", 1 << 9, 9),
    "fotonik3d": ("stream", 1 << 15, 2),
    "roms": ("stencil", 1 << 15, 2),
    "xz": ("short", 1 << 13, 4),
}


def _emit_repeat_header(b: ProgramBuilder, repeats: int) -> None:
    b.li("a5", repeats)
    b.li("s0", 0)
    b.label("repeat")


def _emit_repeat_footer(b: ProgramBuilder) -> None:
    b.addi("s0", "s0", 1)
    b.cmp_lt("t6", "s0", "a5")
    b.bnez("t6", "repeat")
    b.halt()


def _stream_kernel(b: ProgramBuilder, base: int, n: int) -> None:
    """sum += A[i] over a long sequential array."""
    b.li("a0", base)
    b.li("a1", n)
    b.li("t5", 0)
    b.li("t0", 0)
    b.label("loop")
    emit_word_index_load(b, "t2", "a0", "t0", "t1")
    b.add("t5", "t5", "t2")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a1")
    b.bnez("t3", "loop")


def _copy_kernel(b: ProgramBuilder, src: int, dst: int, n: int) -> None:
    b.li("a0", src)
    b.li("a1", dst)
    b.li("a2", n)
    b.li("t0", 0)
    b.label("loop")
    emit_word_index_load(b, "t2", "a0", "t0", "t1")
    b.addi("t2", "t2", 1)
    emit_word_index_store(b, "t2", "a1", "t0", "t1")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a2")
    b.bnez("t3", "loop")


def _stencil_kernel(b: ProgramBuilder, src: int, dst: int, n: int) -> None:
    """dst[i] = src[i-1] + src[i] + src[i+1]: three striding streams."""
    b.li("a0", src)
    b.li("a1", dst)
    b.li("a2", n - 1)
    b.li("t0", 1)
    b.label("loop")
    b.slli("t1", "t0", 3)
    b.add("t1", "a0", "t1")
    b.ld("t2", "t1", -8)
    b.ld("t3", "t1", 0)
    b.ld("t4", "t1", 8)
    b.add("t2", "t2", "t3")
    b.add("t2", "t2", "t4")
    emit_word_index_store(b, "t2", "a1", "t0", "t1")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a2")
    b.bnez("t3", "loop")


def _compute_kernel(b: ProgramBuilder, base: int, n: int, depth: int) -> None:
    """ALU-dense loop: a striding load feeds one add; the bulk of the work
    is register-resident arithmetic (real compute-bound SPEC hot loops
    carry their state in registers, not through a load-to-ALU chain)."""
    b.li("a0", base)
    b.li("a1", n)
    b.li("t5", 1)
    b.li("t4", 0x1234567)
    b.li("t0", 0)
    b.label("loop")
    emit_word_index_load(b, "t2", "a0", "t0", "t1")
    b.add("t5", "t5", "t2")          # the only tainted consumer
    for i in range(depth):
        b.muli("t4", "t4", 3 + i)    # untainted register chain
        b.xori("t4", "t4", 0x5A5A)
        b.srli("t3", "t4", 7)
        b.add("t4", "t4", "t3")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a1")
    b.bnez("t3", "loop")


def _cached_kernel(b: ProgramBuilder, table_base: int,
                   n: int, mask: int) -> None:
    """L1-resident table lookups with *computed* (xorshift) indices — the
    pointer-chasing-integer-code shape of perlbench/gcc/omnetpp.  There is
    no striding load to piggyback on, so SVR stays idle, as it does on the
    real binaries."""
    b.li("a1", table_base)
    b.li("a2", n)
    b.li("a3", mask)
    b.li("t5", 0)
    b.li("t2", 0x9E3779B9)           # xorshift state
    b.li("t0", 0)
    b.label("loop")
    b.srli("t3", "t2", 7)            # xorshift index generator
    b.xor("t2", "t2", "t3")
    b.slli("t3", "t2", 9)
    b.xor("t2", "t2", "t3")
    b.and_("t4", "t2", "a3")
    emit_word_index_load(b, "t4", "a1", "t4", "t1")   # table[idx] (in-L1)
    b.add("t5", "t5", "t4")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a2")
    b.bnez("t3", "loop")


def _short_kernel(b: ProgramBuilder, base: int, rows: int, trip: int) -> None:
    """Many tiny striding loops with discontinuities between them — the
    over-fetch stress case (wrf)."""
    b.li("a0", base)
    b.li("a1", rows)
    b.li("a2", trip)
    b.li("t5", 0)
    b.li("t0", 0)                    # row
    b.label("rows")
    b.muli("t1", "t0", 17)           # scatter row starts
    b.andi("t1", "t1", (1 << 13) - 1)
    b.li("t2", 0)                    # j
    b.label("inner")
    b.add("t3", "t1", "t2")
    emit_word_index_load(b, "t4", "a0", "t3", "t6")
    b.add("t5", "t5", "t4")
    b.addi("t2", "t2", 1)
    b.cmp_lt("t6", "t2", "a2")
    b.bnez("t6", "inner")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t6", "t0", "a1")
    b.bnez("t6", "rows")


def build_spec(name: str, memory: MainMemory | None = None,
               repeats: int = 4) -> Workload:
    """Build one SPEC surrogate by component name (Fig 14 x-axis)."""
    if name not in _SPEC_RECIPES:
        raise ValueError(f"unknown SPEC surrogate: {name!r}")
    archetype, size, extra = _SPEC_RECIPES[name]
    memory = memory or MainMemory()
    rng = np.random.default_rng(hash(name) % (1 << 31))
    b = ProgramBuilder(f"spec-{name}")
    _emit_repeat_header(b, repeats)

    if archetype == "stream":
        base = memory.alloc_array(
            rng.integers(0, 1 << 20, size=size, dtype=np.int64), name="A")
        _stream_kernel(b, base, size)
    elif archetype == "copy":
        src = memory.alloc_array(
            rng.integers(0, 1 << 20, size=size, dtype=np.int64), name="A")
        dst = memory.alloc_zeros(size, name="B")
        _copy_kernel(b, src, dst, size)
    elif archetype == "stencil":
        src = memory.alloc_array(
            rng.integers(0, 1 << 20, size=size, dtype=np.int64), name="A")
        dst = memory.alloc_zeros(size, name="B")
        _stencil_kernel(b, src, dst, size)
    elif archetype == "compute":
        base = memory.alloc_array(
            rng.integers(1, 1 << 20, size=size, dtype=np.int64), name="A")
        _compute_kernel(b, base, size, depth=extra)
    elif archetype == "cached":
        table_words = 1 << 10        # 8 KiB: comfortably L1-resident
        # Seed index array stays resident to keep the memory image shape;
        # the kernel itself generates indices with xorshift.
        memory.alloc_array(
            rng.integers(0, table_words, size=size, dtype=np.int64),
            name="idx")
        table = memory.alloc_array(
            rng.integers(0, 1 << 20, size=table_words, dtype=np.int64),
            name="table")
        _cached_kernel(b, table, size, table_words - 1)
    elif archetype == "short":
        base = memory.alloc_array(
            rng.integers(0, 1 << 20, size=1 << 14, dtype=np.int64), name="A")
        _short_kernel(b, base, rows=size // extra, trip=extra)
    else:  # pragma: no cover - recipes are validated above
        raise AssertionError(archetype)

    _emit_repeat_footer(b)
    return Workload(name, "spec", b.build(), memory,
                    meta={"archetype": archetype, "size": size,
                          "extra": extra})
