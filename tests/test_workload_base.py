"""Tests for the shared kernel-builder helpers."""

import pytest

from repro.cores.functional import FunctionalCore
from repro.isa.program import ProgramBuilder
from repro.memory.main_memory import MainMemory
from repro.workloads.base import (
    VERTEX_STRIDE_SHIFT,
    Workload,
    alloc_vertex_array,
    emit_vertex_load,
    emit_vertex_store,
    emit_word_index_load,
    emit_word_index_store,
)


def run_snippet(fn):
    memory = MainMemory(capacity_bytes=1 << 20)
    b = ProgramBuilder()
    ctx = fn(b, memory)
    b.halt()
    core = FunctionalCore(b.build(), memory)
    core.run()
    return core, memory, ctx


class TestWordIndexHelpers:
    def test_load_scales_index_by_word(self):
        def prog(b, m):
            base = m.alloc_array([10, 20, 30])
            b.li("a0", base)
            b.li("t0", 2)
            emit_word_index_load(b, "t2", "a0", "t0", "t1")
            return base
        core, _, _ = run_snippet(prog)
        assert core.regs.read(22) == 30

    def test_store_roundtrip(self):
        def prog(b, m):
            base = m.alloc_zeros(4)
            b.li("a0", base)
            b.li("t0", 3)
            b.li("t2", 77)
            emit_word_index_store(b, "t2", "a0", "t0", "t1")
            return base
        _, memory, base = run_snippet(prog)
        assert memory.read_word(base + 24) == 77


class TestVertexHelpers:
    def test_vertex_records_are_64_bytes(self):
        assert VERTEX_STRIDE_SHIFT == 6

    def test_vertex_load_uses_record_stride(self):
        def prog(b, m):
            base = alloc_vertex_array(m, 4, "vd")
            m.write_word(base + (3 << VERTEX_STRIDE_SHIFT), 1234)
            b.li("a0", base)
            b.li("t0", 3)
            emit_vertex_load(b, "t2", "a0", "t0", "t1")
            return base
        core, _, _ = run_snippet(prog)
        assert core.regs.read(22) == 1234

    def test_vertex_store(self):
        def prog(b, m):
            base = alloc_vertex_array(m, 4, "vd")
            b.li("a0", base)
            b.li("t0", 2)
            b.li("t2", 55)
            emit_vertex_store(b, "t2", "a0", "t0", "t1")
            return base
        _, memory, base = run_snippet(prog)
        assert memory.read_word(base + (2 << VERTEX_STRIDE_SHIFT)) == 55

    def test_alloc_vertex_array_fill(self):
        memory = MainMemory(capacity_bytes=1 << 20)
        base = alloc_vertex_array(memory, 8, "vd", fill=7)
        for v in range(8):
            assert memory.read_word(base + (v << VERTEX_STRIDE_SHIFT)) == 7

    def test_vertex_records_never_share_cache_lines(self):
        memory = MainMemory(capacity_bytes=1 << 20)
        base = alloc_vertex_array(memory, 16, "vd")
        lines = {(base + (v << VERTEX_STRIDE_SHIFT)) // 64 for v in range(16)}
        assert len(lines) == 16


class TestWorkloadContainer:
    def test_fresh_copy_not_supported(self):
        memory = MainMemory(capacity_bytes=1 << 20)
        b = ProgramBuilder()
        b.halt()
        workload = Workload("w", "hpc", b.build(), memory)
        with pytest.raises(NotImplementedError):
            workload.fresh_copy()
