"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import FIGURES, main


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "svr16" in out
        assert "PR_KR" in out
        assert "fig1" in out

    def test_figures_registry_covers_evaluation(self):
        assert {"fig1", "fig3", "fig11", "fig12", "fig13a", "fig13b",
                "fig14", "fig15", "fig16", "fig17", "fig18",
                "table2"} <= set(FIGURES)


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "Camel", "svr16", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "nJ/instr" in out
        assert "SVR acc" in out and "PRM rounds" in out
        assert "mem-dram" in out

    def test_run_without_svr_omits_svr_stats(self, capsys):
        assert main(["run", "Camel", "ooo", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "PRM rounds" not in out

    def test_bad_technique_raises(self):
        with pytest.raises(ValueError):
            main(["run", "Camel", "gpu", "--scale", "tiny"])


class TestFigure:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        out = capsys.readouterr().out
        assert "svr16" in out

    def test_fig1_with_subset(self, capsys):
        assert main(["figure", "fig1", "--workloads", "Camel",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "norm_ipc" in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["figure", "fig99"]) == 2


class TestOverhead:
    def test_default_matches_table2(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "17738" in out and "2.17" in out

    def test_custom_n(self, capsys):
        assert main(["overhead", "128", "8"]) == 0
        out = capsys.readouterr().out
        assert "SRF" in out
