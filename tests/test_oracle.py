"""Tests for the dynamic vectorization oracle (repro.analysis.oracle).

The oracle is the trust anchor for the static plans: it records per-lane
address/branch streams from a real SVR run and fails loudly when a static
claim (independence, stride, divergence containment) does not hold.
"""

import dataclasses
import json

from repro.analysis.oracle import (
    _MAX_SAMPLES,
    AccessStream,
    collect_trace,
    oracle_check,
    validate_plan,
)
from repro.analysis.vectorplan import BATCHABLE, build_plan

from conftest import build_gather_workload


def _tamper_loop(plan, header, **changes):
    loops = tuple(
        dataclasses.replace(lp, **changes) if lp.header == header else lp
        for lp in plan.loops)
    return dataclasses.replace(plan, loops=loops)


class TestCleanRun:
    def test_gather_plan_validates(self):
        program, memory = build_gather_workload()
        plan = build_plan(program, name="gather")
        report = oracle_check(program, memory, plan)
        assert report.ok, [str(v) for v in report.violations]
        assert report.rounds > 0
        assert report.checks > 0
        assert report.commits > 0

    def test_recorder_streams(self):
        program, memory = build_gather_workload()
        recorder = collect_trace(program, memory)
        # The striding index load (pc 7) commits architecturally, so it
        # must have a real stream with a sane range.
        rng = recorder.real_range(7)
        assert rng is not None and rng[0] <= rng[1]
        samples, truncated = recorder.real_samples(7)
        assert samples and not truncated
        assert recorder.rounds > 0
        blob = json.loads(json.dumps(recorder.to_dict()))
        assert blob["rounds"] == recorder.rounds


class TestViolations:
    def test_wrong_stride_claim_is_caught(self):
        program, memory = build_gather_workload()
        plan = build_plan(program, name="gather")
        lp = plan.loops[0]
        bad = _tamper_loop(plan, lp.header,
                           seeds=tuple((pc, stride * 2)
                                       for pc, stride in lp.seeds))
        report = oracle_check(program, memory, bad)
        kinds = {v.kind for v in report.violations}
        assert not report.ok
        assert "stride" in kinds

    def test_stripped_guard_is_unsound(self):
        # PR's rank-update loop needs a lane-mask guard; forging it as
        # plain BATCHABLE must trip the divergence-containment check.
        from repro.workloads import build_workload

        workload = build_workload("PR_KR", scale="tiny")
        plan = build_plan(workload.program, name="PR_KR")
        guarded = [lp for lp in plan.loops
                   if any(g.kind == "lane-mask" for g in lp.guards)]
        assert guarded, plan.summary
        bad = plan
        for lp in guarded:
            bad = _tamper_loop(bad, lp.header,
                               verdict=BATCHABLE, guards=())
        report = oracle_check(workload.program, workload.memory, bad)
        assert not report.ok
        assert "unsound-batchable" in {v.kind for v in report.violations}

    def test_report_serializes_violations(self):
        program, memory = build_gather_workload()
        plan = build_plan(program, name="gather")
        lp = plan.loops[0]
        bad = _tamper_loop(plan, lp.header,
                           seeds=tuple((pc, 3) for pc, _ in lp.seeds))
        report = oracle_check(program, memory, bad)
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["ok"] is False
        assert blob["violations"][0]["kind"] == "stride"


class TestAccessStream:
    def test_sample_cap_marks_truncation(self):
        stream = AccessStream(pc=0, is_store=False)
        for i in range(_MAX_SAMPLES + 8):
            stream.observe(i * 8)
        assert stream.truncated
        assert len(stream.samples) <= _MAX_SAMPLES
        assert stream.count == _MAX_SAMPLES + 8
        assert stream.min_addr == 0
        assert stream.max_addr == (_MAX_SAMPLES + 7) * 8

    def test_truncated_samples_disable_proved_checks(self):
        # validate_plan must skip (not fail) sample-intersection checks
        # when either stream overflowed — range info alone can't prove
        # an interleaving clean.
        program, memory = build_gather_workload()
        recorder = collect_trace(program, memory)
        for stream in recorder.real.values():
            stream.truncated = True
        plan = build_plan(program, name="gather")
        report = validate_plan(program, plan, recorder)
        assert report.ok
