"""Tests for the lint driver: intentionally broken kernels must produce
exactly the catalogued diagnostics."""

from repro.analysis import (
    DIAGNOSTIC_CATALOG,
    Severity,
    format_report,
    lint_program,
)
from repro.isa.program import ProgramBuilder

from conftest import gather_program


def codes(report):
    return [d.code for d in report.diagnostics]


class TestBrokenKernels:
    def test_use_before_def(self):
        b = ProgramBuilder("ubd")
        b.li("t0", 0)
        b.beqz("t0", "skip")
        b.li("t1", 7)
        b.label("skip")
        b.add("t2", "t1", "t0")      # t1 unassigned on the taken path
        b.halt()
        report = lint_program(b.build())
        w101 = [d for d in report.diagnostics if d.code == "W101"]
        assert len(w101) == 1
        assert w101[0].pc == 3
        assert w101[0].severity is Severity.WARNING
        assert "x21" in w101[0].message           # t1 = x21
        assert report.ok                          # warnings don't fail CI

    def test_unreachable_block(self):
        b = ProgramBuilder("unreach")
        b.jmp("end")
        b.li("t0", 1)
        b.li("t1", 2)
        b.label("end")
        b.halt()
        report = lint_program(b.build())
        w102 = [d for d in report.diagnostics if d.code == "W102"]
        assert [d.pc for d in w102] == [1]

    def test_dead_store(self):
        b = ProgramBuilder("dead")
        b.li("t0", 1)                # overwritten before any read
        b.li("t0", 2)
        b.mv("t1", "t0")
        b.st("t1", "t0", 0)          # keeps t1 live
        b.halt()
        report = lint_program(b.build())
        # Overwritten-before-read is the specific W106 form, not plain W103.
        w106 = [d for d in report.diagnostics if d.code == "W106"]
        assert [(d.pc) for d in w106] == [0]
        assert "overwritten at pc 1" in w106[0].message
        assert not [d for d in report.diagnostics if d.code == "W103"]

    def test_missing_halt_is_error(self):
        b = ProgramBuilder("nohalt")
        b.li("t0", 1)
        b.addi("t0", "t0", 1)
        report = lint_program(b.build())
        assert codes(report) == ["E001", "W103"]
        assert not report.ok
        assert report.errors[0].pc == 1

    def test_write_to_x0(self):
        b = ProgramBuilder("x0w")
        b.li("x0", 5)
        b.halt()
        report = lint_program(b.build())
        assert "W104" in codes(report)

    def test_empty_program(self):
        report = lint_program(ProgramBuilder("empty").build())
        assert codes(report) == ["E001"]
        assert not report.ok

    def test_all_codes_catalogued(self):
        # Every diagnostic a broken kernel can produce has a catalogue
        # entry, and vice versa every catalogue code is well-formed.
        for code in DIAGNOSTIC_CATALOG:
            assert code[0] in "EW" and code[1:].isdigit()

    def test_diagnostics_sorted_by_pc(self):
        b = ProgramBuilder("multi")
        b.li("t0", 1)                # dead (overwritten at 2)
        b.jmp("on")
        b.label("on")
        b.li("t0", 2)
        b.mv("t1", "t0")
        # no halt -> E001 at the end
        report = lint_program(b.build())
        pcs = [d.pc for d in report.diagnostics]
        assert pcs == sorted(pcs)


class TestReportShape:
    def test_clean_gather_report(self):
        report = lint_program(gather_program(0x1000, 0x2000, 8),
                              name="gather")
        assert report.ok and not report.diagnostics
        assert report.name == "gather"
        assert report.num_loops == 1
        assert len(report.loads) == 2
        assert len(report.chains) == 1

    def test_to_dict_round_trips_to_json(self):
        import json

        report = lint_program(gather_program(0x1000, 0x2000, 8))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["loads"][0]["class"] == "striding"
        assert data["chains"][0]["seed_pc"] == 7

    def test_format_report_renders_tables(self):
        report = lint_program(gather_program(0x1000, 0x2000, 8),
                              name="gather")
        text = format_report(report, verbose=True)
        assert "clean" in text
        assert "striding" in text and "indirect" in text
        assert "srf-regs" in text

    def test_diagnostic_str_includes_disassembly(self):
        b = ProgramBuilder("nohalt")
        b.li("t0", 1)
        report = lint_program(b.build())
        text = str(report.errors[0])
        assert "E001" in text and "error" in text
        assert "li" in text                      # disassembled line
