"""Functional-correctness tests for the GAP kernels.

Each kernel runs to completion on a tiny graph under the timing-free
functional core and is checked against a Python reference implementing the
same algorithm.
"""

import pytest

from repro.cores.functional import FunctionalCore
from repro.workloads.gap import build_bc, build_bfs, build_cc, build_pr, build_sssp
from repro.workloads.graphs import uniform_random_graph

MASK64 = (1 << 64) - 1


def complete(workload, cap=20_000_000):
    core = FunctionalCore(workload.program, workload.memory)
    core.run(cap)
    assert core.halted, "kernel must reach HALT"
    return core


def vertex_words(workload, base_key, n):
    shift = workload.meta["vertex_shift"]
    base = workload.meta[base_key]
    memory = workload.memory
    return [memory.read_word(base + (v << shift)) for v in range(n)]


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph(96, 5, seed=13)


@pytest.fixture(scope="module")
def weighted_graph():
    return uniform_random_graph(96, 5, seed=14, weighted=True)


class TestPageRank:
    def test_scores_match_reference(self, graph):
        workload = build_pr(graph, passes=1)
        complete(workload)
        n = graph.num_nodes
        contrib = vertex_words(workload, "contrib", n)
        scores = vertex_words(workload, "scores", n)
        for u in range(n):
            expected = sum(contrib[v] for v in graph.out_neighbors(u)) & MASK64
            assert scores[u] == expected

    def test_multiple_passes_idempotent(self, graph):
        """contrib is static, so every pass writes the same scores."""
        one = build_pr(graph, passes=1)
        complete(one)
        three = build_pr(graph, passes=3)
        complete(three)
        n = graph.num_nodes
        assert (vertex_words(one, "scores", n)
                == vertex_words(three, "scores", n))


class TestBfs:
    def reference_reachable(self, graph, root):
        seen = {root}
        frontier = [root]
        while frontier:
            nxt = []
            for u in frontier:
                for v in graph.out_neighbors(u):
                    if int(v) not in seen:
                        seen.add(int(v))
                        nxt.append(int(v))
            frontier = nxt
        return seen

    def test_visits_exactly_reachable_set(self, graph):
        workload = build_bfs(graph, root=0)
        complete(workload)
        n = graph.num_nodes
        parent = vertex_words(workload, "parent", n)
        sentinel = workload.meta["sentinel"]
        visited = {v for v in range(n) if parent[v] != sentinel}
        assert visited == self.reference_reachable(graph, 0)

    def test_parent_edges_valid(self, graph):
        workload = build_bfs(graph, root=0)
        complete(workload)
        n = graph.num_nodes
        parent = vertex_words(workload, "parent", n)
        sentinel = workload.meta["sentinel"]
        for v in range(n):
            p = parent[v]
            if p == sentinel or v == 0:
                continue
            assert v in graph.out_neighbors(int(p))

    def test_root_is_own_parent(self, graph):
        workload = build_bfs(graph, root=0)
        complete(workload)
        assert vertex_words(workload, "parent", 1)[0] == 0


class TestCc:
    def reference(self, graph, passes):
        comp = list(range(graph.num_nodes))
        for _ in range(passes):
            for u in range(graph.num_nodes):
                c = comp[u]
                for v in graph.out_neighbors(u):
                    c = min(c, comp[int(v)])
                comp[u] = c
        return comp

    def test_labels_match_reference(self, graph):
        workload = build_cc(graph, passes=3)
        complete(workload)
        got = vertex_words(workload, "comp", graph.num_nodes)
        assert got == self.reference(graph, 3)

    def test_labels_only_decrease(self, graph):
        workload = build_cc(graph, passes=3)
        complete(workload)
        got = vertex_words(workload, "comp", graph.num_nodes)
        assert all(got[v] <= v for v in range(graph.num_nodes))


class TestSssp:
    def reference_dijkstra(self, graph, root):
        import heapq
        dist = {root: 0}
        heap = [(0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            start, end = graph.offsets[u], graph.offsets[u + 1]
            for idx in range(start, end):
                v = int(graph.neighbors[idx])
                nd = d + int(graph.weights[idx])
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def test_distances_match_dijkstra(self, weighted_graph):
        workload = build_sssp(weighted_graph, root=0)
        complete(workload)
        n = weighted_graph.num_nodes
        got = vertex_words(workload, "dist", n)
        inf = workload.meta["inf"]
        expected = self.reference_dijkstra(weighted_graph, 0)
        for v in range(n):
            if v in expected:
                assert got[v] == expected[v], f"node {v}"
            else:
                assert got[v] == inf

    def test_requires_weights(self, graph):
        with pytest.raises(ValueError):
            build_sssp(graph)


class TestBc:
    def reference(self, graph, root):
        """Replicates the kernel's integer dependency accumulation."""
        sentinel = MASK64
        n = graph.num_nodes
        depth = [sentinel] * n
        depth[root] = 0
        queue = [root]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in graph.out_neighbors(u):
                v = int(v)
                if depth[v] == sentinel:
                    depth[v] = depth[u] + 1
                    queue.append(v)
        delta = [0] * n
        for u in reversed(queue):
            acc = delta[u]
            for v in graph.out_neighbors(u):
                v = int(v)
                if depth[v] == depth[u] + 1:
                    acc += 1 + delta[v]
            delta[u] = acc & MASK64
        return depth, delta

    def test_depths_and_deltas_match(self, graph):
        workload = build_bc(graph, root=0)
        complete(workload)
        n = graph.num_nodes
        depth, delta = self.reference(graph, 0)
        assert vertex_words(workload, "depth", n) == depth
        assert vertex_words(workload, "delta", n) == delta
