"""Cross-process telemetry: worker capture, pipe/journal transport, and
the deterministic parent-side merge."""

import itertools
import json

import pytest

from repro.exec import (
    ExecConfig,
    RunSpec,
    TelemetryConfig,
    run_cells,
)
from repro.obs import merge_typed_snapshots, validate_trace
from repro.obs.probes import ProbeBus

TINY = [("Camel", "svr16"), ("Camel", "inorder"), ("Randacc", "svr16")]


def _specs():
    return [RunSpec.make(w, t, scale="tiny") for w, t in TINY]


def _config(**kw):
    kw.setdefault("telemetry", TelemetryConfig())
    kw.setdefault("bus", ProbeBus())      # keep the default bus quiet
    return ExecConfig(**kw)


def _process_names(trace):
    return {ev["pid"] for ev in trace["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"}


class TestTelemetryConfig:
    def test_off_by_default(self):
        assert ExecConfig().telemetry is None

    def test_validators(self):
        with pytest.raises(ValueError):
            TelemetryConfig(trace_tail=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(max_spans=0)


class TestInlineCapture:
    def test_payload_shape(self):
        report = run_cells(_specs(), _config())
        records = report.telemetry_records()
        assert len(records) == 3
        for telem in records:
            assert telem["v"] == 1
            assert telem["status"] == "ok"
            assert telem["cpu_s"] >= 0.0
            assert telem["max_rss_kib"] > 0
            assert "start" in telem["measure_wall"]
            assert "end" in telem["measure_wall"]
            names = {s["name"] for s in telem["spans"]}
            assert {"cell", "build", "warmup", "measure",
                    "serialize"} <= names
            assert telem["metrics"]["core.instructions"]["kind"] == \
                "counter"

    def test_no_capture_when_telemetry_none(self):
        report = run_cells(_specs()[:1],
                           ExecConfig(bus=ProbeBus()))
        assert report.telemetry_records() == []
        assert report.merged_metrics() == {}
        assert all(o.telemetry is None for o in report.outcomes)

    def test_failed_cell_still_carries_telemetry(self):
        bad = RunSpec.make("Camel", "svr16", scale="tiny")
        bad = RunSpec(workload="NoSuchWorkload", tech=bad.tech,
                      scale="tiny")
        report = run_cells([bad], _config(retries=0))
        (outcome,) = report.outcomes
        assert outcome.status == "failed"
        assert outcome.telemetry is not None
        assert outcome.telemetry["status"] == "failed"
        cell = next(s for s in outcome.telemetry["spans"]
                    if s["name"] == "cell")
        assert cell["status"] == "error"

    def test_parent_spans_recorded(self):
        report = run_cells(_specs()[:2], _config())
        names = [s["name"] for s in report.parent_spans]
        assert names.count("attempt") == 2
        assert names[-1] == "run_cells"


class TestIsolatedCapture:
    def test_workers_ship_telemetry_over_the_pipe(self):
        report = run_cells(_specs(), _config(jobs=2))
        records = report.telemetry_records()
        assert len(records) == 3
        pids = {t["pid"] for t in records}
        assert len(pids) == 3             # one fresh process per cell
        for telem in records:
            assert telem["max_rss_kib"] > 0
            assert {"cell", "measure"} <= {s["name"]
                                           for s in telem["spans"]}

    def test_merged_trace_has_one_track_per_worker(self):
        report = run_cells(_specs(), _config(jobs=2))
        trace = report.trace()
        assert validate_trace(trace) == []
        named = _process_names(trace)
        worker_pids = {t["pid"] for t in report.telemetry_records()}
        assert worker_pids <= named
        assert len(named) == len(worker_pids) + 1   # + parent track
        assert trace["otherData"]["processes"] == len(named)

    def test_parent_spans_include_spawn_and_reap(self):
        report = run_cells(_specs()[:1], _config(jobs=2))
        names = {s["name"] for s in report.parent_spans}
        assert {"run_cells", "attempt", "spawn", "reap"} <= names


class TestDeterministicMerge:
    def test_merge_is_order_invariant(self):
        report = run_cells(_specs(), _config())
        snapshots = [t["metrics"] for t in report.telemetry_records()]
        reference = merge_typed_snapshots(snapshots)
        for perm in itertools.permutations(snapshots):
            merged = merge_typed_snapshots(list(perm))
            counters = {k: v for k, v in merged.items()
                        if v["kind"] == "counter"}
            hists = {k: v for k, v in merged.items()
                     if v["kind"] == "histogram"}
            assert counters == {k: v for k, v in reference.items()
                                if v["kind"] == "counter"}
            assert hists == {k: v for k, v in reference.items()
                             if v["kind"] == "histogram"}

    def test_report_merge_ignores_outcome_order(self):
        report = run_cells(_specs(), _config())
        merged = report.merged_metrics()
        shuffled = type(report)(list(reversed(report.outcomes)))
        assert shuffled.merged_metrics() == merged

    def test_inline_and_isolated_agree(self):
        inline = run_cells(_specs(), _config()).merged_metrics()
        isolated = run_cells(_specs(), _config(jobs=2)).merged_metrics()
        assert inline == isolated


class TestJournalTransport:
    def test_journal_records_carry_telemetry(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_cells(_specs(), _config(jobs=2, journal=str(journal)))
        cells = [json.loads(line)
                 for line in journal.read_text().splitlines()
                 if json.loads(line).get("event") == "cell"]
        assert len(cells) == 3
        for record in cells:
            telem = record["telemetry"]
            assert telem["cpu_s"] >= 0.0
            assert telem["metrics"]
            assert telem["spans"]

    def test_resumed_report_matches_fresh_aggregates(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        fresh = run_cells(_specs(),
                          _config(jobs=2, journal=str(journal)))
        resumed = run_cells(_specs(),
                            _config(jobs=2, journal=str(journal),
                                    resume=True))
        assert resumed.cached_count == 3
        assert resumed.attempted_count == 0
        assert resumed.merged_metrics() == fresh.merged_metrics()
        resources = resumed.resources()
        assert resources["cells"] == 3
        assert resources["pids"] == fresh.resources()["pids"]
        assert validate_trace(resumed.trace()) == []


class TestResourceSummary:
    def test_totals(self):
        report = run_cells(_specs(), _config())
        res = report.resources()
        assert res["cells"] == 3
        assert res["cpu_s"] > 0.0
        assert res["max_rss_kib"] > 0
        assert res["pids"]                # at least the parent pid
