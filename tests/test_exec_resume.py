"""Acceptance tests for journal-backed resume (the ISSUE's bar).

A sweep with one hang-forced and one crash-forced cell must complete all
remaining cells, report both failures structurally, and a second
``resume=True`` invocation must re-run only the failed cells — ending
byte-identical to a run that never failed.
"""

from repro.exec import (
    CRASH,
    HANG,
    ExecConfig,
    FaultPlan,
    FaultSpec,
    run_cells,
)
from repro.harness.sweeps import SweepAxis, render_sweep, sweep_report
from repro.exec.spec import RunSpec
from repro.obs.probes import ProbeBus

WORKLOADS = ("Camel", "HJ2")
AXES = [SweepAxis("svr.srf_entries", (2, 8))]

# One hang-forced cell, one crash-forced cell; everything else healthy.
FAULTS = FaultPlan(specs=(
    FaultSpec(workload="Camel", technique="*srf_entries=2*", kind="hang"),
    FaultSpec(workload="HJ2", technique="*srf_entries=8*", kind="crash"),
))


def _exec_config(journal, **kwargs):
    kwargs.setdefault("bus", ProbeBus())
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("timeout_s", 1.5)
    kwargs.setdefault("retries", 0)
    return ExecConfig(journal=str(journal), **kwargs)


class TestSweepResume:
    def test_faulted_sweep_completes_then_resumes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"

        # First invocation: the two faulted cells fail, the rest complete.
        first = sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                             exec_config=_exec_config(journal,
                                                      faults=FAULTS))
        assert len(first.failures) == 2
        assert {f.kind for f in first.failures} == {HANG, CRASH}
        for failure in first.failures:
            assert failure.workload in WORKLOADS
            assert failure.attempts == 1
        # Every non-faulted cell completed: each combo still has a value
        # from the surviving workload (partial-but-honest, not None).
        assert all(v is not None for v in first.values.values())
        report = first.exec_report
        assert report.ok_count == len(report.outcomes) - 2

        # Second invocation with resume: only the 2 failed cells re-run.
        second = sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                              exec_config=_exec_config(journal,
                                                       resume=True))
        assert second.failures == []
        assert second.exec_report.attempted_count == 2
        assert (second.exec_report.cached_count
                == len(second.exec_report.outcomes) - 2)

    def test_resumed_equals_uninterrupted(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        uninterrupted = sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                                     exec_config=ExecConfig(bus=ProbeBus()))
        sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                     exec_config=_exec_config(journal, faults=FAULTS))
        resumed = sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                               exec_config=_exec_config(journal,
                                                        resume=True))
        # Byte-identical: same combos, exactly equal floats.
        assert resumed.values == uninterrupted.values
        assert (render_sweep(resumed.values, AXES)
                == render_sweep(uninterrupted.values, AXES))

    def test_third_invocation_is_fully_cached(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                     exec_config=_exec_config(journal, faults=FAULTS))
        sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                     exec_config=_exec_config(journal, resume=True))
        third = sweep_report(WORKLOADS, "svr16", AXES, scale="tiny",
                             exec_config=_exec_config(journal, resume=True))
        assert third.exec_report.attempted_count == 0
        assert third.failures == []


class TestRunCellsResume:
    def test_failed_cells_marked_and_rerun(self, tmp_path):
        journal = tmp_path / "cells.jsonl"
        specs = [RunSpec.make(w, t, scale="tiny")
                 for w in WORKLOADS for t in ("inorder", "svr16")]
        plan = FaultPlan(specs=(
            FaultSpec(workload="Camel", technique="svr16", kind="crash"),))

        first = run_cells(specs, _exec_config(journal, faults=plan))
        assert first.failed_count == 1
        assert first.ok_count == 3
        failed_spec = RunSpec.make("Camel", "svr16", scale="tiny")
        outcome = first.outcome_for(failed_spec)
        assert not outcome.ok and outcome.failure.kind == CRASH

        second = run_cells(specs, _exec_config(journal, resume=True))
        assert second.failed_count == 0
        assert second.attempted_count == 1
        assert second.outcome_for(failed_spec).ok
        # Journal-served results equal freshly-run results byte-for-byte
        # (JSON canonicalisation absorbs tuple-vs-list container drift).
        import json

        fresh = run_cells([specs[0]], ExecConfig(bus=ProbeBus()))
        canon = lambda d: json.dumps(d, sort_keys=True, default=str)  # noqa: E731
        assert (canon(second.result_for(specs[0]).to_dict())
                == canon(fresh.result_for(specs[0]).to_dict()))
