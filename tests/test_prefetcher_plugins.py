"""Tests for the prefetcher plug-in API on the memory hierarchy."""

import pytest

from repro.memory.hierarchy import (
    MemoryConfig,
    MemoryHierarchy,
    PrefetcherHook,
)
from repro.memory.main_memory import MainMemory


class NextLinePrefetcher(PrefetcherHook):
    """Toy plug-in: always prefetch the next cache line."""

    origin = "stride"

    def __init__(self):
        self.observed = []

    def observe_load(self, pc, addr, value, level):
        self.observed.append((pc, addr, level))
        return [addr + 64]


class ValueHungryPrefetcher(PrefetcherHook):
    origin = "svr"
    needs_value = True

    def __init__(self):
        self.values = []

    def observe_load(self, pc, addr, value, level):
        self.values.append(value)
        return []


def make(**overrides):
    mem = MainMemory(capacity_bytes=1 << 22)
    cfg = MemoryConfig(stride_prefetcher=False, **overrides)
    return mem, MemoryHierarchy(mem, cfg)


class TestPluginApi:
    def test_custom_hook_receives_loads(self):
        mem, hier = make()
        hook = NextLinePrefetcher()
        hier.attach_prefetcher(hook)
        hier.load(0x10000, 0.0, pc=5)
        assert hook.observed == [(5, 0x10000, "dram")]

    def test_custom_hook_prefetches_are_issued(self):
        mem, hier = make()
        hier.attach_prefetcher(NextLinePrefetcher())
        hier.load(0x10000, 0.0, pc=5)
        assert hier.stats.prefetches_issued["stride"] == 1
        # The next line is now resident (or in flight).
        out = hier.load(0x10040, 2000.0, pc=6)
        assert out.level == "l1"
        assert out.prefetch_hit

    def test_value_passed_only_when_requested(self):
        mem, hier = make()
        mem.write_word(0x10000, 1234)
        hungry = ValueHungryPrefetcher()
        hier.attach_prefetcher(hungry)
        hier.load(0x10000, 0.0, pc=5)
        assert hungry.values == [1234]

    def test_value_not_read_when_no_hook_needs_it(self):
        mem, hier = make()
        hook = NextLinePrefetcher()
        hier.attach_prefetcher(hook)
        reads = []
        original = mem.read_word
        def spying_read(addr):
            reads.append(addr)
            return original(addr)

        mem.read_word = spying_read
        hier.load(0x10000, 0.0, pc=5)
        assert reads == []

    def test_unknown_origin_rejected(self):
        class Bad(PrefetcherHook):
            origin = "quantum"

            def observe_load(self, pc, addr, value, level):
                return []

        mem, hier = make()
        with pytest.raises(ValueError, match="unknown prefetch origin"):
            hier.attach_prefetcher(Bad())

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PrefetcherHook().observe_load(0, 0, None, "l1")

    def test_builtin_prefetchers_still_route_through_hooks(self):
        """The stride prefetcher and IMP keep working after the refactor."""
        mem = MainMemory(capacity_bytes=1 << 22)
        hier = MemoryHierarchy(mem, MemoryConfig(stride_prefetcher=True,
                                                 imp_prefetcher=True))
        t = 0.0
        for i in range(32):
            out = hier.load(0x10000 + i * 64, t, pc=7)
            t = out.completion + 1
        assert hier.stats.prefetches_issued["stride"] > 0
