"""The examples directory must stay runnable — each script is executed at
tiny scale as a subprocess and checked for its expected output."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "PR_KR", "tiny")
        assert "svr16" in out and "CPI stack" in out

    def test_edge_graph_analytics(self):
        out = run_example("edge_graph_analytics.py", "UR", "tiny")
        assert "harmonic-mean speedup vs in-order" in out
        assert "SSSP" in out

    def test_prefetcher_showdown(self):
        out = run_example("prefetcher_showdown.py", "tiny")
        assert "Randacc" in out and "IMP speedup" in out

    def test_design_space(self):
        out = run_example("design_space.py", "Camel", "tiny")
        assert "Vector length sweep" in out
        assert "svr128" in out

    def test_observe_prm(self, tmp_path):
        trace = tmp_path / "trace.json"
        out = run_example("observe_prm.py", "Camel", "tiny", str(trace))
        assert "issued vector lengths" in out
        assert "well-formed" in out
        assert "perfetto" in out
        assert trace.exists()

    def test_observe_sweep(self, tmp_path):
        out = run_example("observe_sweep.py", "Camel", "tiny",
                          str(tmp_path))
        assert "merged metrics" in out
        assert "well-formed" in out
        assert "process tracks" in out
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "report.html").exists()

    def test_timeline(self):
        out = run_example("timeline.py", "Camel", "12")
        assert "inorder" in out and "svr16" in out
        assert "cycles" in out
