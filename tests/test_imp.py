"""Unit tests for the IMP (indirect memory prefetcher) model."""

import numpy as np

from repro.memory.imp import IndirectMemoryPrefetcher
from repro.memory.main_memory import MainMemory


def make_imp(index_values, shift=3, table_entries=16, degree=4):
    """Memory with an index array A and a target array B[A[i] << shift]."""
    mem = MainMemory(capacity_bytes=1 << 22)
    a = mem.alloc_array(index_values, name="A")
    b = mem.alloc(1 << 20, name="B")
    imp = IndirectMemoryPrefetcher(mem, table_entries=table_entries,
                                   degree=degree)
    return mem, imp, a, b


def drive(imp, a, b, values, shift=3, count=None):
    """Replay the A[i] stride stream + B[A[i]] indirect misses."""
    all_requests = []
    count = count if count is not None else len(values)
    for i in range(count):
        addr = a + 8 * i
        value = int(values[i])
        all_requests.extend(imp.observe_load(100, addr, value, missed=True))
        indirect = b + (value << shift)
        all_requests.extend(imp.observe_load(200, indirect, 0, missed=True))
    return all_requests


class TestLearning:
    def test_learns_linear_pattern(self):
        values = np.arange(1000, 1064, dtype=np.int64)[::7]  # irregular values
        values = np.random.default_rng(0).integers(0, 1 << 14, 64)
        mem, imp, a, b = make_imp(values)
        drive(imp, a, b, values)
        assert imp.patterns_learned >= 1

    def test_prefetches_future_indirect_targets(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1 << 14, 64)
        mem, imp, a, b = make_imp(values)
        requests = drive(imp, a, b, values, count=32)
        future_targets = {b + (int(values[i]) << 3) for i in range(8, 32)}
        assert future_targets & set(requests), \
            "IMP should prefetch upcoming indirect addresses"

    def test_learns_cache_line_shift(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 1 << 12, 64)
        mem, imp, a, b = make_imp(values, shift=6)
        drive(imp, a, b, values, shift=6)
        assert imp.patterns_learned >= 1

    def test_hashed_indices_never_learned(self):
        """The masked/hashed patterns of HJ/Kangaroo/randacc defeat IMP."""
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1 << 30, 128)
        mem = MainMemory(capacity_bytes=1 << 22)
        a = mem.alloc_array(values, name="A")
        b = mem.alloc(1 << 20, name="B")
        imp = IndirectMemoryPrefetcher(mem)
        for i, v in enumerate(values):
            imp.observe_load(100, a + 8 * i, int(v), missed=True)
            hashed = (int(v) * 2654435761) & ((1 << 14) - 1)
            imp.observe_load(200, b + hashed * 8, 0, missed=True)
        assert imp.patterns_learned == 0

    def test_no_stride_no_pattern(self):
        """Without a confident stride stream there is nothing to correlate."""
        rng = np.random.default_rng(4)
        mem = MainMemory(capacity_bytes=1 << 22)
        imp = IndirectMemoryPrefetcher(mem)
        base = mem.alloc(1 << 16)
        for i in range(64):
            addr = base + int(rng.integers(0, 1 << 13)) * 8
            imp.observe_load(100, addr, i, missed=True)
        assert imp.patterns_learned == 0

    def test_stride_break_clears_history(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1 << 14, 32)
        mem, imp, a, b = make_imp(values)
        drive(imp, a, b, values, count=16)
        # Discontinuity in the stride stream.
        imp.observe_load(100, a + 8 * 1000, 0, missed=True)
        entry = imp._streams[100]
        assert entry.recent_values == []

    def test_degree_bounds_lookahead(self):
        rng = np.random.default_rng(6)
        values = rng.integers(0, 1 << 14, 64)
        mem, imp, a, b = make_imp(values, degree=2)
        requests = drive(imp, a, b, values, count=32)
        # Per trigger at most degree index-loads + degree targets.
        assert imp.issued <= 32 * 4

    def test_table_eviction_on_capacity(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        imp = IndirectMemoryPrefetcher(mem, table_entries=2)
        imp.observe_load(1, 0x1000, 0, missed=False)
        imp.observe_load(2, 0x2000, 0, missed=False)
        imp.observe_load(3, 0x3000, 0, missed=False)
        assert len(imp._streams) == 2
