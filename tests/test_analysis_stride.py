"""Tests for induction-variable discovery and static load classification."""

from repro.analysis import LoadClass, StrideAnalysis, build_cfg
from repro.isa.program import ProgramBuilder
from repro.isa.registers import reg_index

from conftest import gather_program


def analyze(program):
    return StrideAnalysis(build_cfg(program))


def classes(program):
    return {info.pc: info.load_class for info in analyze(program).loads()}


class TestInductionVariables:
    def test_single_addi_update_is_iv(self):
        program = gather_program(0x1000, 0x2000, 8)
        sa = analyze(program)
        loop = sa.cfg.loops[0]
        ivs = sa.induction_variables(loop)
        assert set(ivs) == {reg_index("t0")}
        assert ivs[reg_index("t0")].step == 1

    def test_negative_step(self):
        b = ProgramBuilder("down")
        b.li("t0", 64)
        b.li("a0", 0x1000)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)
        b.addi("t0", "t0", -1)
        b.bnez("t0", "loop")
        b.halt()
        sa = analyze(b.build())
        info = sa.loads()[0]
        assert info.load_class is LoadClass.STRIDING
        assert info.stride == -8

    def test_multiple_updates_disqualify(self):
        b = ProgramBuilder("twoupd")
        b.li("t0", 0)
        b.label("loop")
        b.addi("t0", "t0", 1)
        b.addi("t0", "t0", 1)       # second update: not a basic IV
        b.cmp_lt("t1", "t0", "x0")
        b.bnez("t1", "loop")
        b.halt()
        sa = analyze(b.build())
        assert sa.induction_variables(sa.cfg.loops[0]) == {}


class TestClassification:
    def test_gather_striding_and_indirect(self):
        program = gather_program(0x1000, 0x2000, 8)
        infos = {i.pc: i for i in analyze(program).loads()}
        # pc 7: ld t2 <- idx[i], address affine in t0 scaled by 8.
        assert infos[7].load_class is LoadClass.STRIDING
        assert infos[7].stride == 8
        assert infos[7].iv_reg == reg_index("t0")
        # pc 10: ld t4 <- data[idx[i]], address derived from the pc-7 load.
        assert infos[10].load_class is LoadClass.INDIRECT
        assert infos[10].depends_on == (7,)

    def test_pointer_bump_is_striding(self):
        # The IV is the address register itself: p += 16 each iteration.
        b = ProgramBuilder("bump")
        b.li("a0", 0x1000)
        b.li("t0", 8)
        b.label("loop")
        b.ld("t1", "a0", 0)
        b.addi("a0", "a0", 16)
        b.addi("t0", "t0", -1)
        b.bnez("t0", "loop")
        b.halt()
        info = analyze(b.build()).loads()[0]
        assert info.load_class is LoadClass.STRIDING
        assert info.stride == 16
        assert info.iv_reg == reg_index("a0")

    def test_loop_invariant_address(self):
        b = ProgramBuilder("inv")
        b.li("a0", 0x1000)
        b.li("t0", 8)
        b.label("loop")
        b.ld("t1", "a0", 0)          # same address every iteration
        b.addi("t0", "t0", -1)
        b.bnez("t0", "loop")
        b.halt()
        info = analyze(b.build()).loads()[0]
        assert info.load_class is LoadClass.INVARIANT

    def test_hashed_index_is_irregular(self):
        # The xorshift shape of the SPEC cached archetype: the index is
        # loop-variant but neither affine nor load-derived.
        b = ProgramBuilder("hash")
        b.li("a1", 0x1000)
        b.li("t2", 12345)
        b.li("t0", 8)
        b.label("loop")
        b.srli("t3", "t2", 7)
        b.xor("t2", "t2", "t3")
        b.slli("t3", "t2", 3)
        b.add("t3", "a1", "t3")
        b.ld("t4", "t3", 0)
        b.addi("t0", "t0", -1)
        b.bnez("t0", "loop")
        b.halt()
        infos = analyze(b.build()).loads()
        assert [i.load_class for i in infos] == [LoadClass.IRREGULAR]

    def test_load_outside_any_loop(self):
        b = ProgramBuilder("flat")
        b.li("a0", 0x1000)
        b.ld("t0", "a0", 0)
        b.halt()
        info = analyze(b.build()).loads()[0]
        assert info.load_class is LoadClass.NONLOOP
        assert info.loop_header is None

    def test_muli_scaled_index(self):
        b = ProgramBuilder("muli")
        b.li("a0", 0x1000)
        b.li("t0", 0)
        b.label("loop")
        b.muli("t1", "t0", 24)       # 3-word records
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)
        b.addi("t0", "t0", 1)
        b.cmp_lt("t3", "t0", "x0")
        b.bnez("t3", "loop")
        b.halt()
        info = analyze(b.build()).loads()[0]
        assert info.load_class is LoadClass.STRIDING
        assert info.stride == 24

    def test_two_iv_sum_is_not_affine(self):
        # address = base + (i + j) with two IVs stepping together is not
        # affine in a single basic IV.
        b = ProgramBuilder("twoiv")
        b.li("a0", 0x1000)
        b.li("t0", 0)
        b.li("s0", 0)
        b.label("loop")
        b.add("t1", "t0", "s0")
        b.slli("t1", "t1", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)
        b.addi("t0", "t0", 1)
        b.addi("s0", "s0", 2)
        b.cmp_lt("t3", "t0", "x0")
        b.bnez("t3", "loop")
        b.halt()
        info = analyze(b.build()).loads()[0]
        assert info.load_class is LoadClass.IRREGULAR


class TestAgainstWorkloads:
    def test_spec_stream_is_striding(self):
        from repro.workloads.registry import build_workload

        wl = build_workload("mcf", scale="tiny")
        sa = StrideAnalysis(build_cfg(wl.program))
        cls = [i.load_class for i in sa.loads()]
        assert LoadClass.IRREGULAR in cls       # cached xorshift archetype

    def test_nas_is_histogram_shape(self):
        from repro.workloads.registry import build_workload

        wl = build_workload("NAS-IS", scale="tiny")
        sa = StrideAnalysis(build_cfg(wl.program))
        by_class = {}
        for info in sa.loads():
            by_class.setdefault(info.load_class, []).append(info)
        assert len(by_class[LoadClass.STRIDING]) == 1
        assert by_class[LoadClass.STRIDING][0].stride == 8
        assert len(by_class[LoadClass.INDIRECT]) == 1
