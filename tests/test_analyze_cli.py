"""Tests for the ``python -m repro analyze`` CLI surface."""

import json

from repro.__main__ import main

SWEEP_S = """\
start:
    li   a0, 0x1000
    li   a1, 8
    li   t4, 0
    li   t0, 0
loop:
    slli t1, t0, 3
    add  t1, a0, t1
    ld   t2, t1, 0
    add  t4, t4, t2
    addi t0, t0, 1
    cmp_lt t3, t0, a1
    bnez t3, loop
    st   t4, a0, 0
    halt
"""


class TestWorkloadTargets:
    def test_workload_plan_text(self, capsys):
        assert main(["analyze", "HJ2"]) == 0
        out = capsys.readouterr().out
        assert "HJ2" in out and "BATCHABLE" in out
        assert "analyzed 1 target(s)" in out

    def test_json_payload(self, capsys):
        assert main(["analyze", "PR_KR", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        (report,) = payload["reports"]
        assert report["name"] == "PR_KR"
        assert len(report["fingerprint"]) == 64
        verdicts = {entry[1] for entry in report["summary"]}
        assert verdicts & {"BATCHABLE", "BATCHABLE_WITH_GUARD"}

    def test_oracle_validates_workload(self, capsys):
        assert main(["analyze", "HJ2", "--oracle"]) == 0
        out = capsys.readouterr().out
        assert "oracle validated" in out
        assert "1 oracle-validated" in out

    def test_check_against_pinned_expectations(self, capsys):
        assert main(["analyze", "PR_KR", "BFS_KR", "--check"]) == 0
        assert "analyzed 2 target(s)" in capsys.readouterr().out

    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["analyze", "NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "no targets" in capsys.readouterr().err


class TestFileTargets:
    def test_assembly_file_gets_a_plan(self, tmp_path, capsys):
        path = tmp_path / "sweep.s"
        path.write_text(SWEEP_S)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "BATCHABLE" in out

    def test_oracle_on_file_is_drift(self, tmp_path, capsys):
        # .s files carry no memory image, so --oracle cannot run; that is
        # reported as drift and fails the invocation.
        path = tmp_path / "sweep.s"
        path.write_text(SWEEP_S)
        assert main(["analyze", str(path), "--oracle"]) == 1
        assert "oracle" in capsys.readouterr().err

    def test_check_on_file_is_drift(self, tmp_path, capsys):
        # No pinned expectation exists for an ad-hoc file.
        path = tmp_path / "sweep.s"
        path.write_text(SWEEP_S)
        assert main(["analyze", str(path), "--check"]) == 1
