"""Deterministic multi-chain scenarios (Section IV-A6, Fig 9)."""

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.svr.config import SVRConfig

from conftest import make_inorder, make_memory


def build_nested_kernel(rows=512, trip=6, empty_prefix=24):
    """Outer striding walk over row descriptors; inner striding walk over
    each row's data.  The first *empty_prefix* rows have zero-length inner
    loops, so the OUTER load becomes the HSLR first; when the inner loop
    appears and its load is seen twice inside one round, SVR must abort
    and retarget to the inner loop (Fig 9 top)."""
    memory = make_memory()
    rng = np.random.default_rng(37)
    data_words = 1 << 15
    data = memory.alloc_array(
        rng.integers(0, 1 << 20, size=data_words, dtype=np.int64),
        name="data")
    starts = rng.integers(0, data_words - trip - 1, size=rows,
                          dtype=np.int64)
    lengths = np.full(rows, trip, dtype=np.int64)
    lengths[:empty_prefix] = 0
    start_arr = memory.alloc_array(starts, name="starts")
    len_arr = memory.alloc_array(lengths, name="lengths")

    b = ProgramBuilder()
    b.li("a0", start_arr)
    b.li("a1", len_arr)
    b.li("a2", data)
    b.li("a3", rows)
    b.li("t9", 0)                    # row
    b.label("rows")
    b.slli("t1", "t9", 3)
    b.add("t2", "a0", "t1")
    b.ld("t3", "t2", 0)              # row start     (outer striding A)
    b.add("t2", "a1", "t1")
    b.ld("t4", "t2", 0)              # row length    (outer striding A')
    b.li("t5", 0)                    # j
    b.label("inner_check")
    b.cmp_lt("t6", "t5", "t4")
    b.beqz("t6", "next_row")
    b.add("t7", "t3", "t5")
    b.slli("t7", "t7", 3)
    b.add("t7", "a2", "t7")
    b.ld("t8", "t7", 0)              # inner load B (striding within row)
    b.add("s0", "s0", "t8")
    b.addi("t5", "t5", 1)
    b.jmp("inner_check")
    b.label("next_row")
    b.addi("t9", "t9", 1)
    b.cmp_lt("t6", "t9", "a3")
    b.bnez("t6", "rows")
    b.halt()
    return b.build(), memory


class TestNestedRetarget:
    def test_retarget_fires_when_inner_loop_appears(self):
        program, memory = build_nested_kernel()
        core, _, unit = make_inorder(program, memory, svr=SVRConfig())
        core.run(25_000)
        # Whether the nested-abort or the independent-loop path wins the
        # race depends on PRM phase alignment; either way the HSLR must
        # move off the outer loop exactly once.
        assert unit.stats.retargets == 1

    def test_nested_abort_path_whitebox(self):
        """Drive the Fig 9 (top) scenario directly: striding load B seen
        twice while PRM is active for A aborts the round and retargets."""
        from repro.isa.instructions import Instruction, Opcode

        program, memory = build_nested_kernel()
        core, _, unit = make_inorder(program, memory, svr=SVRConfig())
        data_base, _ = memory.allocation("data")

        pc_a, pc_b = 1000, 2000
        # Make both PCs confidently striding.
        for i in range(4):
            unit.detector.observe(pc_a, 0x8000 + i * 8)
        for i in range(4):
            unit.detector.observe(pc_b, data_base + i * 8)

        inst = Instruction(Opcode.LD, rd=22, rs1=10)

        class Result:
            address = 0x8000 + 4 * 8
            taken = None

        # Trigger PRM for A.
        started = unit._stride_logic(pc_a, inst, Result(), 0.0)
        assert started and unit.in_prm and unit.hslr_pc == pc_a

        # First B sighting inside the round: unrolled side chain.
        class ResultB1:
            address = data_base + 4 * 8
        unit._stride_logic(pc_b, inst, ResultB1(), 1.0)
        assert unit.stats.unrolled_chains == 1
        assert unit.detector.get(pc_b).seen

        # Second B sighting: nested loop detected -> abort + retarget.
        class ResultB2:
            address = data_base + 5 * 8
        unit._stride_logic(pc_b, inst, ResultB2(), 2.0)
        assert unit.stats.terminations["retarget"] == 1
        assert unit.stats.retargets == 1
        assert unit.hslr_pc == pc_b
        # The unrolled round already prefetched B's upcoming range, so the
        # retarget lands in waiting mode rather than re-generating.
        assert not unit.in_prm
        assert unit.detector.get(pc_b).last_prefetch is not None

    def test_hslr_ends_on_inner_load(self):
        program, memory = build_nested_kernel()
        core, _, unit = make_inorder(program, memory, svr=SVRConfig())
        core.run(25_000)
        inner_pc = program.pc_of("inner_check") + 5   # the ld after 3 ALU ops
        assert unit.hslr_pc == inner_pc

    def test_outer_only_prefix_uses_outer_chain(self):
        """Before the inner loop appears, the outer loads run ahead."""
        program, memory = build_nested_kernel(empty_prefix=400, rows=512)
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig())
        core.run(8_000)
        assert unit.stats.prm_rounds > 0
        assert hierarchy.stats.prefetches_issued["svr"] > 0


class TestSeenBitHygiene:
    def test_seen_bits_cleared_on_hslr(self):
        """Reaching the HSLR clears every other Seen bit (Section IV-A6)."""
        program, memory = build_nested_kernel(empty_prefix=0)
        core, _, unit = make_inorder(program, memory, svr=SVRConfig())
        core.run(20_000)
        seen = [e for e in unit.detector.entries()
                if e.seen and e.pc != unit.hslr_pc]
        # Transiently a non-HSLR entry may be seen; but the HSLR's own
        # entry must carry its seen bit.
        hslr_entry = unit.detector.get(unit.hslr_pc)
        assert hslr_entry is not None
        assert len(seen) <= 2
