"""Every registered workload must lint clean, and the GAP kernels must
match their recorded static classifications (workloads/expectations.py)."""

import pytest

from repro.analysis import LoadClass, lint_program
from repro.workloads.expectations import GAP_EXPECTATIONS
from repro.workloads.registry import (
    GAP_KERNELS,
    build_workload,
    workload_names,
)

ALL_WORKLOADS = workload_names("irregular") + workload_names("spec")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_lints_clean(name):
    workload = build_workload(name, scale="tiny")
    report = lint_program(workload.program, name=name)
    assert report.ok, "\n".join(str(d) for d in report.errors)
    assert not report.warnings, "\n".join(str(d) for d in report.warnings)


@pytest.mark.parametrize("kernel", GAP_KERNELS)
@pytest.mark.parametrize("graph", ("KR", "UR"))
def test_gap_static_classification_matches_record(kernel, graph):
    expect = GAP_EXPECTATIONS[kernel]
    report = lint_program(
        build_workload(f"{kernel}_{graph}", scale="tiny").program)
    by_class = {}
    for info in report.loads:
        by_class.setdefault(info.load_class, []).append(info)
    assert len(by_class.pop(LoadClass.STRIDING)) == expect["striding"]
    assert len(by_class.pop(LoadClass.INDIRECT)) == expect["indirect"]
    assert not by_class, f"unexpected load classes: {sorted(by_class)}"
    strides = {info.stride for info in report.loads
               if info.stride is not None}
    assert strides == expect["strides"]
    chains = tuple(sorted((c.seed_pc, c.chain_length, c.srf_pressure)
                          for c in report.chains))
    assert chains == expect["chains"]


def test_expectations_cover_every_gap_kernel():
    assert set(GAP_EXPECTATIONS) == set(GAP_KERNELS)
