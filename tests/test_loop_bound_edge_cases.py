"""Loop-bound prediction edge cases: down-counting loops, non-unit steps,
stale-value guards and end-to-end throttling."""

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.svr.config import SVRConfig
from repro.svr.loop_bound import LoopBoundUnit
from repro.svr.stride_detector import StrideDetector

from conftest import make_inorder, make_memory


class TestDownCountingLoops:
    def train_down(self, lbu, hslr_pc=10, iters=5, start=100):
        """i counts down from start; compare is (0, i) with i changing."""
        for k in range(iters):
            i_val = start - k
            lbu.observe_compare(20, 0, i_val, 3, 4, 6)
            lbu.train_on_branch(22, hslr_pc - 2, taken=True, source_reg=6,
                                hslr_pc=hslr_pc)

    def test_negative_increment_learned(self):
        lbu = LoopBoundUnit()
        self.train_down(lbu, iters=5)
        entry = lbu.peek(10)
        assert entry.changing == "b"
        assert entry.increment == -1

    def test_remaining_iterations_down(self):
        lbu = LoopBoundUnit()
        self.train_down(lbu, iters=5, start=100)
        # i is now 96, bound 0, step -1 -> 96 remaining.
        assert lbu.predict_lbd(10, require_fresh=True) == 96

    def test_cv_scavenging_down(self):
        lbu = LoopBoundUnit()
        self.train_down(lbu, iters=5)
        lbu.on_loop_reentry(10)
        regs = {3: 0, 4: 7}
        assert lbu.predict_cv(10, regs.__getitem__) == 7


class TestNonUnitSteps:
    def test_step_of_four(self):
        lbu = LoopBoundUnit()
        for k in range(5):
            lbu.observe_compare(20, (k + 1) * 4, 400, 3, 4, 6)
            lbu.train_on_branch(22, 5, taken=True, source_reg=6, hslr_pc=10)
        # i = 20, bound 400, step 4 -> 95 remaining.
        assert lbu.predict_lbd(10, require_fresh=True) == 95

    def test_zero_increment_guarded(self):
        lbu = LoopBoundUnit()
        entry = lbu.entry_for(10)
        entry.comp_pc = 20
        entry.confidence = 3
        entry.changing = "a"
        entry.increment = 0
        entry.fresh = True
        entry.s_a, entry.s_b = 5, 100
        assert lbu.predict_lbd(10, require_fresh=True) is None


class TestEndToEndDownCountingKernel:
    def test_svr_speedup_on_down_counting_gather(self):
        """A loop with `i--; bnez i` — the LBD trains on the down count."""
        memory = make_memory()
        rng = np.random.default_rng(47)
        count = 768
        idx = memory.alloc_array(
            rng.integers(0, 4096, size=count, dtype=np.int64), name="idx")
        data = memory.alloc(4096 << 6, name="data")
        b = ProgramBuilder()
        b.li("a0", idx)
        b.li("a1", data)
        b.li("t0", count)
        b.label("loop")
        b.addi("t0", "t0", -1)
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)
        b.slli("t3", "t2", 6)
        b.add("t3", "a1", "t3")
        b.ld("t4", "t3", 0)
        b.add("t5", "t5", "t4")
        b.bnez("t0", "loop")
        b.halt()
        program = b.build()

        core, _, _ = make_inorder(program, memory)
        plain = core.run(5_000)
        # Rebuild fresh state for the SVR run.
        memory2 = make_memory()
        idx2 = memory2.alloc_array(
            rng.integers(0, 4096, size=count, dtype=np.int64), name="idx")
        data2 = memory2.alloc(4096 << 6, name="data")
        b2 = ProgramBuilder()
        b2.li("a0", idx2)
        b2.li("a1", data2)
        b2.li("t0", count)
        b2.label("loop")
        b2.addi("t0", "t0", -1)
        b2.slli("t1", "t0", 3)
        b2.add("t1", "a0", "t1")
        b2.ld("t2", "t1", 0)
        b2.slli("t3", "t2", 6)
        b2.add("t3", "a1", "t3")
        b2.add("t5", "t5", "t3")
        b2.ld("t4", "t3", 0)
        b2.bnez("t0", "loop")
        b2.halt()
        core2, hierarchy, unit = make_inorder(b2.build(), memory2,
                                              svr=SVRConfig())
        svr = core2.run(5_000)
        assert unit.stats.prm_rounds > 0
        assert svr.cycles < plain.cycles


class TestStrideEntryPolicyState:
    def test_tournament_counter_bounds(self):
        det = StrideDetector()
        entry = det.observe(1, 0).entry
        lbu = LoopBoundUnit()
        for _ in range(10):
            entry.last_ewma_pred = 1
            entry.last_lbd_pred = 100
            lbu.train_tournament(entry, actual=100)
        assert entry.tournament == 3
        for _ in range(10):
            entry.last_ewma_pred = 100
            entry.last_lbd_pred = 1
            lbu.train_tournament(entry, actual=100)
        assert entry.tournament == 0

    def test_tournament_tie_keeps_state(self):
        det = StrideDetector()
        entry = det.observe(1, 0).entry
        entry.tournament = 2
        entry.last_ewma_pred = 10
        entry.last_lbd_pred = 10
        LoopBoundUnit().train_tournament(entry, actual=12)
        assert entry.tournament == 2

    def test_train_without_predictions_is_noop(self):
        det = StrideDetector()
        entry = det.observe(1, 0).entry
        LoopBoundUnit().train_tournament(entry, actual=5)
        assert entry.tournament == 1
