"""Construction-time validation: invalid configurations fail fast with
messages naming the offending field."""

import pytest

from repro.harness.runner import TechniqueConfig, technique
from repro.svr.config import SVRConfig


class TestTechniqueConfigValidation:
    def test_unknown_core_kind(self):
        with pytest.raises(ValueError, match="core"):
            TechniqueConfig("bad", core="vliw")

    def test_svr_requires_inorder_core(self):
        cfg = technique("svr16")
        with pytest.raises(ValueError, match="svr"):
            TechniqueConfig("bad", core="ooo", svr=cfg.svr)

    def test_vr_requires_ooo_core(self):
        with pytest.raises(ValueError, match="vr_length"):
            TechniqueConfig("bad", core="inorder", vr_length=64)

    def test_vr_length_must_be_positive(self):
        with pytest.raises(ValueError, match="vr_length"):
            TechniqueConfig("bad", core="ooo", vr_length=0)

    def test_valid_configs_construct(self):
        for name in ("inorder", "ooo", "imp", "svr16", "svr64", "vr64"):
            assert technique(name).name == name


class TestSVRConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("vector_length", 0),
        ("vector_length", -4),
        ("srf_entries", 0),
        ("stride_detector_entries", 0),
        ("stride_confidence_threshold", 0),
        ("timeout_instructions", 0),
        ("ewma_cap", 0),
        ("scalars_per_unit", 0),
        ("register_copy_cost_cycles", -1.0),
        ("accuracy_threshold", -0.1),
        ("accuracy_threshold", 1.5),
        ("accuracy_warmup_events", -1),
        ("accuracy_reset_interval", 0),
    ])
    def test_bad_value_names_field(self, field, value):
        with pytest.raises(ValueError, match=f"SVRConfig.{field}"):
            SVRConfig(**{field: value})

    def test_message_includes_offending_value(self):
        with pytest.raises(ValueError, match="got -4"):
            SVRConfig(vector_length=-4)

    def test_defaults_are_valid(self):
        assert SVRConfig().vector_length == 16
